"""Tests for the particle filter and the Likelihood channel feature (§3.2)."""

import random
import statistics

import pytest

from repro.core import Kind, PerPos
from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.core.pcl import ProcessChannelLayer
from repro.geo.grid import GridPosition
from repro.model.demo import demo_building
from repro.processing.gps_features import HdopFeature
from repro.processing.pipelines import build_gps_pipeline
from repro.sensors.gps import GpsReceiver, SUBURBAN, constant_environment
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.tracking.likelihood import LikelihoodFeature
from repro.tracking.motion import PedestrianMotionModel
from repro.tracking.particle_filter import ParticleFilterComponent


class TestMotionModel:
    def test_step_moves_bounded_distance(self):
        model = PedestrianMotionModel(max_speed_mps=2.0, position_jitter_m=0.0)
        rng = random.Random(0)
        start = GridPosition(0.0, 0.0)
        for _ in range(50):
            new, _heading = model.step(rng, start, 0.0, dt=1.0)
            assert start.distance_to(new) <= 2.0 + 1e-9

    def test_floor_preserved(self):
        model = PedestrianMotionModel()
        rng = random.Random(0)
        new, _ = model.step(rng, GridPosition(0, 0, floor=2), 0.0, 1.0)
        assert new.floor == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            PedestrianMotionModel(max_speed_mps=0.0)


class TestParticleFilterStandalone:
    def build(self, **kwargs):
        building = demo_building()
        kwargs.setdefault("num_particles", 300)
        kwargs.setdefault("seed", 42)
        pf = ParticleFilterComponent(building, **kwargs)
        graph = ProcessingGraph()
        source = SourceComponent("positions", (Kind.POSITION_WGS84,))
        sink = ApplicationSink("app", (Kind.POSITION_WGS84,))
        graph.add(source)
        graph.add(pf)
        graph.add(sink)
        graph.connect("positions", pf.name)
        graph.connect(pf.name, "app")
        return building, pf, source, sink

    def observe(self, building, x, y, t, accuracy=5.0):
        wgs = building.grid.to_wgs84(GridPosition(x, y))
        wgs = type(wgs)(
            wgs.latitude_deg, wgs.longitude_deg, 0.0, accuracy, t
        )
        return Datum(Kind.POSITION_WGS84, wgs, t, "positions")

    def test_validation(self):
        building = demo_building()
        with pytest.raises(ValueError):
            ParticleFilterComponent(building, num_particles=0)

    def test_initialises_on_first_observation(self):
        building, pf, source, sink = self.build()
        assert not pf.initialised()
        source.inject(self.observe(building, 15.0, 7.5, 0.0))
        assert pf.initialised()
        assert len(pf.particles) == 300
        assert len(sink.received) == 1

    def test_estimate_tracks_observations(self):
        building, pf, source, _sink = self.build()
        for i in range(10):
            source.inject(self.observe(building, 10.0 + i, 7.5, float(i)))
        estimate, _spread = pf.estimate()
        truth = GridPosition(19.0, 7.5)
        assert truth.distance_to(estimate) < 5.0

    def test_estimate_requires_initialisation(self):
        _b, pf, _s, _sink = self.build()
        with pytest.raises(RuntimeError):
            pf.estimate()

    def test_resampling_happens(self):
        building, pf, source, _sink = self.build(resample_threshold=0.9)
        for i in range(15):
            source.inject(self.observe(building, 10.0 + i, 7.5, float(i)))
        assert pf.resamples > 0

    def test_wall_vetoes_counted(self):
        building, pf, source, _sink = self.build()
        for i in range(10):
            source.inject(self.observe(building, 15.0, 7.5, float(i)))
        assert pf.wall_vetoes > 0

    def test_statistics_surface(self):
        building, pf, source, _sink = self.build()
        source.inject(self.observe(building, 15.0, 7.5, 0.0))
        stats = pf.statistics()
        assert stats["particles"] == 300
        assert pf.effective_sample_size() > 0

    def test_particles_stay_mostly_within_walls(self):
        """The location-model constraint keeps hypotheses out of rooms the
        target never entered: observe only corridor positions."""
        building, pf, source, _sink = self.build(num_particles=400)
        for i in range(20):
            source.inject(
                self.observe(building, 5.0 + i, 7.5, float(i), accuracy=4.0)
            )
        in_corridor = sum(
            1
            for p in pf.particles
            if building.room_at(p.position) is not None
            and building.room_at(p.position).room_id == "CORR"
        )
        assert in_corridor / len(pf.particles) > 0.5


class TestLikelihoodFeatureIntegration:
    """Fig. 5 wiring: HDOP component feature + Likelihood channel feature
    + particle filter consuming the likelihood per delivered position."""

    def build_system(self, seed=3):
        building = demo_building()
        grid = building.grid
        outdoor_path = WaypointTrajectory(
            [
                Waypoint(0.0, grid.to_wgs84(GridPosition(-50.0, 7.5))),
                Waypoint(120.0, grid.to_wgs84(GridPosition(-50.0, 180.0))),
            ]
        )
        middleware = PerPos()
        gps = GpsReceiver(
            "gps-dev",
            outdoor_path,
            constant_environment(SUBURBAN),
            seed=seed,
        )
        pipeline = build_gps_pipeline(middleware, gps)
        parser = middleware.graph.component(pipeline.parser)
        parser.attach_feature(HdopFeature())
        pf = ParticleFilterComponent(
            building, pcl=middleware.pcl, num_particles=200, seed=seed
        )
        middleware.graph.add(pf)
        middleware.graph.connect(pipeline.interpreter, pf.name)
        provider = middleware.create_provider(
            "tracker", accepts=(Kind.POSITION_WGS84,)
        )
        middleware.graph.connect(pf.name, provider.sink.name)
        likelihood = LikelihoodFeature()
        channel = middleware.pcl.channel_delivering(
            pf.name, pipeline.interpreter
        )
        channel.attach_feature(likelihood)
        return middleware, outdoor_path, pf, likelihood, provider

    def test_likelihood_requires_hdop_feature(self):
        middleware = PerPos()
        building = demo_building()
        grid = building.grid
        path = WaypointTrajectory(
            [
                Waypoint(0.0, grid.to_wgs84(GridPosition(0.0, 0.0))),
                Waypoint(10.0, grid.to_wgs84(GridPosition(5.0, 0.0))),
            ]
        )
        gps = GpsReceiver("g", path, seed=0)
        pipeline = build_gps_pipeline(middleware, gps, prefix="g")
        sink = middleware.create_provider("app", accepts=(Kind.POSITION_WGS84,))
        middleware.graph.connect(pipeline.interpreter, "app")
        from repro.core.features import FeatureError

        channel = middleware.pcl.channel_delivering(
            "app", pipeline.interpreter
        )
        with pytest.raises(FeatureError):
            channel.attach_feature(LikelihoodFeature())

    def test_apply_collects_hdops_per_position(self):
        _mw, _path, _pf, likelihood, _provider = self.run_system()
        assert likelihood.applications > 0
        assert likelihood.collected_hdops()
        assert likelihood.last_observed() is not None

    def run_system(self):
        middleware, path, pf, likelihood, provider = self.build_system()
        middleware.run_until(60.0)
        return middleware, path, pf, likelihood, provider

    def test_likelihood_higher_near_observation(self):
        _mw, _path, _pf, likelihood, _provider = self.run_system()
        observed = likelihood.last_observed()
        near = likelihood.get_likelihood(observed)
        far = likelihood.get_likelihood(observed.moved(0.0, 500.0))
        assert near > far

    def test_filter_used_channel_likelihood(self):
        _mw, path, pf, _likelihood, provider = self.run_system()
        assert pf.updates > 0
        truth = path.position_at(60.0)
        reported = provider.last_position()
        assert reported is not None
        assert truth.distance_to(reported) < 60.0

    def test_sigma_fallback_without_hdop(self):
        feature = LikelihoodFeature(fallback_sigma_m=25.0)
        assert feature.current_sigma_m() == 25.0
