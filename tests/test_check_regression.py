"""Unit tests for the CI benchmark gate (``benchmarks/check_regression.py``).

The gate decides whether benchmark PRs merge, so it gets the same
treatment as product code: schema sniffing across all seven artefact
shapes, ratio/floor/ceiling failure exits (1), harness errors --
missing or malformed artefacts, schema violations -- exiting 2, the
hardware-conditional shard floor, and the ``$GITHUB_STEP_SUMMARY``
markdown table.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

import check_regression  # noqa: E402


@pytest.fixture(autouse=True)
def _no_step_summary(monkeypatch):
    """Keep unit-test runs from appending to a real CI step summary."""
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


def dispatch_artefact(bare=100.0, observed=50.0, size_rate=80.0):
    return {
        "configs": {
            "bare_rerun_ratio": 1.0,
            "datums_per_s": {
                "bare pipeline": bare,
                "observability on": observed,
            },
        },
        "scalability": {"10": {"throughput": size_rate}},
    }


def scale_artefact(speedup=3.0, floor=2.0):
    return {
        "scale": {
            "speedup_floor": floor,
            "gated_workload": "w1",
            "workloads": {"w1": {"speedup": speedup}},
        }
    }


def compile_artefact(speedup=2.5, floor=2.0):
    return {
        "compile": {
            "batch": 32,
            "speedup_floor": floor,
            "gated_workload": "depth32",
            "depths": {
                "depth32": {
                    "compiled": 100.0,
                    "interpreted": 100.0 / speedup,
                    "speedup": speedup,
                },
            },
        }
    }


def gateway_artefact(
    overhead=1.05,
    ceiling=1.15,
    relative=0.8,
    dlq_depth=100,
    dlq_capacity=256,
):
    return {
        "gateway": {
            "dlq_capacity": dlq_capacity,
            "gated_workload": "clean",
            "overhead_ceiling": ceiling,
            "workloads": {
                "clean": {
                    "rate": 100_000.0,
                    "direct_rate": 100_000.0 * overhead,
                    "overhead": overhead,
                },
                "malformed_heavy": {
                    "rate": 100_000.0 * relative,
                    "relative_rate": relative,
                    "dlq_depth": dlq_depth,
                },
            },
        }
    }


def durability_artefact(
    bytes_per_datum=135.0,
    lost=0,
    replayed=128,
    expected_replayed=128,
    pause_ms=0.5,
    pause_ceiling_ms=250.0,
    handoff_lost=0,
):
    return {
        "durability": {
            "n_targets": 4,
            "gated_depth": "depth512",
            "pause_ceiling_ms": pause_ceiling_ms,
            "depths": {
                "depth512": {
                    "datums": 2176,
                    "bytes_per_datum": bytes_per_datum,
                    "lost": lost,
                    "replayed": replayed,
                    "expected_replayed": expected_replayed,
                },
            },
            "handoff": {
                "datums": 512,
                "pause_ms": pause_ms,
                "lost": handoff_lost,
            },
        }
    }


def city_artefact(
    improvement=0.8,
    floor=0.25,
    open_dropped=4000,
    closed_dropped=800,
    high_water=64,
    depth_ceiling=256,
    decisions=200,
    sharded_dropped=None,
):
    closed = {
        "submitted": 12000,
        "dropped": closed_dropped,
        "high_water": high_water,
        "alerts": 25,
        "decisions": decisions,
    }
    sharded = dict(closed)
    if sharded_dropped is not None:
        sharded["dropped"] = sharded_dropped
    return {
        "city": {
            "improvement_floor": floor,
            "depth_ceiling": depth_ceiling,
            "improvement": improvement,
            "open": {
                "submitted": 12600,
                "dropped": open_dropped,
                "high_water": 8,
                "alerts": 27,
            },
            "closed": closed,
            "sharded_closed": sharded,
        }
    }


def shard_artefact(speedup=2.0, cpu_count=4, floor=1.5):
    return {
        "shard": {
            "cpu_count": cpu_count,
            "min_cpus": 2,
            "speedup_floor": floor,
            "gated_workload": "multiprocessing_shards4",
            "workloads": {
                "multiprocessing_shards4": {"speedup": speedup},
            },
        }
    }


def run(tmp_path, baseline, current, min_ratio=0.8):
    base = write(tmp_path, "baseline.json", baseline)
    cur = write(tmp_path, "current.json", current)
    return check_regression.main(["--pair", base, cur, "--min-ratio", str(min_ratio)])


class TestSchemaSniffing:
    def test_dispatch_schema_passes(self, tmp_path):
        artefact = dispatch_artefact()
        assert run(tmp_path, artefact, artefact) == 0

    def test_scale_schema_passes(self, tmp_path):
        assert run(tmp_path, scale_artefact(), scale_artefact()) == 0

    def test_shard_schema_passes(self, tmp_path):
        assert run(tmp_path, shard_artefact(), shard_artefact()) == 0

    def test_compile_schema_passes(self, tmp_path):
        assert run(tmp_path, compile_artefact(), compile_artefact()) == 0

    def test_gateway_schema_passes(self, tmp_path):
        assert run(tmp_path, gateway_artefact(), gateway_artefact()) == 0

    def test_durability_schema_passes(self, tmp_path):
        artefact = durability_artefact()
        assert run(tmp_path, artefact, artefact) == 0

    def test_city_schema_passes(self, tmp_path):
        artefact = city_artefact()
        assert run(tmp_path, artefact, artefact) == 0

    def test_unrecognised_schema_fails(self, tmp_path):
        assert run(tmp_path, {"mystery": {}}, {"mystery": {}}) == 1

    def test_mixed_pairs_sniff_per_pair(self, tmp_path):
        base_a = write(tmp_path, "a0.json", scale_artefact())
        cur_a = write(tmp_path, "a1.json", scale_artefact())
        base_b = write(tmp_path, "b0.json", shard_artefact())
        cur_b = write(tmp_path, "b1.json", shard_artefact())
        assert (
            check_regression.main(
                ["--pair", base_a, cur_a, "--pair", base_b, cur_b]
            )
            == 0
        )


class TestRegressionExits:
    def test_scale_ratio_regression_exits_1(self, tmp_path):
        assert run(tmp_path, scale_artefact(4.0), scale_artefact(2.5)) == 1

    def test_scale_absolute_floor_exits_1(self, tmp_path):
        # Ratio holds (same speedup), but the artefact's own floor bites.
        artefact = scale_artefact(speedup=1.5, floor=2.0)
        assert run(tmp_path, artefact, artefact) == 1

    def test_shard_ratio_regression_exits_1(self, tmp_path):
        assert run(tmp_path, shard_artefact(3.0), shard_artefact(1.6)) == 1

    def test_missing_workload_exits_1(self, tmp_path):
        current = shard_artefact()
        current["shard"]["workloads"] = {}
        assert run(tmp_path, shard_artefact(), current) == 1

    def test_compile_ratio_regression_exits_1(self, tmp_path):
        base, cur = compile_artefact(4.0), compile_artefact(2.5)
        assert run(tmp_path, base, cur) == 1

    def test_compile_absolute_floor_exits_1(self, tmp_path):
        # Ratio holds (same speedup), but the artefact's own floor bites.
        artefact = compile_artefact(speedup=1.5, floor=2.0)
        assert run(tmp_path, artefact, artefact) == 1

    def test_compile_missing_depth_exits_1(self, tmp_path):
        current = compile_artefact()
        current["compile"]["depths"] = {}
        assert run(tmp_path, compile_artefact(), current) == 1

    def test_gateway_overhead_growth_exits_1(self, tmp_path):
        # Overhead factors invert: growing 1.02x -> 1.4x is a regression
        # even though both clear the absolute ceiling comparison shape.
        base = gateway_artefact(overhead=1.02)
        cur = gateway_artefact(overhead=1.4, ceiling=1.5)
        assert run(tmp_path, base, cur) == 1

    def test_gateway_absolute_ceiling_exits_1(self, tmp_path):
        # Ratio holds (same overhead), but the artefact's ceiling bites.
        artefact = gateway_artefact(overhead=1.3, ceiling=1.15)
        assert run(tmp_path, artefact, artefact) == 1

    def test_gateway_relative_rate_regression_exits_1(self, tmp_path):
        base = gateway_artefact(relative=1.5)
        cur = gateway_artefact(relative=0.9)
        assert run(tmp_path, base, cur) == 1

    def test_gateway_dlq_over_capacity_exits_1(self, tmp_path):
        artefact = gateway_artefact(dlq_depth=300, dlq_capacity=256)
        assert run(tmp_path, gateway_artefact(), artefact) == 1

    def test_gateway_missing_workload_exits_1(self, tmp_path):
        current = gateway_artefact()
        del current["gateway"]["workloads"]["malformed_heavy"]
        assert run(tmp_path, gateway_artefact(), current) == 1

    def test_durability_bytes_growth_exits_1(self, tmp_path):
        # Size per datum is inverted like gateway overhead: growing
        # 130B -> 200B loses more than 20% and fails at min-ratio 0.8.
        base = durability_artefact(bytes_per_datum=130.0)
        cur = durability_artefact(bytes_per_datum=200.0)
        assert run(tmp_path, base, cur) == 1

    def test_durability_lost_datums_exit_1(self, tmp_path):
        artefact = durability_artefact(lost=3)
        assert run(tmp_path, durability_artefact(), artefact) == 1

    def test_durability_replay_mismatch_exits_1(self, tmp_path):
        artefact = durability_artefact(replayed=100, expected_replayed=128)
        assert run(tmp_path, durability_artefact(), artefact) == 1

    def test_durability_handoff_pause_ceiling_exits_1(self, tmp_path):
        artefact = durability_artefact(pause_ms=400.0, pause_ceiling_ms=250.0)
        assert run(tmp_path, durability_artefact(), artefact) == 1

    def test_durability_handoff_loss_exits_1(self, tmp_path):
        artefact = durability_artefact(handoff_lost=1)
        assert run(tmp_path, durability_artefact(), artefact) == 1

    def test_durability_missing_baseline_depth_exits_1(self, tmp_path):
        base = durability_artefact()
        base["durability"]["depths"] = {}
        assert run(tmp_path, base, durability_artefact()) == 1

    def test_dispatch_rerun_tolerance_exits_1(self, tmp_path):
        current = dispatch_artefact()
        current["configs"]["bare_rerun_ratio"] = 1.2
        assert run(tmp_path, dispatch_artefact(), current) == 1

    def test_city_improvement_regression_exits_1(self, tmp_path):
        # A 0.8 -> 0.3 improvement collapse fails the cross-run ratio.
        base = city_artefact(improvement=0.8)
        cur = city_artefact(improvement=0.3)
        assert run(tmp_path, base, cur) == 1

    def test_city_own_floor_exits_1(self, tmp_path):
        # Ratio holds (same improvement), but the artefact's floor bites.
        artefact = city_artefact(improvement=0.2, floor=0.25)
        assert run(tmp_path, artefact, artefact) == 1

    def test_city_closed_not_better_exits_1(self, tmp_path):
        artefact = city_artefact(open_dropped=800, closed_dropped=800)
        assert run(tmp_path, city_artefact(), artefact) == 1

    def test_city_open_loop_never_overloaded_exits_1(self, tmp_path):
        artefact = city_artefact(open_dropped=0, closed_dropped=0)
        assert run(tmp_path, city_artefact(), artefact) == 1

    def test_city_depth_ceiling_exits_1(self, tmp_path):
        artefact = city_artefact(high_water=512, depth_ceiling=256)
        assert run(tmp_path, city_artefact(), artefact) == 1

    def test_city_no_decisions_exits_1(self, tmp_path):
        artefact = city_artefact(decisions=0)
        assert run(tmp_path, city_artefact(), artefact) == 1

    def test_city_sharded_divergence_exits_1(self, tmp_path):
        artefact = city_artefact(closed_dropped=800, sharded_dropped=801)
        assert run(tmp_path, city_artefact(), artefact) == 1

    def test_min_ratio_is_respected(self, tmp_path):
        # A 25% drop passes at 0.7 but fails at 0.8.
        base, cur = scale_artefact(4.0), scale_artefact(3.0)
        assert run(tmp_path, base, cur, min_ratio=0.7) == 0
        assert run(tmp_path, base, cur, min_ratio=0.8) == 1


class TestShardFloorIsHardwareConditional:
    def test_floor_enforced_with_enough_cores(self, tmp_path):
        artefact = shard_artefact(speedup=1.1, cpu_count=4)
        assert run(tmp_path, shard_artefact(1.1), artefact) == 1

    def test_floor_skipped_on_a_single_core(self, tmp_path, capsys):
        artefact = shard_artefact(speedup=1.1, cpu_count=1)
        assert run(tmp_path, shard_artefact(1.1), artefact) == 0
        assert "floor skipped" in capsys.readouterr().out

    def test_ratio_gate_applies_even_on_a_single_core(self, tmp_path):
        base = shard_artefact(speedup=2.0, cpu_count=1)
        cur = shard_artefact(speedup=1.0, cpu_count=1)
        assert run(tmp_path, base, cur) == 1


class TestHarnessErrors:
    def test_missing_baseline_exits_2(self, tmp_path):
        cur = write(tmp_path, "current.json", scale_artefact())
        assert (
            check_regression.main(
                ["--pair", str(tmp_path / "nope.json"), cur]
            )
            == 2
        )

    def test_missing_current_exits_2(self, tmp_path):
        base = write(tmp_path, "baseline.json", scale_artefact())
        assert (
            check_regression.main(
                ["--pair", base, str(tmp_path / "nope.json")]
            )
            == 2
        )

    def test_malformed_json_exits_2(self, tmp_path):
        base = write(tmp_path, "baseline.json", scale_artefact())
        bad = tmp_path / "current.json"
        bad.write_text("{not json", encoding="utf-8")
        assert check_regression.main(["--pair", base, str(bad)]) == 2

    def test_schema_violation_exits_2(self, tmp_path):
        # Sniffs as dispatch but lacks the sections the checker reads.
        broken = {"configs": {}}
        assert run(tmp_path, broken, broken) == 2

    def test_legacy_single_pair_form(self, tmp_path):
        base = write(tmp_path, "baseline.json", scale_artefact())
        cur = write(tmp_path, "current.json", scale_artefact())
        assert check_regression.main(["--baseline", base, "--current", cur]) == 0

    def test_legacy_form_requires_both_flags(self, tmp_path):
        base = write(tmp_path, "baseline.json", scale_artefact())
        with pytest.raises(SystemExit):
            check_regression.main(["--baseline", base])

    def test_no_pairs_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            check_regression.main([])


class TestMarkdownSummary:
    ROWS = [
        {
            "artefact": "scale",
            "metric": "batch32",
            "figure": "3.40x",
            "baseline": "3.38x",
            "ratio": 1.0059,
            "floor": 0.8,
            "status": "ok",
        },
        {
            "artefact": "city",
            "metric": "drop improvement",
            "figure": "84.4%",
            "baseline": "84.4%",
            "ratio": 1.0,
            "floor": 0.25,
            "status": "ok",
        },
    ]

    def test_renderer_emits_one_table_row_per_figure(self):
        text = check_regression.render_markdown(self.ROWS, [])
        lines = text.splitlines()
        assert "### Benchmark regression gate" in lines
        header = "| artefact | metric | figure | baseline | ratio | floor | status |"
        assert header in lines
        assert "| scale | batch32 | 3.40x | 3.38x | 1.006 | 0.8 | ok |" in lines
        assert (
            "| city | drop improvement | 84.4% | 84.4% | 1.000 | 0.25 | ok |"
            in lines
        )
        assert "**passed**" in lines

    def test_renderer_lists_failures(self):
        text = check_regression.render_markdown(
            self.ROWS, ["scale w1: speedup ratio 0.5 < 0.8"]
        )
        assert "**FAILED** (1 regressions):" in text
        assert "- scale w1: speedup ratio 0.5 < 0.8" in text
        assert "**passed**" not in text

    def test_summary_appended_when_env_set(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        summary.write_text("existing content\n", encoding="utf-8")
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert run(tmp_path, city_artefact(), city_artefact()) == 0
        text = summary.read_text(encoding="utf-8")
        assert text.startswith("existing content\n")
        assert "### Benchmark regression gate" in text
        assert "| city | drop improvement |" in text
        assert "**passed**" in text

    def test_summary_written_on_failure_too(self, tmp_path, monkeypatch):
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        base = city_artefact(improvement=0.8)
        cur = city_artefact(improvement=0.3)
        assert run(tmp_path, base, cur) == 1
        text = summary.read_text(encoding="utf-8")
        assert "**FAILED**" in text

    def test_no_summary_file_without_env(self, tmp_path):
        # The autouse fixture clears GITHUB_STEP_SUMMARY; nothing is
        # written anywhere besides stdout.
        summary = tmp_path / "summary.md"
        assert run(tmp_path, city_artefact(), city_artefact()) == 0
        assert not summary.exists()
