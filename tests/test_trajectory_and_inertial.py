"""Tests for trajectories, the accelerometer, and the trace emulator."""

import pytest

from repro.geo.wgs84 import Wgs84Position
from repro.sensors.base import SensorReading
from repro.sensors.emulator import (
    EmulatorSensor,
    load_trace,
    reading_from_json,
    reading_to_json,
    record_trace,
)
from repro.sensors.inertial import Accelerometer, AccelerometerReading
from repro.sensors.trajectory import (
    RandomWalkTrajectory,
    StationaryTrajectory,
    Waypoint,
    WaypointTrajectory,
)
from repro.sensors.wifi import WifiObservation, WifiScan

START = Wgs84Position(56.17, 10.19)


class TestWaypointTrajectory:
    def make(self):
        east = START.moved(90.0, 100.0)
        return WaypointTrajectory(
            [Waypoint(0.0, START), Waypoint(100.0, east)]
        )

    def test_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([Waypoint(0.0, START)])

    def test_times_must_increase(self):
        with pytest.raises(ValueError):
            WaypointTrajectory(
                [Waypoint(1.0, START), Waypoint(1.0, START)]
            )

    def test_clamps_before_start_and_after_end(self):
        traj = self.make()
        assert traj.position_at(-5.0) == traj.position_at(0.0)
        assert traj.position_at(500.0).distance_to(
            traj.position_at(100.0)
        ) == pytest.approx(0.0, abs=1e-9)

    def test_midpoint_is_halfway(self):
        traj = self.make()
        mid = traj.position_at(50.0)
        assert START.distance_to(mid) == pytest.approx(50.0, rel=1e-3)

    def test_constant_speed_between_waypoints(self):
        traj = self.make()
        assert traj.speed_at(50.0) == pytest.approx(1.0, rel=1e-2)

    def test_pause_leg_has_zero_speed(self):
        traj = WaypointTrajectory(
            [
                Waypoint(0.0, START),
                Waypoint(50.0, START),
                Waypoint(100.0, START.moved(0.0, 70.0)),
            ]
        )
        assert traj.speed_at(20.0) == pytest.approx(0.0, abs=1e-6)
        assert traj.speed_at(80.0) > 1.0

    def test_from_legs(self):
        traj = WaypointTrajectory.from_legs(
            START, [(90.0, 100.0, 2.0), (0.0, 50.0, 1.0)]
        )
        assert traj.duration() == pytest.approx(100.0)
        end = traj.position_at(traj.duration())
        assert START.distance_to(end) == pytest.approx(111.8, rel=0.01)

    def test_from_legs_rejects_bad_speed(self):
        with pytest.raises(ValueError):
            WaypointTrajectory.from_legs(START, [(0.0, 10.0, 0.0)])


class TestOtherTrajectories:
    def test_stationary_never_moves(self):
        traj = StationaryTrajectory(START, 100.0)
        assert traj.position_at(0.0) == traj.position_at(99.0)
        assert traj.speed_at(50.0) == 0.0

    def test_random_walk_deterministic_per_seed(self):
        a = RandomWalkTrajectory(START, 300.0, seed=5)
        b = RandomWalkTrajectory(START, 300.0, seed=5)
        c = RandomWalkTrajectory(START, 300.0, seed=6)
        assert a.position_at(123.0) == b.position_at(123.0)
        assert a.position_at(123.0) != c.position_at(123.0)

    def test_random_walk_covers_duration(self):
        traj = RandomWalkTrajectory(START, 300.0, seed=5)
        assert traj.duration() >= 300.0

    def test_random_walk_moves_at_plausible_speed(self):
        traj = RandomWalkTrajectory(
            START, 600.0, seed=5, pause_probability=0.0, speed_mps=1.4
        )
        total = sum(
            traj.position_at(t).distance_to(traj.position_at(t + 10.0))
            for t in range(0, 590, 10)
        )
        average_speed = total / 590.0
        assert 0.8 < average_speed < 1.6


class TestAccelerometer:
    def test_still_vs_moving_levels(self):
        still = Accelerometer(
            "acc", StationaryTrajectory(START, 100.0), seed=1
        )
        moving = Accelerometer(
            "acc",
            WaypointTrajectory(
                [Waypoint(0.0, START), Waypoint(100.0, START.moved(0, 140))]
            ),
            seed=1,
        )
        still_vals = [r.payload.variance for r in still.sample(50.0)]
        moving_vals = [r.payload.variance for r in moving.sample(50.0)]
        assert max(still_vals) < min(moving_vals)

    def test_variance_never_negative(self):
        acc = Accelerometer(
            "acc", StationaryTrajectory(START, 100.0), seed=2,
            noise_sigma=1.0,
        )
        assert all(r.payload.variance >= 0.0 for r in acc.sample(100.0))

    def test_period_validation(self):
        with pytest.raises(ValueError):
            Accelerometer(
                "acc", StationaryTrajectory(START, 1.0), period_s=0.0
            )


class TestEmulator:
    def readings(self):
        return [
            SensorReading("gps0", 0.0, "$GPGGA,fake*00", {"format": "raw"}),
            SensorReading(
                "gps0",
                1.0,
                WifiScan(1.0, (WifiObservation("ap", -55.0),)),
            ),
            SensorReading("gps0", 2.0, AccelerometerReading(2.0, 0.5)),
        ]

    def test_json_roundtrip_all_payload_kinds(self):
        for reading in self.readings():
            back = reading_from_json(reading_to_json(reading))
            assert back.sensor_id == reading.sensor_id
            assert back.timestamp == reading.timestamp
            assert back.payload == reading.payload

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = record_trace(self.readings(), path)
        assert count == 3
        loaded = load_trace(path)
        assert [r.payload for r in loaded] == [
            r.payload for r in self.readings()
        ]

    def test_replay_by_time(self):
        emulator = EmulatorSensor(self.readings())
        assert len(emulator.sample(0.5)) == 1
        assert len(emulator.sample(2.0)) == 2
        assert emulator.exhausted
        assert emulator.sample(10.0) == []

    def test_replay_preserves_sensor_identity(self):
        emulator = EmulatorSensor(self.readings())
        assert emulator.sensor_id == "gps0"
        out = emulator.sample(5.0)
        assert all(r.sensor_id == "gps0" for r in out)

    def test_sensor_id_override(self):
        emulator = EmulatorSensor(self.readings(), sensor_id="replay")
        assert emulator.sample(5.0)[0].sensor_id == "replay"

    def test_time_offset_shifts_replay(self):
        emulator = EmulatorSensor(self.readings(), time_offset=100.0)
        assert emulator.sample(99.0) == []
        assert len(emulator.sample(100.0)) == 1

    def test_speedup_compresses_schedule(self):
        emulator = EmulatorSensor(self.readings(), speedup=2.0)
        assert len(emulator.sample(1.0)) == 3

    def test_rewind(self):
        emulator = EmulatorSensor(self.readings())
        emulator.sample(10.0)
        emulator.rewind()
        assert len(emulator.sample(10.0)) == 3

    def test_from_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        record_trace(self.readings(), path)
        emulator = EmulatorSensor.from_file(path)
        assert len(emulator.sample(10.0)) == 3

    def test_readings_sorted_by_timestamp(self):
        shuffled = list(reversed(self.readings()))
        emulator = EmulatorSensor(shuffled)
        out = emulator.sample(10.0)
        assert [r.timestamp for r in out] == [0.0, 1.0, 2.0]
