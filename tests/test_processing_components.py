"""Tests for parser, interpreter, resolver and fusion components."""

import pytest

from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum, Kind
from repro.core.graph import ProcessingGraph
from repro.geo.grid import GridPosition
from repro.geo.wgs84 import Wgs84Position
from repro.model.demo import demo_building
from repro.processing.fusion import BestAccuracyFusionComponent
from repro.processing.interpreter import NmeaInterpreterComponent
from repro.processing.parser import NmeaParserComponent
from repro.processing.resolver import RoomResolverComponent
from repro.sensors.nmea import GgaSentence, GsaSentence


def wire(*components):
    graph = ProcessingGraph()
    for c in components:
        graph.add(c)
    for a, b in zip(components, components[1:]):
        graph.connect(a.name, b.name)
    return graph


def gga(t=0.0, lat=56.17, lon=10.19, quality=1, sats=8, hdop=1.2, alt=40.0):
    return GgaSentence(t, lat, lon, quality, sats, hdop, alt)


class TestParser:
    def build(self):
        source = SourceComponent("gps", (Kind.NMEA_RAW,))
        parser = NmeaParserComponent()
        sink = ApplicationSink("app", (Kind.NMEA_SENTENCE,))
        wire(source, parser, sink)
        return source, parser, sink

    def test_whole_line_parsed(self):
        source, _parser, sink = self.build()
        source.inject(Datum(Kind.NMEA_RAW, gga().encode() + "\r\n", 0.0))
        assert sink.last().payload.sentence_type == "GGA"

    def test_fragmented_line_buffered(self):
        source, _parser, sink = self.build()
        line = gga().encode() + "\r\n"
        for i in range(0, len(line), 7):
            source.inject(Datum(Kind.NMEA_RAW, line[i : i + 7], 0.0))
        assert len(sink.received) == 1

    def test_multiple_lines_in_one_fragment(self):
        source, _parser, sink = self.build()
        stream = gga(0.0).encode() + "\r\n" + gga(1.0).encode() + "\r\n"
        source.inject(Datum(Kind.NMEA_RAW, stream, 0.0))
        assert len(sink.received) == 2

    def test_corrupt_line_dropped_and_counted(self):
        source, parser, sink = self.build()
        source.inject(
            Datum(Kind.NMEA_RAW, "$GPGGA,garbage*FF\r\n", 0.0)
        )
        source.inject(Datum(Kind.NMEA_RAW, gga().encode() + "\r\n", 0.0))
        assert len(sink.received) == 1
        assert parser.dropped_lines == 1

    def test_pending_bytes_inspection(self):
        source, parser, _sink = self.build()
        source.inject(Datum(Kind.NMEA_RAW, "$GPGGA,partial", 0.0))
        assert parser.pending_bytes() == len("$GPGGA,partial")

    def test_empty_lines_ignored(self):
        source, parser, sink = self.build()
        source.inject(Datum(Kind.NMEA_RAW, "\r\n\r\n", 0.0))
        assert sink.received == []
        assert parser.dropped_lines == 0


class TestInterpreter:
    def build(self):
        source = SourceComponent("sentences", (Kind.NMEA_SENTENCE,))
        interpreter = NmeaInterpreterComponent()
        sink = ApplicationSink("app", (Kind.POSITION_WGS84,))
        wire(source, interpreter, sink)
        return source, interpreter, sink

    def test_valid_fix_produces_position(self):
        source, _i, sink = self.build()
        source.inject(Datum(Kind.NMEA_SENTENCE, gga(), 5.0))
        position = sink.last().payload
        assert position.latitude_deg == pytest.approx(56.17)
        assert position.timestamp == 5.0

    def test_accuracy_scaled_from_hdop(self):
        source, _i, sink = self.build()
        source.inject(Datum(Kind.NMEA_SENTENCE, gga(hdop=2.0), 0.0))
        assert sink.last().payload.accuracy_m == pytest.approx(10.0)

    def test_invalid_fix_produces_nothing(self):
        source, interpreter, sink = self.build()
        source.inject(
            Datum(
                Kind.NMEA_SENTENCE,
                GgaSentence(0.0, None, None, 0, 2, None, None),
                0.0,
            )
        )
        assert sink.received == []
        assert interpreter.sentences_seen == 1

    def test_non_gga_sentences_ignored(self):
        source, interpreter, sink = self.build()
        source.inject(
            Datum(
                Kind.NMEA_SENTENCE,
                GsaSentence(3, (1, 2, 3, 4), 2.0, 1.0, 1.7),
                0.0,
            )
        )
        assert sink.received == []

    def test_yield_rate(self):
        source, interpreter, _sink = self.build()
        assert interpreter.yield_rate() == 0.0
        source.inject(Datum(Kind.NMEA_SENTENCE, gga(), 0.0))
        source.inject(
            Datum(
                Kind.NMEA_SENTENCE,
                GgaSentence(1.0, None, None, 0, 2, None, None),
                1.0,
            )
        )
        assert interpreter.yield_rate() == 0.5


class TestResolver:
    def build(self):
        building = demo_building()
        source = SourceComponent("positions", (Kind.POSITION_WGS84,))
        resolver = RoomResolverComponent(building)
        sink = ApplicationSink("app", (Kind.ROOM_ID,))
        wire(source, resolver, sink)
        return building, source, sink

    def test_inside_resolves_to_room(self):
        building, source, sink = self.build()
        inside = building.grid.to_wgs84(building.room_by_id("S3").centroid)
        source.inject(Datum(Kind.POSITION_WGS84, inside, 0.0))
        assert sink.last().payload.room_id == "S3"

    def test_outside_resolves_to_none_room(self):
        building, source, sink = self.build()
        outside = building.grid.to_wgs84(GridPosition(-50.0, -50.0))
        source.inject(Datum(Kind.POSITION_WGS84, outside, 0.0))
        location = sink.last().payload
        assert location.room_id is None
        assert not location.is_inside

    def test_model_id(self):
        building, _s, _sink = self.build()
        assert RoomResolverComponent(building).model_id() == "hopper"


class TestFusion:
    def build(self, window=10.0):
        gps = SourceComponent("gps-i", (Kind.POSITION_WGS84,))
        wifi = SourceComponent("wifi-e", (Kind.POSITION_WGS84,))
        fusion = BestAccuracyFusionComponent(freshness_window_s=window)
        sink = ApplicationSink("app", (Kind.POSITION_WGS84,))
        graph = ProcessingGraph()
        for c in (gps, wifi, fusion, sink):
            graph.add(c)
        graph.connect("gps-i", "fusion")
        graph.connect("wifi-e", "fusion")
        graph.connect("fusion", "app")
        return gps, wifi, sink

    def position(self, accuracy, t):
        return Wgs84Position(56.17, 10.19, accuracy_m=accuracy, timestamp=t)

    def test_best_accuracy_wins(self):
        gps, wifi, sink = self.build()
        gps.inject(Datum(Kind.POSITION_WGS84, self.position(8.0, 0.0), 0.0))
        wifi.inject(Datum(Kind.POSITION_WGS84, self.position(3.0, 0.5), 0.5))
        assert sink.last().attributes["selected_source"] == "wifi-e"

    def test_stale_source_ages_out(self):
        gps, wifi, sink = self.build(window=5.0)
        wifi.inject(Datum(Kind.POSITION_WGS84, self.position(3.0, 0.0), 0.0))
        gps.inject(Datum(Kind.POSITION_WGS84, self.position(8.0, 20.0), 20.0))
        # WiFi was better but is 20s old: GPS is selected.
        assert sink.last().attributes["selected_source"] == "gps-i"

    def test_missing_accuracy_uses_default(self):
        gps, wifi, sink = self.build()
        gps.inject(
            Datum(Kind.POSITION_WGS84, self.position(None, 0.0), 0.0)
        )
        wifi.inject(Datum(Kind.POSITION_WGS84, self.position(30.0, 0.0), 0.0))
        # default accuracy 50 > 30, so wifi wins.
        assert sink.last().attributes["selected_source"] == "wifi-e"

    def test_known_sources_inspection(self):
        gps, wifi, _sink = self.build()
        fusion = BestAccuracyFusionComponent()
        assert fusion.known_sources() == {}

    def test_window_state_hooks(self):
        fusion = BestAccuracyFusionComponent()
        fusion.set_window(3.0)
        assert fusion.get_window() == 3.0
        with pytest.raises(ValueError):
            fusion.set_window(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BestAccuracyFusionComponent(freshness_window_s=0.0)
