"""Tests for the scale-out runtime: queues, schedulers, engine, seams."""

import pytest

from repro.clock import SimulationClock
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import GraphError, ProcessingGraph
from repro.core.middleware import PerPos
from repro.core.positioning import Target
from repro.core.report import infrastructure_snapshot, render_report
from repro.robustness.supervision import SupervisionPolicy, Supervisor
from repro.runtime import (
    ACCEPTED,
    BLOCK,
    COALESCE,
    COALESCED,
    DROP_NEWEST,
    DROP_OLDEST,
    DROPPED,
    EngineError,
    IngestionQueue,
    PositioningEngine,
    QueueError,
    REJECTED,
    RoundRobinScheduler,
    SchedulerError,
    WeightedScheduler,
)


def datum(value, kind="x", t=0.0):
    return Datum(kind=kind, payload=value, timestamp=t)


def payloads(datums):
    return [d.payload for d in datums]


def build_graph():
    """src -> f -> sink, all on kind 'x'."""
    graph = ProcessingGraph()
    src = SourceComponent("src", ("x",))
    f = FunctionComponent("f", ("x",), ("x",), fn=lambda d: d)
    sink = ApplicationSink("sink", ("x",))
    graph.add(src)
    graph.add(f)
    graph.add(sink)
    graph.connect("src", "f", "in")
    graph.connect("f", "sink", "in")
    return graph, src, sink


class TestQueuePolicies:
    def test_block_rejects_when_full(self):
        queue = IngestionQueue("q", capacity=2, policy=BLOCK)
        assert queue.offer(datum(1)) == ACCEPTED
        assert queue.offer(datum(2)) == ACCEPTED
        assert queue.offer(datum(3)) == REJECTED
        # The rejected datum was shed producer-side: queue unchanged.
        assert payloads(queue.drain()) == [1, 2]
        assert queue.rejected == 1
        assert queue.dropped == 0

    def test_block_admits_again_after_drain(self):
        queue = IngestionQueue("q", capacity=1, policy=BLOCK)
        queue.offer(datum(1))
        assert queue.offer(datum(2)) == REJECTED
        queue.drain()
        assert queue.offer(datum(2)) == ACCEPTED

    def test_drop_oldest_evicts_head(self):
        queue = IngestionQueue("q", capacity=2, policy=DROP_OLDEST)
        queue.offer(datum(1))
        queue.offer(datum(2))
        assert queue.offer(datum(3)) == ACCEPTED
        assert payloads(queue.drain()) == [2, 3]
        assert queue.dropped_oldest == 1
        assert queue.dropped == 1

    def test_drop_newest_sheds_incoming(self):
        queue = IngestionQueue("q", capacity=2, policy=DROP_NEWEST)
        queue.offer(datum(1))
        queue.offer(datum(2))
        assert queue.offer(datum(3)) == DROPPED
        assert payloads(queue.drain()) == [1, 2]
        assert queue.dropped_newest == 1

    def test_coalesce_replaces_same_kind_in_place(self):
        queue = IngestionQueue("q", capacity=4, policy=COALESCE)
        queue.offer(datum(1, kind="x"))
        queue.offer(datum(2, kind="y"))
        assert queue.offer(datum(3, kind="x")) == COALESCED
        # Replaced in place: x keeps its queue position, freshest payload.
        assert payloads(queue.drain()) == [3, 2]
        assert queue.coalesced == 1

    def test_coalesce_new_kind_overflow_behaves_like_drop_oldest(self):
        queue = IngestionQueue("q", capacity=2, policy=COALESCE)
        queue.offer(datum(1, kind="x"))
        queue.offer(datum(2, kind="y"))
        assert queue.offer(datum(3, kind="z")) == ACCEPTED
        assert payloads(queue.drain()) == [2, 3]
        assert queue.dropped_oldest == 1

    def test_counters_and_high_water(self):
        queue = IngestionQueue("q", capacity=3)
        for i in range(5):
            queue.offer(datum(i))
        stats = queue.stats()
        assert stats["offered"] == 5
        assert stats["accepted"] == 5
        assert stats["dropped_oldest"] == 2
        assert stats["high_water"] == 3
        assert stats["depth"] == 3

    def test_drain_partial_is_fifo(self):
        queue = IngestionQueue("q", capacity=8)
        for i in range(5):
            queue.offer(datum(i))
        assert payloads(queue.drain(2)) == [0, 1]
        assert payloads(queue.drain(0)) == []
        assert payloads(queue.drain()) == [2, 3, 4]
        assert queue.drained == 5

    def test_peek_and_clear(self):
        queue = IngestionQueue("q")
        assert queue.peek() is None
        queue.offer(datum(1))
        queue.offer(datum(2))
        assert queue.peek().payload == 1
        assert queue.clear() == 2
        assert queue.depth == 0
        assert queue.dropped_oldest == 2

    def test_set_capacity_shrink_evicts_oldest(self):
        queue = IngestionQueue("q", capacity=4)
        for i in range(4):
            queue.offer(datum(i))
        assert queue.set_capacity(2) == 4
        assert payloads(queue.drain()) == [2, 3]
        assert queue.dropped_oldest == 2

    def test_set_policy_swaps_and_validates(self):
        queue = IngestionQueue("q", policy=BLOCK)
        assert queue.set_policy(COALESCE) == BLOCK
        assert queue.policy == COALESCE
        with pytest.raises(QueueError):
            queue.set_policy("bogus")
        with pytest.raises(QueueError):
            IngestionQueue("q", policy="bogus")
        with pytest.raises(QueueError):
            IngestionQueue("q", capacity=0)
        with pytest.raises(QueueError):
            queue.set_capacity(0)

    def test_coalesce_collision_counts_per_kind_in_stats(self):
        queue = IngestionQueue("q", capacity=4, policy=COALESCE)
        queue.offer(datum(1, kind="x"))
        queue.offer(datum(2, kind="y"))
        queue.offer(datum(3, kind="x"))
        queue.offer(datum(4, kind="x"))
        queue.offer(datum(5, kind="y"))
        stats = queue.stats()
        assert stats["coalesce_collisions"] == {"x": 2, "y": 1}
        assert stats["coalesced"] == 3
        # The per-key breakdown always sums to the flat counter.
        assert sum(stats["coalesce_collisions"].values()) == queue.coalesced
        # stats() hands out a copy, not the live mapping.
        stats["coalesce_collisions"]["x"] = 99
        assert queue.coalesce_collisions["x"] == 2

    def test_no_collisions_recorded_outside_coalesce_policy(self):
        queue = IngestionQueue("q", capacity=2, policy=DROP_OLDEST)
        queue.offer(datum(1, kind="x"))
        queue.offer(datum(2, kind="x"))
        queue.offer(datum(3, kind="x"))
        assert queue.stats()["coalesce_collisions"] == {}

    def test_coalesce_after_capacity_shrink_below_depth(self):
        queue = IngestionQueue("q", capacity=4, policy=COALESCE)
        for i, kind in enumerate(["a", "b", "c", "d"]):
            queue.offer(datum(i, kind=kind))
        # Shrink below depth: oldest (a, b) evicted as dropped_oldest.
        assert queue.set_capacity(2) == 4
        assert queue.depth == 2
        assert queue.dropped_oldest == 2
        # A surviving kind still coalesces in place at the new bound...
        assert queue.offer(datum(9, kind="c")) == COALESCED
        assert queue.depth == 2
        # ...while an evicted kind re-enters via the overflow path
        # (drop_oldest), not by resurrecting its old slot.
        assert queue.offer(datum(10, kind="a")) == ACCEPTED
        assert payloads(queue.drain()) == [3, 10]
        assert queue.dropped_oldest == 3
        assert queue.stats()["coalesce_collisions"] == {"c": 1}

    def test_coalesce_shrink_to_one_keeps_freshest_of_survivor(self):
        queue = IngestionQueue("q", capacity=3, policy=COALESCE)
        queue.offer(datum(1, kind="x"))
        queue.offer(datum(2, kind="y"))
        queue.offer(datum(3, kind="z"))
        queue.set_capacity(1)  # only z survives
        assert queue.offer(datum(4, kind="z")) == COALESCED
        assert queue.depth == 1
        assert queue.offer(datum(5, kind="x")) == ACCEPTED  # evicts z
        assert payloads(queue.drain()) == [5]
        # High-water reflects the pre-shrink history.
        assert queue.high_water == 3


class FakeLane:
    def __init__(self, name, weight=1):
        self.target_id = name
        self.weight = weight


class TestSchedulers:
    def test_round_robin_rotates_start(self):
        lanes = [FakeLane(n) for n in "abc"]
        scheduler = RoundRobinScheduler(quantum=5)
        first = [lane.target_id for lane, _ in scheduler.plan(lanes)]
        second = [lane.target_id for lane, _ in scheduler.plan(lanes)]
        third = [lane.target_id for lane, _ in scheduler.plan(lanes)]
        fourth = [lane.target_id for lane, _ in scheduler.plan(lanes)]
        assert first == ["a", "b", "c"]
        assert second == ["b", "c", "a"]
        assert third == ["c", "a", "b"]
        assert fourth == first  # deterministic cycle

    def test_round_robin_equal_quanta(self):
        lanes = [FakeLane(n) for n in "ab"]
        plan = RoundRobinScheduler(quantum=7).plan(lanes)
        assert [quantum for _, quantum in plan] == [7, 7]

    def test_weighted_quantum_scales_with_weight(self):
        lanes = [FakeLane("a", weight=1), FakeLane("b", weight=3)]
        plan = WeightedScheduler(quantum=4).plan(lanes)
        assert {lane.target_id: q for lane, q in plan} == {"a": 4, "b": 12}

    def test_empty_lanes_plan_empty(self):
        assert RoundRobinScheduler().plan([]) == []
        assert WeightedScheduler().plan([]) == []

    def test_invalid_quantum(self):
        with pytest.raises(SchedulerError):
            RoundRobinScheduler(quantum=0)
        with pytest.raises(SchedulerError):
            WeightedScheduler(quantum=0)

    def test_describe(self):
        assert RoundRobinScheduler(quantum=9).describe() == {
            "type": "RoundRobinScheduler",
            "quantum": 9,
        }


class TestEngine:
    def test_track_submit_drain_roundtrip(self):
        graph, src, sink = build_graph()
        engine = PositioningEngine(graph)
        engine.track("t1", "src")
        engine.track("t2", src)
        for i in range(3):
            engine.submit("t1", datum(i))
        engine.submit("t2", datum(100))
        assert engine.depth_total() == 4
        assert engine.drain_round() == 4
        assert sorted(payloads(sink.received)) == [0, 1, 2, 100]
        assert engine.depth_total() == 0

    def test_submit_stamps_target_attribute(self):
        graph, _, sink = build_graph()
        engine = PositioningEngine(graph)
        engine.track("badge", "src")
        engine.submit("badge", datum(1))
        engine.drain_round()
        assert sink.received[0].attributes["target"] == "badge"

    def test_stamping_can_be_disabled(self):
        graph, _, sink = build_graph()
        engine = PositioningEngine(graph, stamp_targets=False)
        engine.track("badge", "src")
        engine.submit("badge", datum(1))
        engine.drain_round()
        assert "target" not in sink.received[0].attributes

    def test_per_lane_fifo_order_preserved(self):
        graph, _, sink = build_graph()
        engine = PositioningEngine(graph)
        engine.track("t1", "src")
        for i in range(10):
            engine.submit("t1", datum(i))
        engine.drain_all()
        assert payloads(sink.received) == list(range(10))

    def test_quantum_bounds_drain_per_round(self):
        graph, _, sink = build_graph()
        engine = PositioningEngine(graph, scheduler=RoundRobinScheduler(quantum=2))
        engine.track("t1", "src")
        for i in range(5):
            engine.submit("t1", datum(i))
        assert engine.drain_round() == 2
        assert engine.drain_round() == 2
        assert engine.drain_round() == 1
        assert payloads(sink.received) == list(range(5))

    def test_drain_all_counts_and_terminates(self):
        graph, _, sink = build_graph()
        engine = PositioningEngine(graph, scheduler=RoundRobinScheduler(quantum=1))
        engine.track("t1", "src")
        for i in range(4):
            engine.submit("t1", datum(i))
        assert engine.drain_all() == 4
        assert engine.rounds >= 4
        assert engine.drained_total == 4

    def test_drain_all_truncation_raises_and_latches(self):
        # max_rounds exhaustion is truncation, not quiescence: a
        # coordinator reading snapshot() must be able to tell them
        # apart even if the EngineError was swallowed en route.
        graph, _, _ = build_graph()
        engine = PositioningEngine(graph, scheduler=RoundRobinScheduler(quantum=1))
        engine.track("t1", "src")
        for i in range(5):
            engine.submit("t1", datum(i))
        with pytest.raises(EngineError, match="3 datums still pending"):
            engine.drain_all(max_rounds=2)
        snap = engine.snapshot()
        assert snap["truncations"] == 1
        assert snap["last_drain_truncated"] is True
        assert snap["pending"] == 3
        # A clean drain clears the latch; the counter keeps history.
        assert engine.drain_all() == 3
        snap = engine.snapshot()
        assert snap["truncations"] == 1
        assert snap["last_drain_truncated"] is False

    def test_drain_all_finishing_on_the_last_round_is_quiescence(self):
        # Queues emptying exactly at max_rounds is a clean drain: no
        # EngineError, no truncation latch (a sharded coordinator must
        # not degrade a fully-drained shard).
        graph, _, sink = build_graph()
        engine = PositioningEngine(graph, scheduler=RoundRobinScheduler(quantum=1))
        engine.track("t1", "src")
        engine.submit("t1", datum(0))
        engine.submit("t1", datum(1))
        assert engine.drain_all(max_rounds=2) == 2
        snap = engine.snapshot()
        assert snap["truncations"] == 0
        assert snap["last_drain_truncated"] is False
        assert payloads(sink.received) == [0, 1]

    def test_drain_all_clean_run_never_sets_the_latch(self):
        graph, _, _ = build_graph()
        engine = PositioningEngine(graph)
        engine.track("t1", "src")
        engine.submit("t1", datum(1))
        assert engine.drain_all() == 1
        snap = engine.snapshot()
        assert snap["truncations"] == 0
        assert snap["last_drain_truncated"] is False

    def test_weighted_fairness_across_lanes(self):
        graph, _, sink = build_graph()
        engine = PositioningEngine(graph, scheduler=WeightedScheduler(quantum=1))
        engine.track("heavy", "src", weight=3)
        engine.track("light", "src", weight=1)
        for i in range(6):
            engine.submit("heavy", datum(f"h{i}"))
            engine.submit("light", datum(f"l{i}"))
        engine.drain_round()
        # One round: heavy got quantum 3, light got quantum 1.
        stamped = [d.attributes["target"] for d in sink.received]
        assert stamped.count("heavy") == 3
        assert stamped.count("light") == 1

    def test_track_validation(self):
        graph, _, _ = build_graph()
        engine = PositioningEngine(graph)
        engine.track("t1", "src")
        with pytest.raises(EngineError):
            engine.track("t1", "src")  # duplicate
        with pytest.raises(EngineError):
            engine.track("t2", "sink")  # not a source component
        with pytest.raises(EngineError):
            engine.track("t3", "src", weight=0)
        with pytest.raises(EngineError):
            engine.track(object(), "src")  # no target id
        with pytest.raises(GraphError):
            engine.track("t4", "ghost")
        with pytest.raises(EngineError):
            engine.submit("unknown", datum(1))
        with pytest.raises(EngineError):
            engine.lane("unknown")

    def test_untrack_discards_pending(self):
        graph, _, sink = build_graph()
        engine = PositioningEngine(graph)
        engine.track("t1", "src")
        engine.submit("t1", datum(1))
        lane = engine.untrack("t1")
        assert lane.queue.depth == 1
        assert engine.lanes() == []
        engine.drain_round()
        assert sink.received == []

    def test_set_policy_adapts_lane(self):
        graph, _, _ = build_graph()
        engine = PositioningEngine(graph)
        engine.track("t1", "src", capacity=4)
        stats = engine.set_policy("t1", policy=BLOCK, capacity=2, weight=5)
        assert stats["policy"] == BLOCK
        assert stats["capacity"] == 2
        assert stats["weight"] == 5
        with pytest.raises(EngineError):
            engine.set_policy("t1", weight=0)

    def test_target_object_binding(self):
        graph, _, _ = build_graph()
        engine = PositioningEngine(graph)
        target = Target("badge-7")
        engine.track(target, "src")
        assert target.lane is engine.lane("badge-7")
        engine.submit("badge-7", datum(1))
        assert target.queue_stats()["depth"] == 1
        # An untracked Target degrades to empty stats, not an error.
        assert Target("other").queue_stats() == {}

    def test_clock_driven_start_stop(self):
        clock = SimulationClock()
        graph, _, sink = build_graph()
        engine = PositioningEngine(graph, clock=clock)
        engine.track("t1", "src")
        engine.start(1.0)
        engine.submit("t1", datum(1))
        clock.advance(1.0)
        assert payloads(sink.received) == [1]
        engine.submit("t1", datum(2))
        clock.advance(1.0)
        assert payloads(sink.received) == [1, 2]
        engine.stop()
        engine.submit("t1", datum(3))
        clock.advance(5.0)
        assert payloads(sink.received) == [1, 2]  # no rounds after stop

    def test_start_requires_clock_and_positive_interval(self):
        graph, _, _ = build_graph()
        engine = PositioningEngine(graph)
        with pytest.raises(EngineError):
            engine.start(1.0)
        clocked = PositioningEngine(ProcessingGraph(), clock=SimulationClock())
        with pytest.raises(EngineError):
            clocked.start(0.0)

    def test_restart_cancels_previous_schedule(self):
        clock = SimulationClock()
        graph, _, sink = build_graph()
        engine = PositioningEngine(graph, clock=clock)
        engine.track("t1", "src")
        engine.start(1.0)
        engine.start(10.0)  # replaces the 1s schedule
        engine.submit("t1", datum(1))
        clock.advance(5.0)
        assert sink.received == []
        clock.advance(5.0)
        assert payloads(sink.received) == [1]

    def test_snapshot_shape(self):
        graph, _, _ = build_graph()
        engine = PositioningEngine(graph)
        engine.track("t1", "src", weight=2)
        engine.submit("t1", datum(1))
        engine.drain_round()
        snapshot = engine.snapshot()
        assert snapshot["rounds"] == 1
        assert snapshot["drained_total"] == 1
        assert snapshot["pending"] == 0
        assert snapshot["running"] is False
        assert snapshot["lanes"]["t1"]["weight"] == 2
        assert snapshot["scheduler"]["type"] == "RoundRobinScheduler"

    def test_lanes_for_source(self):
        graph, src, _ = build_graph()
        other = SourceComponent("src2", ("x",))
        graph.add(other)
        engine = PositioningEngine(graph)
        engine.track("a", src)
        engine.track("b", "src2")
        engine.track("c", "src")
        assert [lane.target_id for lane in engine.lanes_for_source("src")] == [
            "a",
            "c",
        ]


class TestEngineWithSupervision:
    def test_batch_failures_isolated_per_datum(self):
        graph, _, sink = build_graph()
        boom = FunctionComponent(
            "boom",
            ("x",),
            ("x",),
            fn=lambda d: (_ for _ in ()).throw(ValueError("boom"))
            if d.payload == 1
            else d,
        )
        graph.remove("f", reconnect=False)
        graph.add(boom)
        graph.connect("src", "boom", "in")
        graph.connect("boom", "sink", "in")
        supervisor = Supervisor(SupervisionPolicy(failure_threshold=100))
        graph.set_supervisor(supervisor)
        engine = PositioningEngine(graph)
        engine.track("t1", "src")
        for i in range(4):
            engine.submit("t1", datum(i))
        engine.drain_round()
        # Datum 1 failed inside the batch; 0, 2, 3 still flowed.
        assert payloads(sink.received) == [0, 2, 3]
        assert supervisor.failure_count("boom") == 1


class TestRuntimeVisibility:
    def make_middleware(self):
        mw = PerPos()
        src = SourceComponent("src", ("x",))
        sink = ApplicationSink("sink", ("x",))
        mw.graph.add(src)
        mw.graph.add(sink)
        mw.graph.connect("src", "sink", "in")
        return mw

    def test_enable_disable_runtime(self):
        mw = self.make_middleware()
        assert mw.runtime is None
        engine = mw.enable_runtime()
        assert mw.runtime is engine
        assert engine.clock is mw.clock
        assert (
            mw.framework.registry.find_service("perpos.PositioningEngine")
            is not None
        )
        assert mw.disable_runtime() is engine
        assert mw.runtime is None

    def test_reenable_replaces_and_stops_previous(self):
        mw = self.make_middleware()
        first = mw.enable_runtime()
        first.track("t1", "src")
        first.start(1.0)
        second = mw.enable_runtime(RoundRobinScheduler(quantum=3))
        assert mw.runtime is second
        # The replaced engine's schedule was cancelled.
        first.submit("t1", datum(1))
        mw.clock.advance(10.0)
        assert mw.graph.component("sink").received == []

    def test_psl_ingestion_lanes_and_describe(self):
        mw = self.make_middleware()
        assert mw.psl.ingestion_lanes() == {}
        assert "ingestion" not in mw.psl.describe("src")
        engine = mw.enable_runtime()
        engine.track("t1", "src", policy=COALESCE)
        lanes = mw.psl.ingestion_lanes()
        assert lanes["t1"]["policy"] == COALESCE
        assert mw.psl.ingestion_lanes("src")["t1"]["source"] == "src"
        assert mw.psl.ingestion_lanes("sink") == {}
        described = mw.psl.describe("src")
        assert described["ingestion"]["t1"]["capacity"] == 64

    def test_psl_set_backpressure(self):
        mw = self.make_middleware()
        with pytest.raises(GraphError):
            mw.psl.set_backpressure("t1", policy=BLOCK)
        engine = mw.enable_runtime()
        engine.track("t1", "src")
        stats = mw.psl.set_backpressure("t1", policy=BLOCK, capacity=2)
        assert stats["policy"] == BLOCK
        assert engine.lane("t1").queue.capacity == 2

    def test_report_runtime_section(self):
        mw = self.make_middleware()
        assert infrastructure_snapshot(mw)["runtime"] is None
        assert "(no positioning engine)" in render_report(mw)
        engine = mw.enable_runtime()
        engine.track("t1", "src", capacity=2)
        for i in range(4):
            engine.submit("t1", datum(i))
        engine.drain_all()
        snapshot = infrastructure_snapshot(mw)
        lane = snapshot["runtime"]["lanes"]["t1"]
        assert lane["dropped_oldest"] == 2
        report = render_report(mw)
        assert "ingestion:" in report
        assert "t1 @src" in report
        assert "dropped=2" in report

    def test_hub_gauges_and_counters(self):
        mw = self.make_middleware()
        hub = mw.enable_observability(tracing=False)
        engine = mw.enable_runtime()
        engine.track("t1", "src", capacity=1)
        engine.submit("t1", datum(1))
        engine.submit("t1", datum(2))  # evicts datum 1
        engine.drain_round()
        snapshot = hub.registry.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        assert counters["queue_offers{target=t1,verdict=accepted}"] == 2
        assert counters["scheduler_rounds"] == 1
        assert counters["scheduler_drained"] == 1
        assert gauges["queue_depth{target=t1}"] == 0.0
        assert gauges["queue_dropped_total{target=t1}"] == 1.0
