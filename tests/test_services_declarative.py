"""Tests for declarative components and dependency resolution."""

import pytest

from repro.services.declarative import (
    ComponentDescriptor,
    ComponentRuntime,
    Reference,
)
from repro.services.registry import ServiceRegistry


def make_runtime():
    registry = ServiceRegistry()
    return registry, ComponentRuntime(registry)


class TestActivation:
    def test_component_without_dependencies_activates_immediately(self):
        registry, runtime = make_runtime()
        runtime.add(
            ComponentDescriptor(
                "a", factory=lambda: "instance-a", provides=("svc.A",)
            )
        )
        assert runtime.active_components() == ["a"]
        assert registry.find_service("svc.A") == "instance-a"

    def test_component_waits_for_dependency(self):
        registry, runtime = make_runtime()
        runtime.add(
            ComponentDescriptor(
                "consumer",
                factory=lambda dep: f"got-{dep}",
                references=(Reference("dep", "svc.Dep"),),
            )
        )
        assert runtime.active_components() == []
        registry.register("svc.Dep", "the-dep")
        assert runtime.active_components() == ["consumer"]
        assert runtime.component_instance("consumer") == "got-the-dep"

    def test_chain_resolves_regardless_of_order(self):
        registry, runtime = make_runtime()
        # C needs B, B needs A; declare C first.
        runtime.add(
            ComponentDescriptor(
                "c",
                factory=lambda b: f"c({b})",
                references=(Reference("b", "svc.B"),),
            )
        )
        runtime.add(
            ComponentDescriptor(
                "b",
                factory=lambda a: f"b({a})",
                provides=("svc.B",),
                references=(Reference("a", "svc.A"),),
            )
        )
        assert runtime.active_components() == []
        runtime.add(
            ComponentDescriptor("a", factory=lambda: "a", provides=("svc.A",))
        )
        assert set(runtime.active_components()) == {"a", "b", "c"}
        assert runtime.component_instance("c") == "c(b(a))"

    def test_optional_reference_passes_none(self):
        registry, runtime = make_runtime()
        runtime.add(
            ComponentDescriptor(
                "c",
                factory=lambda extra: f"extra={extra}",
                references=(
                    Reference("extra", "svc.Extra", optional=True),
                ),
            )
        )
        assert runtime.component_instance("c") == "extra=None"

    def test_reference_filter_respected(self):
        registry, runtime = make_runtime()
        registry.register("svc.S", "wrong", {"technology": "wifi"})
        runtime.add(
            ComponentDescriptor(
                "c",
                factory=lambda s: s,
                references=(
                    Reference("s", "svc.S", flt={"technology": "gps"}),
                ),
            )
        )
        assert runtime.active_components() == []
        registry.register("svc.S", "right", {"technology": "gps"})
        assert runtime.component_instance("c") == "right"

    def test_duplicate_name_rejected(self):
        _registry, runtime = make_runtime()
        runtime.add(ComponentDescriptor("a", factory=lambda: 1))
        with pytest.raises(ValueError):
            runtime.add(ComponentDescriptor("a", factory=lambda: 2))


class TestDeactivation:
    def test_deactivates_when_dependency_unregisters(self):
        registry, runtime = make_runtime()
        dep_registration = registry.register("svc.Dep", "dep")
        runtime.add(
            ComponentDescriptor(
                "c",
                factory=lambda dep: dep,
                provides=("svc.C",),
                references=(Reference("dep", "svc.Dep"),),
            )
        )
        assert runtime.active_components() == ["c"]
        dep_registration.unregister()
        assert runtime.active_components() == []
        assert registry.find_service("svc.C") is None

    def test_deactivate_hook_called(self):
        registry, runtime = make_runtime()
        calls = []

        class Component:
            def __init__(self, dep):
                self.dep = dep

            def deactivate(self):
                calls.append("deactivated")

        dep_reg = registry.register("svc.Dep", "dep")
        runtime.add(
            ComponentDescriptor(
                "c",
                factory=Component,
                references=(Reference("dep", "svc.Dep"),),
            )
        )
        dep_reg.unregister()
        assert calls == ["deactivated"]

    def test_cascade_deactivation(self):
        registry, runtime = make_runtime()
        a_reg = registry.register("svc.A", "a")
        runtime.add(
            ComponentDescriptor(
                "b",
                factory=lambda a: "b",
                provides=("svc.B",),
                references=(Reference("a", "svc.A"),),
            )
        )
        runtime.add(
            ComponentDescriptor(
                "c",
                factory=lambda b: "c",
                references=(Reference("b", "svc.B"),),
            )
        )
        assert set(runtime.active_components()) == {"b", "c"}
        a_reg.unregister()
        assert runtime.active_components() == []

    def test_reactivation_after_dependency_returns(self):
        registry, runtime = make_runtime()
        runtime.add(
            ComponentDescriptor(
                "c",
                factory=lambda dep: f"with-{dep}",
                references=(Reference("dep", "svc.Dep"),),
            )
        )
        reg = registry.register("svc.Dep", "first")
        assert runtime.component_instance("c") == "with-first"
        reg.unregister()
        assert runtime.active_components() == []
        registry.register("svc.Dep", "second")
        assert runtime.component_instance("c") == "with-second"

    def test_remove_component(self):
        registry, runtime = make_runtime()
        runtime.add(
            ComponentDescriptor("a", factory=lambda: "a", provides=("svc.A",))
        )
        runtime.remove("a")
        assert registry.find_service("svc.A") is None
        with pytest.raises(KeyError):
            runtime.component_instance("a")

    def test_remove_unknown_component(self):
        _registry, runtime = make_runtime()
        with pytest.raises(KeyError):
            runtime.remove("ghost")

    def test_close_deactivates_everything(self):
        registry, runtime = make_runtime()
        runtime.add(
            ComponentDescriptor("a", factory=lambda: "a", provides=("svc.A",))
        )
        runtime.close()
        assert registry.find_service("svc.A") is None
