"""Tests for constellation geometry and DOP computation."""

import math

import pytest

from repro.geo.wgs84 import Wgs84Position
from repro.sensors.satellites import (
    Constellation,
    GPS_ORBIT_RADIUS_M,
    SatelliteView,
    compute_dops,
)

OBSERVER = Wgs84Position(56.17, 10.19)


class TestConstellation:
    def test_nominal_gps_has_30_satellites(self):
        c = Constellation.nominal_gps()
        assert len(c.satellites) == 30
        assert len({s.prn for s in c.satellites}) == 30

    def test_satellites_at_orbital_radius(self):
        c = Constellation.nominal_gps()
        for sat in c.satellites[:5]:
            ecef = sat.ecef_at(1234.0)
            radius = math.sqrt(
                ecef.x_m**2 + ecef.y_m**2 + ecef.z_m**2
            )
            assert radius == pytest.approx(GPS_ORBIT_RADIUS_M, rel=1e-9)

    def test_reasonable_visible_count_open_sky(self):
        c = Constellation.nominal_gps()
        views = c.views_from(OBSERVER, t=0.0, elevation_mask_deg=5.0)
        # Mid-latitude observers see roughly 8-12 GPS satellites.
        assert 6 <= len(views) <= 14

    def test_views_respect_elevation_mask(self):
        c = Constellation.nominal_gps()
        low = c.views_from(OBSERVER, 0.0, elevation_mask_deg=5.0)
        high = c.views_from(OBSERVER, 0.0, elevation_mask_deg=40.0)
        assert len(high) < len(low)
        assert all(v.elevation_deg >= 40.0 for v in high)

    def test_visibility_changes_over_time(self):
        c = Constellation.nominal_gps()
        prns_now = {v.prn for v in c.views_from(OBSERVER, 0.0)}
        prns_later = {v.prn for v in c.views_from(OBSERVER, 7200.0)}
        assert prns_now != prns_later

    def test_snr_increases_with_elevation(self):
        c = Constellation.nominal_gps()
        views = sorted(
            c.views_from(OBSERVER, 0.0), key=lambda v: v.elevation_deg
        )
        assert views[-1].snr_db > views[0].snr_db


class TestDops:
    def make_view(self, prn, az, el):
        return SatelliteView(prn, az, el, 40.0)

    def test_fewer_than_four_satellites_yields_none(self):
        views = [self.make_view(i, 90.0 * i, 45.0) for i in range(3)]
        assert compute_dops(views) is None

    def test_good_geometry_low_hdop(self):
        # Four well-spread satellites plus one overhead: textbook geometry.
        views = [
            self.make_view(1, 0.0, 30.0),
            self.make_view(2, 90.0, 30.0),
            self.make_view(3, 180.0, 30.0),
            self.make_view(4, 270.0, 30.0),
            self.make_view(5, 0.0, 85.0),
        ]
        dops = compute_dops(views)
        assert dops is not None
        assert dops.hdop < 2.0
        assert dops.pdop >= dops.hdop
        assert dops.gdop >= dops.pdop

    def test_clustered_geometry_high_hdop(self):
        # Elevations must vary: four satellites at identical elevation make
        # clock and altitude inseparable (a genuinely singular geometry).
        spread = compute_dops(
            [
                self.make_view(1, 0.0, 30.0),
                self.make_view(2, 90.0, 45.0),
                self.make_view(3, 180.0, 30.0),
                self.make_view(4, 270.0, 60.0),
            ]
        )
        clustered = compute_dops(
            [
                self.make_view(1, 0.0, 30.0),
                self.make_view(2, 10.0, 45.0),
                self.make_view(3, 20.0, 30.0),
                self.make_view(4, 30.0, 60.0),
            ]
        )
        assert spread is not None and clustered is not None
        assert clustered.hdop > spread.hdop

    def test_degenerate_geometry_returns_none_or_huge(self):
        # All satellites in exactly the same direction: singular matrix.
        views = [self.make_view(i, 45.0, 45.0) for i in range(1, 7)]
        assert compute_dops(views) is None

    def test_more_satellites_improve_dop(self):
        base = [
            self.make_view(1, 0.0, 30.0),
            self.make_view(2, 90.0, 45.0),
            self.make_view(3, 180.0, 30.0),
            self.make_view(4, 270.0, 60.0),
        ]
        extra = base + [
            self.make_view(5, 45.0, 60.0),
            self.make_view(6, 225.0, 60.0),
        ]
        assert compute_dops(extra).hdop < compute_dops(base).hdop

    def test_real_constellation_geometry_produces_sane_dops(self):
        c = Constellation.nominal_gps()
        views = c.views_from(OBSERVER, 0.0)
        dops = compute_dops(views)
        assert dops is not None
        assert 0.5 < dops.hdop < 3.0
