"""Tests for the NMEA 0183 codec."""

import pytest
from hypothesis import given, strategies as st

from repro.sensors.nmea import (
    GgaSentence,
    GsaSentence,
    GsvSatelliteInfo,
    GsvSentence,
    NmeaError,
    RmcSentence,
    VtgSentence,
    checksum,
    parse_sentence,
)


class TestChecksum:
    def test_known_value(self):
        # XOR of a single character is its own code.
        assert checksum("A") == "41"

    def test_empty_body(self):
        assert checksum("") == "00"


class TestGga:
    def roundtrip(self, sentence):
        return parse_sentence(sentence.encode())

    def test_roundtrip_valid_fix(self):
        original = GgaSentence(
            time_s=3600.0 + 120.0 + 3.0,
            latitude_deg=56.1718,
            longitude_deg=10.1903,
            fix_quality=1,
            num_satellites=8,
            hdop=1.2,
            altitude_m=42.5,
        )
        back = self.roundtrip(original)
        assert back.sentence_type == "GGA"
        assert back.latitude_deg == pytest.approx(56.1718, abs=1e-6)
        assert back.longitude_deg == pytest.approx(10.1903, abs=1e-6)
        assert back.num_satellites == 8
        assert back.hdop == pytest.approx(1.2)
        assert back.altitude_m == pytest.approx(42.5)
        assert back.has_fix

    def test_roundtrip_southern_western_hemispheres(self):
        original = GgaSentence(
            time_s=0.0,
            latitude_deg=-33.8688,
            longitude_deg=-70.6693,
            fix_quality=1,
            num_satellites=5,
            hdop=2.0,
            altitude_m=500.0,
        )
        back = self.roundtrip(original)
        assert back.latitude_deg == pytest.approx(-33.8688, abs=1e-6)
        assert back.longitude_deg == pytest.approx(-70.6693, abs=1e-6)

    def test_no_fix_sentence_has_empty_position(self):
        original = GgaSentence(
            time_s=10.0,
            latitude_deg=None,
            longitude_deg=None,
            fix_quality=0,
            num_satellites=2,
            hdop=None,
            altitude_m=None,
        )
        back = self.roundtrip(original)
        assert back.latitude_deg is None
        assert not back.has_fix
        assert back.num_satellites == 2

    @given(
        st.floats(min_value=-89.99, max_value=89.99),
        st.floats(min_value=-179.99, max_value=179.99),
        st.integers(min_value=0, max_value=12),
        st.floats(min_value=0.5, max_value=50.0),
    )
    def test_roundtrip_property(self, lat, lon, sats, hdop):
        original = GgaSentence(
            time_s=0.0,
            latitude_deg=lat,
            longitude_deg=lon,
            fix_quality=1,
            num_satellites=sats,
            hdop=hdop,
            altitude_m=0.0,
        )
        back = parse_sentence(original.encode())
        # NMEA minute format carries ~4 decimal places of minutes,
        # i.e. about 1.9e-6 degrees of quantisation.
        assert back.latitude_deg == pytest.approx(lat, abs=1e-5)
        assert back.longitude_deg == pytest.approx(lon, abs=1e-5)
        assert back.num_satellites == sats


class TestRmc:
    def test_roundtrip(self):
        original = RmcSentence(
            time_s=7261.5,
            valid=True,
            latitude_deg=56.0,
            longitude_deg=10.0,
            speed_knots=3.5,
            course_deg=270.0,
        )
        back = parse_sentence(original.encode())
        assert back.sentence_type == "RMC"
        assert back.valid
        assert back.speed_knots == pytest.approx(3.5)
        assert back.course_deg == pytest.approx(270.0)

    def test_invalid_flag_roundtrips(self):
        original = RmcSentence(0.0, False, None, None, 0.0, 0.0)
        back = parse_sentence(original.encode())
        assert not back.valid
        assert back.latitude_deg is None


class TestGsa:
    def test_roundtrip_with_partial_satellite_list(self):
        original = GsaSentence(
            fix_type=3,
            satellite_ids=(4, 7, 12, 19, 23),
            pdop=2.1,
            hdop=1.1,
            vdop=1.8,
        )
        back = parse_sentence(original.encode())
        assert back.fix_type == 3
        assert back.satellite_ids == (4, 7, 12, 19, 23)
        assert back.hdop == pytest.approx(1.1)

    def test_no_fix_has_empty_dops(self):
        original = GsaSentence(1, (), None, None, None)
        back = parse_sentence(original.encode())
        assert back.satellite_ids == ()
        assert back.hdop is None


class TestGsv:
    def test_roundtrip_page(self):
        sats = tuple(
            GsvSatelliteInfo(i, 10 * i, 30 * i, 40 - i) for i in range(1, 4)
        )
        original = GsvSentence(2, 1, 7, sats)
        back = parse_sentence(original.encode())
        assert back.total_sentences == 2
        assert back.sentence_number == 1
        assert back.satellites_in_view == 7
        assert len(back.satellites) == 3
        assert back.satellites[0].satellite_id == 1

    def test_missing_snr_roundtrips_as_none(self):
        sats = (GsvSatelliteInfo(5, 45, 180, None),)
        back = parse_sentence(GsvSentence(1, 1, 1, sats).encode())
        assert back.satellites[0].snr_db is None


class TestVtg:
    def test_roundtrip(self):
        back = parse_sentence(VtgSentence(123.4, 5.5).encode())
        assert back.sentence_type == "VTG"
        assert back.course_deg == pytest.approx(123.4)
        assert back.speed_knots == pytest.approx(5.5)


class TestParserRobustness:
    def test_missing_dollar_rejected(self):
        with pytest.raises(NmeaError):
            parse_sentence("GPGGA,foo*00")

    def test_missing_checksum_rejected(self):
        with pytest.raises(NmeaError):
            parse_sentence("$GPGGA,000000.00,,,,,0,00,,,M,,M,,")

    def test_wrong_checksum_rejected(self):
        good = GgaSentence(0.0, 56.0, 10.0, 1, 8, 1.0, 0.0).encode()
        corrupted = good[:-1] + ("0" if good[-1] != "0" else "1")
        with pytest.raises(NmeaError):
            parse_sentence(corrupted)

    def test_corrupted_body_fails_checksum(self):
        good = GgaSentence(0.0, 56.0, 10.0, 1, 8, 1.0, 0.0).encode()
        corrupted = good.replace("GPGGA", "GPGGB", 1)
        with pytest.raises(NmeaError):
            parse_sentence(corrupted)

    def test_unsupported_sentence_type_rejected(self):
        body = "GPZDA,160012.71,11,03,2004,-1,00"
        from repro.sensors.nmea import _frame
        with pytest.raises(NmeaError):
            parse_sentence(_frame(body))

    def test_whitespace_tolerated(self):
        good = VtgSentence(10.0, 1.0).encode()
        assert parse_sentence("  " + good + "\r\n").course_deg == pytest.approx(10.0)
