"""Tests for the building model and the demo building."""

import pytest

from repro.geo.grid import GridPosition, LocalGrid
from repro.geo.wgs84 import Wgs84Position
from repro.model.building import Building, Floor, Room, SymbolicLocation, Wall
from repro.model.demo import demo_building

ORIGIN = Wgs84Position(56.1718, 10.1903)


def tiny_building():
    room = Room("R1", "Room 1", 0, ((0, 0), (10, 0), (10, 10), (0, 10)))
    wall = Wall(5.0, 0.0, 5.0, 10.0)
    floor = Floor(0, [room], [wall])
    return Building("tiny", LocalGrid(ORIGIN), [floor])


class TestConstruction:
    def test_requires_floors(self):
        with pytest.raises(ValueError):
            Building("b", LocalGrid(ORIGIN), [])

    def test_duplicate_floor_levels_rejected(self):
        floor = Floor(0, [], [])
        other = Floor(0, [], [])
        with pytest.raises(ValueError):
            Building("b", LocalGrid(ORIGIN), [floor, other])

    def test_room_on_wrong_floor_rejected(self):
        room = Room("R1", "Room", 1, ((0, 0), (1, 0), (1, 1), (0, 1)))
        with pytest.raises(ValueError):
            Floor(0, [room], [])

    def test_unknown_floor_lookup(self):
        with pytest.raises(KeyError):
            tiny_building().floor(7)

    def test_unknown_room_lookup(self):
        with pytest.raises(KeyError):
            tiny_building().room_by_id("nope")


class TestSpatialQueries:
    def test_room_at_inside(self):
        building = tiny_building()
        assert building.room_at(GridPosition(2.0, 2.0)).room_id == "R1"

    def test_room_at_outside(self):
        building = tiny_building()
        assert building.room_at(GridPosition(20.0, 2.0)) is None

    def test_room_at_wrong_floor(self):
        building = tiny_building()
        assert building.room_at(GridPosition(2.0, 2.0, floor=3)) is None

    def test_resolve_returns_symbolic_location(self):
        building = tiny_building()
        inside = building.grid.to_wgs84(GridPosition(2.0, 2.0))
        loc = building.resolve(inside)
        assert loc == SymbolicLocation("tiny", "R1", 0, None)
        assert loc.is_inside

    def test_resolve_outside_returns_none_room(self):
        building = tiny_building()
        outside = building.grid.to_wgs84(GridPosition(100.0, 100.0))
        loc = building.resolve(outside)
        assert loc.room_id is None
        assert not loc.is_inside


class TestWalls:
    def test_crossing_wall_detected(self):
        building = tiny_building()
        assert building.crosses_wall(
            GridPosition(2.0, 5.0), GridPosition(8.0, 5.0)
        )

    def test_move_without_crossing(self):
        building = tiny_building()
        assert not building.crosses_wall(
            GridPosition(1.0, 1.0), GridPosition(4.0, 9.0)
        )

    def test_floor_change_always_blocked(self):
        building = tiny_building()
        assert building.crosses_wall(
            GridPosition(1.0, 1.0, 0), GridPosition(1.0, 1.0, 1)
        )

    def test_walls_between_counts(self):
        building = tiny_building()
        assert building.walls_between(
            GridPosition(2.0, 5.0), GridPosition(8.0, 5.0)
        ) == 1
        assert building.walls_between(
            GridPosition(1.0, 1.0), GridPosition(2.0, 2.0)
        ) == 0

    def test_walls_between_floors_approximated(self):
        building = tiny_building()
        assert building.walls_between(
            GridPosition(1.0, 1.0, 0), GridPosition(1.0, 1.0, 2)
        ) == 4


class TestDemoBuilding:
    def test_nine_rooms(self):
        building = demo_building()
        ids = {room.room_id for room in building.rooms()}
        assert ids == {
            "N1", "N2", "N3", "N4", "S1", "S2", "S3", "S4", "CORR",
        }

    def test_room_centroids_resolve_to_their_rooms(self):
        building = demo_building()
        for room in building.rooms():
            assert building.room_at(room.centroid).room_id == room.room_id

    def test_corridor_to_office_through_door_is_open(self):
        building = demo_building()
        corridor = GridPosition(5.0, 7.5)
        office = GridPosition(5.0, 12.0)  # straight through N1's door
        assert not building.crosses_wall(corridor, office)

    def test_corridor_to_office_through_wall_is_blocked(self):
        building = demo_building()
        corridor = GridPosition(8.0, 7.5)
        office = GridPosition(8.0, 12.0)  # no door at x=8
        assert building.crosses_wall(corridor, office)

    def test_neighbouring_offices_separated(self):
        building = demo_building()
        n1 = building.room_by_id("N1").centroid
        n2 = building.room_by_id("N2").centroid
        assert building.crosses_wall(n1, n2)

    def test_entrance_gap_on_west_side(self):
        building = demo_building()
        outside = GridPosition(-2.0, 7.5)
        corridor = GridPosition(2.0, 7.5)
        assert not building.crosses_wall(outside, corridor)

    def test_exterior_wall_blocks_elsewhere(self):
        building = demo_building()
        outside = GridPosition(-2.0, 3.0)
        inside = GridPosition(2.0, 3.0)
        assert building.crosses_wall(outside, inside)

    def test_footprint(self):
        building = demo_building()
        assert building.footprint(0) == (0.0, 0.0, 40.0, 15.0)

    def test_wgs84_room_resolution(self):
        building = demo_building()
        n3 = building.room_by_id("N3")
        position = building.grid.to_wgs84(n3.centroid)
        assert building.room_at_wgs84(position).room_id == "N3"
