"""Tests for the city-scale scenario generator and closed-loop control.

Covers :mod:`repro.scenario` bottom-up -- the deterministic generator
(churn, degraded zones, bursts, EnTracked duty-cycling, the wire
bridge), the in-stream geofence component, each controller against stub
actuators, the bounded decision ledger, the runner's open- vs
closed-loop behaviour, and the middleware surfaces (``enable_scenario``,
``psl.scenario()`` / ``psl.controllers()``, the report's ``scenario:`` /
``control:`` sections, hub counters).
"""

import pytest

from repro.core.middleware import PerPos
from repro.core.report import infrastructure_snapshot, render_report
from repro.energy.entracked import PowerStrategyFeature
from repro.gateway.wire import PHONE_TRACKER_V1
from repro.observability import ObservabilityHub
from repro.robustness import SupervisionPolicy, Supervisor
from repro.runtime import PositioningEngine
from repro.runtime.scheduler import RoundRobinScheduler
from repro.scenario import (
    ALERT_KIND,
    GPS_KIND,
    SENSOR_KINDS,
    Actuators,
    BackpressureController,
    BurstEvent,
    CityConfig,
    CityGenerator,
    ControlError,
    ControlLoop,
    DegradedZone,
    GeofenceComponent,
    GeofenceRule,
    QuarantineController,
    RebalanceController,
    SamplingController,
    ScenarioError,
    ScenarioRunner,
    build_city_graph,
    default_controllers,
)


def batch_key(batch):
    """A comparable fingerprint of everything a tick produced."""
    return (
        batch.tick,
        tuple(batch.joined),
        tuple(batch.left),
        tuple(
            (device_id, d.kind, d.payload, d.timestamp, tuple(sorted(d.attributes.items())))
            for device_id, d in batch.events
        ),
        batch.suppressed,
        batch.zone_lost,
        batch.burst_extra,
    )


class TestCityConfig:
    def test_rejects_negative_devices(self):
        with pytest.raises(ScenarioError):
            CityConfig(devices=-1)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ScenarioError):
            CityConfig(width_m=0.0)

    def test_rejects_bad_churn(self):
        with pytest.raises(ScenarioError):
            CityConfig(churn_rate=1.5)

    def test_rejects_bad_periods(self):
        with pytest.raises(ScenarioError):
            CityConfig(wifi_period_ticks=0)


class TestCityGenerator:
    def test_same_seed_same_stream(self):
        config = CityConfig(seed=21, devices=25)
        a = CityGenerator(config)
        b = CityGenerator(config)
        for _ in range(30):
            assert batch_key(a.advance()) == batch_key(b.advance())

    def test_different_seeds_diverge(self):
        a = CityGenerator(CityConfig(seed=1, devices=25))
        b = CityGenerator(CityConfig(seed=2, devices=25))
        keys_a = [batch_key(a.advance()) for _ in range(5)]
        keys_b = [batch_key(b.advance()) for _ in range(5)]
        assert keys_a != keys_b

    def test_tick_zero_joins_whole_population(self):
        generator = CityGenerator(CityConfig(seed=3, devices=12, churn_rate=0.0))
        batch = generator.advance()
        assert len(batch.joined) == 12
        assert batch.left == []
        assert generator.active_devices() == batch.joined

    def test_out_of_order_tick_rejected(self):
        generator = CityGenerator(CityConfig(seed=3, devices=2))
        generator.advance(0)
        with pytest.raises(ScenarioError):
            generator.advance(5)

    def test_churn_replaces_devices(self):
        generator = CityGenerator(
            CityConfig(seed=5, devices=40, churn_rate=0.2)
        )
        left = joined = 0
        for _ in range(20):
            batch = generator.advance()
            left += len(batch.left)
            joined += len(batch.joined)
        assert left > 0
        assert joined - left == len(generator.active_devices())
        snapshot = generator.snapshot()
        assert snapshot["joined_total"] == joined
        assert snapshot["left_total"] == left

    def test_sensorless_draws_fall_back_to_gps(self):
        config = CityConfig(
            seed=7, devices=10, p_gps=0.0, p_wifi=0.0, p_ble=0.0
        )
        generator = CityGenerator(config)
        kinds = set()
        for _ in range(10):
            kinds.update(d.kind for _, d in generator.advance().events)
        assert kinds <= {GPS_KIND}
        assert GPS_KIND in kinds

    def test_total_zone_coverage_kills_gps(self):
        config = CityConfig(
            seed=9,
            devices=10,
            p_wifi=0.0,
            p_ble=0.0,
            zones=(DegradedZone("dead", 1000.0, 1000.0, 5000.0, drop_rate=1.0),),
            bursts=(),
        )
        generator = CityGenerator(config)
        for _ in range(10):
            batch = generator.advance()
            assert not [d for _, d in batch.events if d.kind == GPS_KIND]
        assert generator.zone_lost_total > 0

    def test_zone_blur_inflates_accuracy(self):
        config = CityConfig(
            seed=9,
            devices=10,
            p_wifi=0.0,
            p_ble=0.0,
            zones=(
                DegradedZone(
                    "haze",
                    1000.0,
                    1000.0,
                    5000.0,
                    drop_rate=0.0,
                    extra_error_m=30.0,
                ),
            ),
            bursts=(),
        )
        generator = CityGenerator(config)
        accuracies = []
        for _ in range(5):
            accuracies.extend(
                d.payload[2]
                for _, d in generator.advance().events
                if d.kind == GPS_KIND
            )
        assert accuracies
        # Base accuracy is 5-15m; the zone adds 30m to every survivor.
        assert min(accuracies) >= 35.0

    def test_burst_multiplies_traffic(self):
        burst = BurstEvent("rush", 2, 5, 1000.0, 1000.0, 5000.0, factor=3)
        config = CityConfig(
            seed=11, devices=10, zones=(), bursts=(burst,), churn_rate=0.0
        )
        generator = CityGenerator(config)
        for _ in range(2):
            assert generator.advance().burst_extra == 0
        batch = generator.advance()
        assert batch.burst_extra > 0
        copies = [
            d.attributes["burst_copy"]
            for _, d in batch.events
            if "burst_copy" in d.attributes
        ]
        assert copies and max(copies) == burst.factor - 1

    def test_raising_threshold_suppresses_fixes(self):
        config = CityConfig(
            seed=13, devices=20, p_wifi=0.0, p_ble=0.0, zones=(), bursts=()
        )
        low = CityGenerator(config)
        high = CityGenerator(config)
        assert high.set_gps_threshold(4000.0) == config.entracked_threshold_m
        low_events = high_events = 0
        for _ in range(30):
            low_events += len(low.advance().events)
            high_events += len(high.advance().events)
        assert high_events < low_events
        assert high.suppressed_total > low.suppressed_total

    def test_set_gps_threshold_rejects_nonpositive(self):
        generator = CityGenerator(CityConfig(seed=1, devices=1))
        with pytest.raises(ScenarioError):
            generator.set_gps_threshold(0.0)

    def test_wire_payload_validates_as_phone_tracker_v1(self):
        config = CityConfig(
            seed=17, devices=5, p_wifi=0.0, p_ble=0.0, zones=(), bursts=()
        )
        generator = CityGenerator(config)
        checked = 0
        for _ in range(5):
            for device_id, datum in generator.advance().events:
                payload = generator.wire_payload(device_id, datum)
                assert PHONE_TRACKER_V1.validate(payload) == []
                checked += 1
        assert checked > 0

    def test_wire_payload_rejects_non_gps(self):
        config = CityConfig(seed=17, devices=5, p_gps=0.0, p_wifi=1.0)
        generator = CityGenerator(config)
        for _ in range(5):
            for device_id, datum in generator.advance().events:
                if datum.kind != GPS_KIND:
                    with pytest.raises(ScenarioError):
                        generator.wire_payload(device_id, datum)
                    return
        pytest.fail("no non-GPS emission found")

    def test_snapshot_names_zones_and_bursts(self):
        generator = CityGenerator(CityConfig(seed=1, devices=2))
        snapshot = generator.snapshot()
        assert snapshot["zones"] == ["canyon", "tunnel"]
        assert snapshot["bursts"] == ["stadium"]
        assert snapshot["gps_threshold_m"] == 40.0


class TestGeofence:
    def test_rule_rejects_unknown_trigger(self):
        with pytest.raises(ValueError):
            GeofenceRule("bad", 0.0, 0.0, 10.0, trigger="sideways")

    def test_rule_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            GeofenceRule("bad", 0.0, 0.0, 0.0)

    @staticmethod
    def engine_with_rule(rule, capacity=64):
        graph = build_city_graph((rule,))
        engine = PositioningEngine(graph)
        engine.track("t1", "city-src", capacity=capacity)
        return engine, graph.component("geofence")

    @staticmethod
    def gps(x, y, tick):
        from repro.core.data import Datum

        return Datum(
            kind=GPS_KIND,
            payload=(x, y, 5.0),
            timestamp=float(tick),
            producer="test",
            attributes={"tick": tick},
        )

    def test_enter_and_exit_transitions(self):
        rule = GeofenceRule("zone", 100.0, 100.0, 50.0, trigger="both")
        engine, fence = self.engine_with_rule(rule)
        for tick, (x, y) in enumerate(
            [(0.0, 0.0), (100.0, 100.0), (110.0, 100.0), (500.0, 500.0)]
        ):
            engine.submit("t1", self.gps(x, y, tick))
        engine.drain_round()
        transitions = [(a["transition"], a["tick"]) for a in fence.alerts()]
        assert transitions == [("enter", 1), ("exit", 3)]
        assert fence.alerts_raised == 2
        assert [a["target"] for a in fence.alerts()] == ["t1", "t1"]

    def test_enter_trigger_ignores_exits(self):
        rule = GeofenceRule("zone", 100.0, 100.0, 50.0, trigger="enter")
        engine, fence = self.engine_with_rule(rule)
        for tick, (x, y) in enumerate(
            [(500.0, 500.0), (100.0, 100.0), (500.0, 500.0), (100.0, 100.0)]
        ):
            engine.submit("t1", self.gps(x, y, tick))
        engine.drain_round()
        assert [a["transition"] for a in fence.alerts()] == ["enter", "enter"]

    def test_alert_datums_reach_alert_sink(self):
        rule = GeofenceRule("zone", 100.0, 100.0, 50.0, trigger="enter")
        graph = build_city_graph((rule,))
        engine = PositioningEngine(graph)
        engine.track("t1", "city-src", capacity=64)
        engine.submit("t1", self.gps(500.0, 500.0, 0))
        engine.submit("t1", self.gps(100.0, 100.0, 1))
        engine.drain_round()
        sink = graph.component("city-alerts")
        payloads = [d.payload for d in sink.received]
        assert payloads == [("zone", "t1", "enter", 1)]
        app = graph.component("city-app")
        assert all(d.kind in SENSOR_KINDS for d in app.received)
        assert len(app.received) == 2

    def test_alert_ring_is_bounded(self):
        rule = GeofenceRule("zone", 100.0, 100.0, 50.0, trigger="both")
        graph = build_city_graph((rule,), ring_limit=4)
        engine = PositioningEngine(graph)
        engine.track("t1", "city-src", capacity=1024)
        fence = graph.component("geofence")
        for tick in range(20):
            inside = tick % 2 == 1
            x = 100.0 if inside else 500.0
            engine.submit("t1", self.gps(x, 100.0, tick))
        engine.drain_round()
        assert fence.alerts_raised == 19
        assert len(fence.alerts()) == 4
        # Newest last: the surviving records are the final transitions.
        assert fence.alerts()[-1]["tick"] == 19

    def test_state_snapshot_round_trip(self):
        rule = GeofenceRule("zone", 100.0, 100.0, 50.0, trigger="both")
        engine, fence = self.engine_with_rule(rule)
        engine.submit("t1", self.gps(100.0, 100.0, 0))
        engine.drain_round()
        state = fence.state_snapshot()
        assert state["inside"] == {"t1|zone": True}

        engine2, fence2 = self.engine_with_rule(rule)
        fence2.state_restore(state)
        # Restored inside-state: staying inside raises nothing new.
        engine2.submit("t1", self.gps(100.0, 100.0, 1))
        engine2.drain_round()
        assert fence2.alerts_raised == 1
        assert len(fence2.alerts()) == 1


class RecordingActuators(Actuators):
    """Stub actuators that record every actuation for assertions."""

    def __init__(self, **kwargs):
        self.calls = []
        super().__init__(
            set_backpressure=lambda target, **kw: self.calls.append(
                ("backpressure", target, kw)
            ),
            set_gps_threshold=lambda m: self.calls.append(("threshold", m)),
            set_supervision=lambda **kw: self.calls.append(
                ("supervision", kw)
            ),
            migrate_target=lambda target, shard: (
                self.calls.append(("migrate", target, shard))
                or {"from": 0, "to": shard, "datums": 3}
            ),
            **kwargs,
        )


def lane_view(tick=0, **lanes):
    return {"tick": tick, "lanes": lanes, "dropped_total": 0}


class TestBackpressureController:
    def test_grows_on_new_drops(self):
        controller = BackpressureController()
        actuators = RecordingActuators()
        view = lane_view(
            t1={"capacity": 8, "depth": 2, "dropped_oldest": 3}
        )
        decisions = controller.evaluate(view, actuators)
        assert decisions[0]["action"] == "grow_capacity"
        assert decisions[0]["params"] == {"capacity": 16}
        assert actuators.calls == [("backpressure", "t1", {"capacity": 16})]

    def test_grows_on_depth_fraction(self):
        controller = BackpressureController(high=0.75)
        actuators = RecordingActuators()
        view = lane_view(t1={"capacity": 8, "depth": 6})
        assert controller.evaluate(view, actuators)[0]["action"] == (
            "grow_capacity"
        )

    def test_respects_max_capacity(self):
        controller = BackpressureController(max_capacity=16)
        actuators = RecordingActuators()
        view = lane_view(t1={"capacity": 16, "depth": 16, "dropped_oldest": 5})
        assert controller.evaluate(view, actuators) == []
        assert actuators.calls == []

    def test_cooldown_blocks_consecutive_growth(self):
        controller = BackpressureController(cooldown_rounds=3)
        actuators = RecordingActuators()
        view = lane_view(
            tick=0, t1={"capacity": 8, "depth": 0, "dropped_oldest": 1}
        )
        assert controller.evaluate(view, actuators)
        view = lane_view(
            tick=1, t1={"capacity": 16, "depth": 0, "dropped_oldest": 2}
        )
        assert controller.evaluate(view, actuators) == []

    def test_shrinks_after_calm_rounds(self):
        controller = BackpressureController(
            calm_rounds=3, min_capacity=8, cooldown_rounds=0
        )
        actuators = RecordingActuators()
        decisions = []
        for tick in range(4):
            view = lane_view(tick=tick, t1={"capacity": 64, "depth": 0})
            decisions += controller.evaluate(view, actuators)
        assert [d["action"] for d in decisions] == ["shrink_capacity"]
        assert decisions[0]["params"] == {"capacity": 32}

    def test_noop_without_actuator(self):
        controller = BackpressureController()
        view = lane_view(t1={"capacity": 8, "depth": 8, "dropped_oldest": 9})
        assert controller.evaluate(view, Actuators()) == []

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ControlError):
            BackpressureController(high=0.2, low=0.5)


class TestSamplingController:
    def test_raises_threshold_on_drops(self):
        controller = SamplingController(base_m=40.0)
        actuators = RecordingActuators()
        view = {"tick": 0, "dropped_total": 5}
        decisions = controller.evaluate(view, actuators)
        assert decisions[0]["action"] == "raise_threshold"
        assert decisions[0]["params"] == {"threshold_m": 80.0}
        assert actuators.calls == [("threshold", 80.0)]

    def test_threshold_capped_at_max(self):
        controller = SamplingController(base_m=40.0, max_m=80.0)
        actuators = RecordingActuators()
        assert controller.evaluate({"dropped_total": 5}, actuators)
        assert controller.evaluate({"dropped_total": 10}, actuators) == []

    def test_recovers_after_clean_rounds(self):
        controller = SamplingController(base_m=40.0, recover_rounds=3)
        actuators = RecordingActuators()
        controller.evaluate({"dropped_total": 5}, actuators)
        decisions = []
        for _ in range(3):
            decisions += controller.evaluate({"dropped_total": 5}, actuators)
        assert [d["action"] for d in decisions] == ["lower_threshold"]
        assert decisions[0]["params"] == {"threshold_m": 40.0}

    def test_rejects_bad_factor(self):
        with pytest.raises(ControlError):
            SamplingController(raise_factor=1.0)


class TestQuarantineController:
    @staticmethod
    def supervisor_view(failures):
        return {
            "tick": 0,
            "supervisor": {"components": {"c": {"failures": failures}}},
        }

    def test_tightens_on_new_failures(self):
        controller = QuarantineController(base_failure_threshold=5)
        actuators = RecordingActuators()
        decisions = controller.evaluate(self.supervisor_view(2), actuators)
        assert decisions[0]["action"] == "tighten"
        assert decisions[0]["params"]["failure_threshold"] == 4
        assert actuators.calls[0][0] == "supervision"

    def test_relaxes_after_quiet_rounds(self):
        controller = QuarantineController(quiet_rounds=2)
        actuators = RecordingActuators()
        controller.evaluate(self.supervisor_view(2), actuators)
        decisions = []
        for _ in range(2):
            decisions += controller.evaluate(
                self.supervisor_view(2), actuators
            )
        assert [d["action"] for d in decisions] == ["relax"]
        assert decisions[0]["params"]["failure_threshold"] == 5

    def test_noop_without_supervisor_in_view(self):
        controller = QuarantineController()
        assert controller.evaluate({"tick": 0}, RecordingActuators()) == []


class TestRebalanceController:
    @staticmethod
    def sharded_view(tick=0):
        return {
            "tick": tick,
            "shards": {0: 100, 1: 2},
            "lanes": {
                "hot": {"depth": 90, "shard": 0},
                "warm": {"depth": 10, "shard": 0},
                "cold": {"depth": 2, "shard": 1},
            },
        }

    def test_migrates_deepest_lane_off_hottest_shard(self):
        controller = RebalanceController(min_pending=32)
        actuators = RecordingActuators()
        decisions = controller.evaluate(self.sharded_view(), actuators)
        assert decisions[0]["action"] == "migrate"
        assert decisions[0]["target"] == "hot"
        assert ("migrate", "hot", 1) in actuators.calls

    def test_cooldown_limits_migration_rate(self):
        controller = RebalanceController(min_pending=32, cooldown_rounds=5)
        actuators = RecordingActuators()
        assert controller.evaluate(self.sharded_view(0), actuators)
        assert controller.evaluate(self.sharded_view(1), actuators) == []

    def test_balanced_shards_left_alone(self):
        controller = RebalanceController(min_pending=32)
        view = self.sharded_view()
        view["shards"] = {0: 40, 1: 38}
        assert controller.evaluate(view, RecordingActuators()) == []

    def test_single_shard_is_a_noop(self):
        controller = RebalanceController()
        view = {"tick": 0, "shards": {0: 500}, "lanes": {}}
        assert controller.evaluate(view, RecordingActuators()) == []

    def test_rejects_bad_imbalance(self):
        with pytest.raises(ControlError):
            RebalanceController(imbalance=1.0)


class TestControlLoop:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ControlError):
            ControlLoop([SamplingController(), SamplingController()])

    def test_ledger_records_and_bounds(self):
        loop = ControlLoop(
            [SamplingController(max_m=1_000_000.0)], ledger_limit=3
        )
        actuators = RecordingActuators()
        dropped = 0
        for tick in range(6):
            dropped += 5
            loop.step({"tick": tick, "dropped_total": dropped}, actuators)
        ledger = loop.ledger()
        assert len(ledger) == 3
        assert loop.decisions_total > 3
        assert ledger[-1]["controller"] == "sampling"
        assert ledger[-1]["tick"] == 5

    def test_snapshot_reports_counts_and_recent(self):
        loop = ControlLoop([SamplingController()])
        loop.step({"tick": 0, "dropped_total": 5}, RecordingActuators())
        snapshot = loop.snapshot()
        assert snapshot["decisions_total"] == 1
        assert snapshot["by_controller"] == {"sampling": 1}
        assert snapshot["ledger_depth"] == 1
        assert snapshot["recent"][0]["action"] == "raise_threshold"
        assert [c["name"] for c in snapshot["controllers"]] == ["sampling"]

    def test_hub_counters_follow_decisions(self):
        hub = ObservabilityHub(time_fn=lambda: 0.0)
        loop = ControlLoop([SamplingController()])
        loop.step(
            {"tick": 0, "dropped_total": 5}, RecordingActuators(), hub
        )
        counter = hub.registry.counter(
            "controller_decisions",
            controller="sampling",
            action="raise_threshold",
        )
        assert counter.value == 1
        assert hub.registry.gauge("control_ledger_depth").value == 1

    def test_default_controllers_shapes(self):
        names = [c.name for c in default_controllers()]
        assert names == ["backpressure", "sampling", "quarantine"]
        sharded = [c.name for c in default_controllers(sharded=True)]
        assert sharded[-1] == "rebalance"


def overload_config(seed=19):
    """A small config whose burst overloads tiny lanes quickly."""
    return CityConfig(
        seed=seed,
        devices=20,
        churn_rate=0.0,
        zones=(),
        bursts=(BurstEvent("rush", 5, 30, 1000.0, 1000.0, 5000.0, factor=8),),
    )


def small_runner(*, closed, seed=19, capacity=4, hub=None, supervisor=None):
    engine = PositioningEngine(
        build_city_graph(), scheduler=RoundRobinScheduler(quantum=2)
    )
    control = None
    if closed:
        control = ControlLoop(default_controllers(max_capacity=64))
    return ScenarioRunner(
        CityGenerator(overload_config(seed)),
        engine,
        control=control,
        capacity=capacity,
        hub=hub,
        supervisor=supervisor,
    )


class TestScenarioRunner:
    def test_closed_loop_drops_less_than_open(self):
        open_result = small_runner(closed=False).run(60)
        closed_result = small_runner(closed=True).run(60)
        assert open_result["dropped"] > 0
        assert closed_result["dropped"] < open_result["dropped"]
        assert closed_result["decisions"] > 0
        assert closed_result["closed_loop"] is True
        assert open_result["closed_loop"] is False

    def test_same_seed_same_result_and_ledger(self):
        a = small_runner(closed=True)
        b = small_runner(closed=True)
        assert a.run(40) == b.run(40)
        assert a.decision_ledger() == b.decision_ledger()

    def test_drop_accounting_survives_churn(self):
        config = CityConfig(
            seed=23,
            devices=20,
            churn_rate=0.15,
            zones=(),
            bursts=(
                BurstEvent("rush", 2, 40, 1000.0, 1000.0, 5000.0, factor=8),
            ),
        )
        engine = PositioningEngine(
            build_city_graph(), scheduler=RoundRobinScheduler(quantum=1)
        )
        runner = ScenarioRunner(
            CityGenerator(config), engine, capacity=4
        )
        dropped_seen = 0
        for _ in range(40):
            view = runner.run_tick()
            # Cumulative: untracking a lane never loses its drop count.
            assert view["dropped_total"] >= dropped_seen
            dropped_seen = view["dropped_total"]
        assert dropped_seen > 0
        assert runner.result()["dropped"] == dropped_seen

    def test_open_loop_ledger_is_empty(self):
        runner = small_runner(closed=False)
        runner.run(5)
        assert runner.decision_ledger() == []

    def test_negative_ticks_rejected(self):
        with pytest.raises(ScenarioError):
            small_runner(closed=False).run(-1)

    def test_swap_policy_replaces_supervisor_policy(self):
        supervisor = Supervisor(policy=SupervisionPolicy())
        runner = small_runner(closed=True, supervisor=supervisor)
        before = supervisor.policy
        runner._swap_policy(failure_threshold=2)
        assert supervisor.policy is not before
        assert supervisor.policy.failure_threshold == 2
        assert supervisor.policy.mode == before.mode

    def test_snapshot_shape(self):
        runner = small_runner(closed=True)
        runner.run(10)
        snapshot = runner.snapshot()
        assert snapshot["sharded"] is False
        assert snapshot["closed_loop"] is True
        assert snapshot["capacity"] == 4
        assert snapshot["progress"]["ticks"] == 10
        assert snapshot["progress"]["submitted"] == runner.submitted
        assert snapshot["generator"]["seed"] == 19


class TestMiddlewareSurfaces:
    def test_psl_and_report_surfaces(self):
        pp = PerPos()
        runner = small_runner(closed=True)
        runner.run(20)
        pp.enable_scenario(runner)

        scenario = pp.psl.scenario()
        assert scenario["closed_loop"] is True
        assert scenario["generator"]["seed"] == 19
        controllers = pp.psl.controllers()
        assert controllers["decisions_total"] == runner.control.decisions_total
        assert pp.psl.decision_ledger() == runner.decision_ledger()

        snapshot = infrastructure_snapshot(pp)
        assert snapshot["scenario"]["closed_loop"] is True
        assert snapshot["control"]["decisions_total"] > 0
        report = render_report(pp)
        assert "scenario:" in report
        assert "control:" in report
        assert "seed=19" in report

    def test_disable_scenario_clears_surfaces(self):
        pp = PerPos()
        runner = small_runner(closed=True)
        pp.enable_scenario(runner)
        assert pp.disable_scenario() is runner
        assert pp.psl.scenario() == {}
        assert pp.psl.controllers() == {}
        assert pp.psl.decision_ledger() == []
        assert "(no scenario installed)" in render_report(pp)

    def test_scenario_runner_is_registered_service(self):
        pp = PerPos()
        runner = small_runner(closed=False)
        pp.enable_scenario(runner)
        registry = pp.framework.registry
        assert registry.find_service("perpos.ScenarioRunner") is runner
        pp.disable_scenario()
        assert registry.find_service("perpos.ScenarioRunner") is None

    def test_hub_counters_track_the_run(self):
        hub = ObservabilityHub(time_fn=lambda: 0.0)
        runner = small_runner(closed=True, hub=hub)
        result = runner.run(30)
        registry = hub.registry
        assert registry.counter("scenario_ticks").value == 30
        assert registry.counter("scenario_events").value == result["submitted"]
        assert registry.gauge("scenario_devices").value == result["devices"]
        assert registry.gauge("control_ledger_depth").value == len(
            runner.decision_ledger()
        )

    def test_geofence_alert_counter(self):
        hub = ObservabilityHub(time_fn=lambda: 0.0)
        rule = GeofenceRule("downtown", 1000.0, 1000.0, 900.0, trigger="both")
        engine = PositioningEngine(
            build_city_graph((rule,)),
            scheduler=RoundRobinScheduler(quantum=8),
        )
        runner = ScenarioRunner(
            CityGenerator(overload_config()), engine, capacity=64, hub=hub
        )
        result = runner.run(40)
        assert result["alerts"] > 0
        counter = hub.registry.counter("geofence_alerts", rule="downtown")
        assert counter.value == result["alerts"]


class TestEnTrackedSleepInterval:
    def make(self):
        return PowerStrategyFeature(
            threshold_m=40.0,
            acquisition_time_s=0.0,
            min_sleep_s=1.0,
            max_sleep_s=60.0,
        )

    def test_mid_speed_is_threshold_over_speed(self):
        assert self.make().sleep_interval_s(2.0) == pytest.approx(20.0)

    def test_slow_speed_clamps_to_max_sleep(self):
        assert self.make().sleep_interval_s(0.001) == pytest.approx(60.0)

    def test_fast_speed_clamps_to_min_sleep(self):
        assert self.make().sleep_interval_s(100.0) == pytest.approx(1.0)

    def test_defaults_to_tracked_speed(self):
        strategy = self.make()
        strategy.update_speed(4.0)
        assert strategy.sleep_interval_s() == pytest.approx(10.0)


class TestGraphRecipe:
    def test_alert_kind_routed_away_from_app_sink(self):
        graph = build_city_graph()
        app = graph.component("city-app")
        alerts = graph.component("city-alerts")
        assert ALERT_KIND not in app.input_port("in").accepts
        assert tuple(alerts.input_port("in").accepts) == (ALERT_KIND,)
