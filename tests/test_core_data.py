"""Tests for the Datum envelope."""

import pytest

from repro.core.data import Datum, Kind


def make_datum(**kwargs):
    defaults = dict(
        kind=Kind.POSITION_WGS84,
        payload="value",
        timestamp=12.5,
        producer="interpreter",
        attributes={"a": 1},
    )
    defaults.update(kwargs)
    return Datum(**defaults)


def test_with_payload_preserves_envelope():
    original = make_datum()
    copy = original.with_payload("other")
    assert copy.payload == "other"
    assert copy.kind == original.kind
    assert copy.timestamp == original.timestamp
    assert copy.producer == original.producer
    assert copy.attributes == original.attributes


def test_annotated_merges_attributes():
    original = make_datum()
    copy = original.annotated(b=2)
    assert copy.attributes == {"a": 1, "b": 2}
    assert original.attributes == {"a": 1}


def test_annotated_overrides_existing_key():
    assert make_datum().annotated(a=9).attributes["a"] == 9


def test_from_producer():
    copy = make_datum().from_producer("parser")
    assert copy.producer == "parser"
    assert copy.payload == "value"


def test_datum_is_immutable():
    with pytest.raises(AttributeError):
        make_datum().kind = "other"


def test_kind_constants_are_distinct():
    names = [
        Kind.NMEA_RAW,
        Kind.NMEA_SENTENCE,
        Kind.POSITION_WGS84,
        Kind.POSITION_GRID,
        Kind.ROOM_ID,
        Kind.WIFI_SCAN,
        Kind.ACCEL_VARIANCE,
        Kind.HDOP,
        Kind.NUM_SATELLITES,
    ]
    assert len(set(names)) == len(names)
