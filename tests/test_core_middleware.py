"""Tests for the PerPos facade: sensors, pumping, providers."""

import pytest

from repro.core.data import Datum, Kind
from repro.core.middleware import PerPos
from repro.sensors.base import SensorReading, SimulatedSensor


class ScriptedSensor(SimulatedSensor):
    """Emits one reading per second with a chosen format tag."""

    def __init__(self, sensor_id, fmt="nmea-raw", payload="$x"):
        super().__init__(sensor_id)
        self._fmt = fmt
        self._payload = payload
        self._next = 0.0

    def sample(self, now):
        readings = []
        while self._next <= now:
            readings.append(
                SensorReading(
                    self.sensor_id,
                    self._next,
                    self._payload,
                    {"format": self._fmt},
                )
            )
            self._next += 1.0
        return readings


class TestSensorAttachment:
    def test_attach_creates_source(self):
        mw = PerPos()
        source = mw.attach_sensor(ScriptedSensor("gps0"), (Kind.NMEA_RAW,))
        assert source.name == "gps0"
        assert "gps0" in mw.graph

    def test_attach_with_custom_name(self):
        mw = PerPos()
        source = mw.attach_sensor(
            ScriptedSensor("gps0"), (Kind.NMEA_RAW,), source_name="override"
        )
        assert source.name == "override"

    def test_detach_removes_source(self):
        mw = PerPos()
        mw.attach_sensor(ScriptedSensor("gps0"), (Kind.NMEA_RAW,))
        mw.detach_sensor("gps0")
        assert "gps0" not in mw.graph
        assert mw.pump(10.0) == 0

    def test_detach_unknown(self):
        with pytest.raises(KeyError):
            PerPos().detach_sensor("ghost")


class TestPumping:
    def test_pump_injects_due_readings(self):
        mw = PerPos()
        mw.attach_sensor(ScriptedSensor("gps0"), (Kind.NMEA_RAW,))
        provider = mw.create_provider("app", accepts=(Kind.NMEA_RAW,))
        mw.graph.connect("gps0", "app")
        count = mw.pump(2.5)
        assert count == 3  # t = 0, 1, 2
        assert len(provider.sink.received) == 3

    def test_default_kind_mapping(self):
        mw = PerPos()
        mw.attach_sensor(ScriptedSensor("w", fmt="wifi-scan"), (Kind.WIFI_SCAN,))
        provider = mw.create_provider("app", accepts=(Kind.WIFI_SCAN,))
        mw.graph.connect("w", "app")
        mw.pump(0.0)
        assert provider.sink.last().kind == Kind.WIFI_SCAN

    def test_unmapped_format_raises(self):
        mw = PerPos()
        mw.attach_sensor(ScriptedSensor("odd", fmt="exotic"), ("exotic",))
        with pytest.raises(ValueError):
            mw.pump(0.0)

    def test_custom_kind_of(self):
        mw = PerPos()
        mw.attach_sensor(
            ScriptedSensor("odd", fmt="exotic"),
            ("exotic",),
            kind_of=lambda reading: "exotic",
        )
        provider = mw.create_provider("app", accepts=("exotic",))
        mw.graph.connect("odd", "app")
        assert mw.pump(0.0) == 1

    def test_run_until_advances_clock_and_pumps(self):
        mw = PerPos()
        mw.attach_sensor(ScriptedSensor("gps0"), (Kind.NMEA_RAW,))
        provider = mw.create_provider("app", accepts=(Kind.NMEA_RAW,))
        mw.graph.connect("gps0", "app")
        mw.run_until(5.0)
        assert mw.clock.now == 5.0
        assert len(provider.sink.received) == 6  # t = 0..5

    def test_run_until_validates_step(self):
        with pytest.raises(ValueError):
            PerPos().run_until(1.0, step_s=0.0)


class TestServicesIntegration:
    def test_layers_registered_as_services(self):
        mw = PerPos()
        registry = mw.framework.registry
        assert registry.find_service("perpos.ProcessingGraph") is mw.graph
        assert (
            registry.find_service("perpos.ProcessStructureLayer") is mw.psl
        )
        assert registry.find_service("perpos.ProcessChannelLayer") is mw.pcl
        assert (
            registry.find_service("perpos.PositioningLayer")
            is mw.positioning
        )

    def test_create_provider_registers_in_layer(self):
        mw = PerPos()
        provider = mw.create_provider("app", accepts=(Kind.POSITION_WGS84,))
        assert mw.positioning.provider("app") is provider
