"""Property-based tests on core middleware invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.channel import ChannelFeature
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import GraphError, ProcessingGraph
from repro.core.pcl import ProcessChannelLayer
from repro.services.registry import ServiceRegistry


class TreeCollector(ChannelFeature):
    name = "TreeCollector"

    def __init__(self):
        super().__init__()
        self.trees = []

    def apply(self, tree):
        self.trees.append(tree)


def batching_pipeline(batch_sizes):
    """source -> batcher(variable batch) -> sink, batch sizes scripted."""
    graph = ProcessingGraph()
    source = SourceComponent("src", ("x",))
    state = {"buffer": [], "plan": list(batch_sizes), "index": 0}

    def batch(d):
        state["buffer"].append(d.payload)
        target = state["plan"][state["index"] % len(state["plan"])]
        if len(state["buffer"]) >= target:
            merged = d.with_payload(tuple(state["buffer"]))
            state["buffer"] = []
            state["index"] += 1
            return merged
        return None

    batcher = FunctionComponent("batcher", ("x",), ("x",), fn=batch)
    sink = ApplicationSink("app", ("x",))
    for c in (source, batcher, sink):
        graph.add(c)
    graph.connect("src", "batcher")
    graph.connect("batcher", "app")
    return graph, source


class TestChannelInvariants:
    @given(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=6),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_logical_time_partition(self, batch_sizes, n_inputs):
        """Channel output ranges partition consumed inputs: contiguous,
        non-overlapping, starting at 1."""
        graph, source = batching_pipeline(batch_sizes)
        pcl = ProcessChannelLayer(graph)
        collector = TreeCollector()
        pcl.attach_feature("src->app", collector)
        for i in range(n_inputs):
            source.inject(Datum("x", i, float(i)))
        previous_end = 0
        for index, tree in enumerate(collector.trees, start=1):
            root = tree.root
            assert root.logical_time == index
            low, high = root.time_range
            assert low == previous_end + 1
            assert high >= low
            previous_end = high
            # The tree's source layer matches the declared range exactly.
            source_times = [e.logical_time for e in tree.layer(0)]
            assert source_times == list(range(low, high + 1))

    @given(
        st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_tree_payloads_reconstruct_output(self, batch_sizes, n_inputs):
        """The batcher's output tuple equals its tree's source payloads."""
        graph, source = batching_pipeline(batch_sizes)
        pcl = ProcessChannelLayer(graph)
        collector = TreeCollector()
        pcl.attach_feature("src->app", collector)
        for i in range(n_inputs):
            source.inject(Datum("x", i, float(i)))
        for tree in collector.trees:
            source_payloads = tuple(
                e.datum.payload for e in tree.layer(0)
            )
            assert tree.root.datum.payload == source_payloads


class TestGraphInvariants:
    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_random_wiring_never_creates_cycles(self, data):
        """Whatever connect() accepts keeps the graph acyclic."""
        n = data.draw(st.integers(min_value=2, max_value=7))
        graph = ProcessingGraph()
        for i in range(n):
            graph.add(
                FunctionComponent(f"c{i}", ("x",), ("x",), fn=lambda d: d)
            )
        attempts = data.draw(st.integers(min_value=1, max_value=20))
        for _ in range(attempts):
            a = data.draw(st.integers(min_value=0, max_value=n - 1))
            b = data.draw(st.integers(min_value=0, max_value=n - 1))
            try:
                graph.connect(f"c{a}", f"c{b}")
            except GraphError:
                pass
        for component in graph.components():
            assert component.name not in graph.descendants(component.name)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_remove_leaves_consistent_edges(self, data):
        n = data.draw(st.integers(min_value=3, max_value=6))
        graph = ProcessingGraph()
        for i in range(n):
            graph.add(
                FunctionComponent(f"c{i}", ("x",), ("x",), fn=lambda d: d)
            )
        for i in range(n - 1):
            graph.connect(f"c{i}", f"c{i + 1}")
        victim = data.draw(st.integers(min_value=0, max_value=n - 1))
        reconnect = data.draw(st.booleans())
        graph.remove(f"c{victim}", reconnect=reconnect)
        names = {c.name for c in graph.components()}
        for connection in graph.connections():
            assert connection.producer in names
            assert connection.consumer in names


class TestRegistryInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=-5, max_value=5),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_lookup_returns_highest_ranking_oldest(self, entries):
        registry = ServiceRegistry()
        recorded = []
        for index, (interface, ranking) in enumerate(entries):
            registry.register(
                interface, f"svc{index}", {"service.ranking": ranking}
            )
            recorded.append((interface, ranking, index))
        for interface in {e[0] for e in entries}:
            candidates = [
                (ranking, index)
                for (iface, ranking, index) in recorded
                if iface == interface
            ]
            best = min(candidates, key=lambda pair: (-pair[0], pair[1]))
            assert registry.find_service(interface) == f"svc{best[1]}"

    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_register_unregister_count_invariant(self, keeps):
        registry = ServiceRegistry()
        registrations = []
        for keep in keeps:
            registrations.append((keep, registry.register("x", object())))
        for keep, registration in registrations:
            if not keep:
                registration.unregister()
        assert len(registry) == sum(1 for k in keeps if k)
        assert len(registry.get_references("x")) == len(registry)
