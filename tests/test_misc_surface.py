"""Coverage for remaining public surface across packages."""

import pytest

from repro.core import Kind
from repro.core.assembly import AutoAssembler
from repro.core.channel import Channel
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.geo.transforms import ReferenceSystem
from repro.geo.wgs84 import Wgs84Position
from repro.model.demo import demo_beacons, demo_building, demo_radio_environment
from repro.sensors.ble import BleScanner
from repro.sensors.gps import GpsReceiver
from repro.sensors.inertial import Accelerometer
from repro.sensors.trajectory import StationaryTrajectory
from repro.sensors.wifi import WifiScanner
from repro.services.bundle import Framework
from repro.services.graph_binding import COMPONENT_INTERFACE, GraphBinder

HOME = Wgs84Position(56.17, 10.19)


class TestSensorDescriptions:
    """Every sensor self-describes for the infrastructure report."""

    def test_gps_describe(self):
        gps = GpsReceiver("g", StationaryTrajectory(HOME, 1.0))
        info = gps.describe()
        assert info["technology"] == "gps"
        assert info["rate_hz"] == 1.0

    def test_wifi_describe(self):
        building = demo_building()
        wifi = WifiScanner(
            "w",
            StationaryTrajectory(HOME, 1.0),
            demo_radio_environment(building),
            building.grid,
        )
        assert wifi.describe()["technology"] == "wifi"

    def test_ble_describe(self):
        building = demo_building()
        ble = BleScanner(
            "b",
            StationaryTrajectory(HOME, 1.0),
            demo_beacons(),
            building.grid,
        )
        info = ble.describe()
        assert info["technology"] == "ble"
        assert info["beacons"] == len(demo_beacons())

    def test_accelerometer_describe(self):
        acc = Accelerometer("a", StationaryTrajectory(HOME, 1.0))
        assert acc.describe()["technology"] == "inertial"


class TestAssemblerRemoveReconnect:
    def test_remove_with_reconnect_bridges_neighbours(self):
        assembler = AutoAssembler()
        source = SourceComponent("src", ("x",))
        middle = FunctionComponent("mid", ("x",), ("x",), fn=lambda d: d)
        sink = ApplicationSink("app", ("x",))
        assembler.add(source)
        assembler.add(middle)
        assembler.add(sink)
        assembler.remove("mid", reconnect=True)
        source.inject(Datum("x", 5, 0.0))
        assert sink.last().payload == 5


class TestGraphBinderSurface:
    def test_bound_components_mapping(self):
        framework = Framework()
        binder = GraphBinder(framework.registry)
        registration = framework.registry.register(
            COMPONENT_INTERFACE, SourceComponent("s1", ("x",))
        )
        assert list(binder.bound_components().values()) == ["s1"]
        registration.unregister()
        assert binder.bound_components() == {}


class TestChannelClose:
    def test_close_detaches_and_stops_observing(self):
        graph = ProcessingGraph()
        source = SourceComponent("src", ("x",))
        sink = ApplicationSink("app", ("x",))
        graph.add(source)
        graph.add(sink)
        graph.connect("src", "app")
        channel = Channel(graph, [source], "app")
        source.inject(Datum("x", 1, 0.0))
        assert channel.latest_output() is not None
        before = channel.latest_output().logical_time
        channel.close()
        source.inject(Datum("x", 2, 1.0))
        assert channel.latest_output().logical_time == before


class TestReferenceSystemMetadata:
    def test_metadata_not_part_of_equality(self):
        a = ReferenceSystem("wgs84", "geodetic", metadata=(("epsg", 4326),))
        b = ReferenceSystem("wgs84", "geodetic")
        assert a == b
        assert a.metadata == (("epsg", 4326),)


class TestSymbolicLocationSurface:
    def test_is_inside_flag(self):
        building = demo_building()
        from repro.geo.grid import GridPosition

        inside = building.resolve(
            building.grid.to_wgs84(GridPosition(5.0, 3.0))
        )
        outside = building.resolve(
            building.grid.to_wgs84(GridPosition(-100.0, 0.0))
        )
        assert inside.is_inside and not outside.is_inside


class TestDatumKindGuards:
    def test_beacon_scan_kind_registered_in_default_map(self):
        from repro.core.middleware import DEFAULT_KIND_MAP

        assert DEFAULT_KIND_MAP["beacon-scan"] == Kind.BEACON_SCAN
