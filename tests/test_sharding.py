"""Tests for the sharded multi-worker runtime and its placement policies.

Covers the :mod:`repro.runtime.placement` policy objects (consistent
hashing, modulo, explicit pins), the :class:`ShardedEngine` coordinator
(placement-driven tracking, fan-out submission, merged reflective
surfaces, simulated-clock rounds), per-shard failure containment
(degraded marking, truncation surfacing, chaos via fault injection),
the middleware/report integration, and the multiprocessing executor
(marked ``multiproc``; excluded from tier-1).
"""

from collections import Counter

import pytest

from repro.clock import SimulationClock
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.core.middleware import PerPos
from repro.core.report import infrastructure_snapshot, render_report
from repro.robustness import FaultInjectionFeature
from repro.robustness.supervision import OPEN, QUARANTINE, SupervisionPolicy
from repro.runtime import (
    ConsistentHashPlacement,
    EngineError,
    ModuloPlacement,
    PinnedPlacement,
    PlacementError,
    PlacementPolicy,
    PositioningEngine,
    RoundRobinScheduler,
    SHARD_DEGRADED,
    SHARD_HEALTHY,
    ShardedEngine,
    ShardingError,
    WeightedScheduler,
    stable_hash,
)
from repro.runtime.sharding import build_scheduler, materialise_graph


def datum(value, kind="x", t=0.0):
    return Datum(kind, value, t)


def _crash_on_negative(d):
    if d.payload < 0:
        raise ValueError(f"crash on {d.payload}")
    return d


def recipe():
    """src -> stage -> app; module-level so worker processes can pickle it."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", ("x",)))
    graph.add(
        FunctionComponent("stage", ("x",), ("x",), fn=_crash_on_negative)
    )
    graph.add(ApplicationSink("app", ("x",)))
    graph.connect("src", "stage")
    graph.connect("stage", "app")
    return graph


def fill(engine, targets=8, per_target=5, shard=None):
    """Track ``targets`` lanes and submit ``per_target`` datums to each."""
    for t in range(targets):
        engine.track(f"t{t}", "src", shard=shard)
    for i in range(per_target):
        for t in range(targets):
            engine.submit(f"t{t}", datum(i, t=float(i)))
    return targets * per_target


class TestStableHash:
    def test_deterministic_and_spread(self):
        assert stable_hash("t1") == stable_hash("t1")
        values = {stable_hash(f"t{i}") for i in range(100)}
        assert len(values) == 100
        assert all(0 <= v < 2**64 for v in values)


class TestConsistentHashPlacement:
    def test_places_in_range_and_deterministically(self):
        policy = ConsistentHashPlacement()
        for count in (1, 2, 5):
            placements = [
                policy.place(f"t{i}", count) for i in range(200)
            ]
            assert all(0 <= p < count for p in placements)
            assert placements == [
                policy.place(f"t{i}", count) for i in range(200)
            ]

    def test_single_shard_shortcut(self):
        assert ConsistentHashPlacement().place("anything", 1) == 0

    def test_distribution_is_roughly_even(self):
        policy = ConsistentHashPlacement()
        counts = Counter(
            policy.place(f"t{i}", 4) for i in range(1000)
        )
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 100

    def test_resize_relocates_a_minority(self):
        policy = ConsistentHashPlacement()
        targets = [f"t{i}" for i in range(400)]
        before = {t: policy.place(t, 4) for t in targets}
        moved = sum(
            1 for t in targets if policy.place(t, 5) != before[t]
        )
        # Ideal is K/5 = 80; modulo placement moves ~4/5 of everything.
        assert moved < 200

    def test_invalid_configuration(self):
        with pytest.raises(PlacementError):
            ConsistentHashPlacement(replicas=0)
        with pytest.raises(PlacementError):
            ConsistentHashPlacement().place("t", 0)

    def test_describe(self):
        info = ConsistentHashPlacement(replicas=64).describe()
        assert info == {
            "type": "ConsistentHashPlacement",
            "replicas": 64,
        }


class TestModuloPlacement:
    def test_modulo_of_stable_hash(self):
        policy = ModuloPlacement()
        assert policy.place("t1", 4) == stable_hash("t1") % 4

    def test_resize_relocates_a_majority(self):
        # The contrast consistent hashing is measured against.
        policy = ModuloPlacement()
        targets = [f"t{i}" for i in range(400)]
        moved = sum(
            1
            for t in targets
            if policy.place(t, 5) != policy.place(t, 4)
        )
        assert moved > 250


class TestPinnedPlacement:
    def test_pin_overrides_base(self):
        policy = PinnedPlacement()
        base = policy.base.place("vip", 4)
        policy.pin("vip", (base + 1) % 4)
        assert policy.place("vip", 4) == (base + 1) % 4
        assert policy.place("other", 4) == policy.base.place("other", 4)

    def test_unpin_falls_back(self):
        policy = PinnedPlacement(pins={"vip": 2})
        assert policy.place("vip", 4) == 2
        assert policy.unpin("vip") == 2
        assert policy.place("vip", 4) == policy.base.place("vip", 4)
        with pytest.raises(PlacementError):
            policy.unpin("vip")

    def test_out_of_range_pin_surfaces_at_place_time(self):
        policy = PinnedPlacement(pins={"vip": 7})
        with pytest.raises(PlacementError):
            policy.place("vip", 4)
        with pytest.raises(PlacementError):
            policy.pin("x", -1)

    def test_describe_includes_pins_and_base(self):
        policy = PinnedPlacement(base=ModuloPlacement(), pins={"a": 1})
        info = policy.describe()
        assert info["pins"] == {"a": 1}
        assert info["base"] == {"type": "ModuloPlacement"}


class TestBuildHelpers:
    def test_build_scheduler_specs(self):
        assert isinstance(build_scheduler(None), RoundRobinScheduler)
        rr = build_scheduler(("round_robin", 8))
        assert isinstance(rr, RoundRobinScheduler)
        assert rr.quantum == 8
        assert isinstance(
            build_scheduler(("weighted", 4)), WeightedScheduler
        )
        assert isinstance(
            build_scheduler(lambda: WeightedScheduler(2)),
            WeightedScheduler,
        )

    def test_build_scheduler_rejects_bad_specs(self):
        with pytest.raises(ShardingError):
            build_scheduler(("fifo", 8))
        with pytest.raises(ShardingError):
            build_scheduler(lambda: "not a scheduler")

    def test_materialise_graph_accepts_assembler(self):
        from repro.core.assembly import AutoAssembler

        assembler = AutoAssembler()
        assembler.graph.add(SourceComponent("src", ("x",)))
        assert materialise_graph(lambda: assembler) is assembler.graph

    def test_materialise_graph_rejects_non_graphs(self):
        with pytest.raises(ShardingError):
            materialise_graph(lambda: "nope")


class TestShardedEngineBasics:
    def test_invalid_configuration(self):
        with pytest.raises(ShardingError):
            ShardedEngine(recipe, 0)
        with pytest.raises(ShardingError):
            ShardedEngine(recipe, 2, executor="threads")

    def test_each_shard_gets_its_own_graph(self):
        with ShardedEngine(recipe, 3) as engine:
            graphs = {id(shard.graph) for shard in engine.shards()}
            assert len(graphs) == 3
            assert engine.shard_count == 3

    def test_track_uses_placement_policy(self):
        policy = ConsistentHashPlacement()
        with ShardedEngine(recipe, 4, placement=policy) as engine:
            for i in range(32):
                assert engine.track(f"t{i}", "src") == policy.place(
                    f"t{i}", 4
                )
                assert engine.shard_of(f"t{i}") == policy.place(
                    f"t{i}", 4
                )
            assert len(engine.assignments()) == 32

    def test_track_pin_overrides_policy(self):
        with ShardedEngine(recipe, 4) as engine:
            assert engine.track("vip", "src", shard=3) == 3
            assert engine.shard_of("vip") == 3
            with pytest.raises(ShardingError):
                engine.track("vip", "src")  # already tracked
            with pytest.raises(ShardingError):
                engine.track("t2", "src", shard=9)

    def test_untrack_releases_the_lane(self):
        with ShardedEngine(recipe, 2) as engine:
            shard = engine.track("t1", "src")
            assert engine.untrack("t1") == shard
            with pytest.raises(ShardingError):
                engine.shard_of("t1")
            # The shard's engine really dropped the lane.
            assert engine.ingestion_lanes() == {}

    def test_submit_routes_to_owning_shard(self):
        with ShardedEngine(recipe, 3) as engine:
            engine.track("t1", "src", shard=2)
            assert engine.submit("t1", datum(1)) == "accepted"
            owner = engine.shard(2)
            assert owner.engine.lane("t1").queue.depth == 1
            with pytest.raises(ShardingError):
                engine.submit("ghost", datum(1))

    def test_submit_batch_fans_out_and_merges_verdicts(self):
        with ShardedEngine(recipe, 3) as engine:
            engine.track("a", "src", shard=0, capacity=2)
            engine.track("b", "src", shard=1)
            verdicts = engine.submit_batch(
                [("a", datum(i)) for i in range(4)]
                + [("b", datum(i)) for i in range(3)]
            )
            # Lane "a" has capacity 2 with drop-oldest: all 4 accepted
            # but 2 evicted; verdict counting happens at offer time.
            assert verdicts == {"accepted": 7}
            assert engine.pending_total() == 5

    def test_drain_round_and_drain_all(self):
        with ShardedEngine(recipe, 3) as engine:
            n = fill(engine, targets=9, per_target=4)
            first = engine.drain_round()
            assert 0 < first <= n
            rest = engine.drain_all()
            assert first + rest == n
            assert engine.drained_total == n
            assert engine.rounds >= 2
            assert engine.pending_total() == 0

    def test_sink_outputs_collects_across_shards(self):
        with ShardedEngine(recipe, 3) as engine:
            n = fill(engine, targets=6, per_target=3)
            engine.drain_all()
            rows = engine.sink_outputs()
            assert len(rows) == n
            assert {row[0] for row in rows} == {"app"}
            assert {row[3] for row in rows} == {
                f"t{i}" for i in range(6)
            }

    def test_set_policy_reaches_the_owning_lane(self):
        with ShardedEngine(recipe, 3) as engine:
            engine.track("t1", "src", shard=1)
            stats = engine.set_policy("t1", policy="coalesce", weight=3)
            assert stats["policy"] == "coalesce"
            assert stats["weight"] == 3

    def test_ingestion_lanes_annotated_with_shard(self):
        with ShardedEngine(recipe, 3) as engine:
            engine.track("a", "src", shard=0)
            engine.track("b", "src", shard=2)
            engine.submit("a", datum(1))
            lanes = engine.ingestion_lanes()
            assert lanes["a"]["shard"] == 0
            assert lanes["b"]["shard"] == 2
            assert lanes["a"]["depth"] == 1

    def test_snapshot_shape(self):
        with ShardedEngine(recipe, 2) as engine:
            fill(engine, targets=4, per_target=2)
            engine.drain_all()
            snap = engine.snapshot()
            assert snap["executor"] == "inprocess"
            assert snap["shards"] == 2
            assert snap["placement"]["type"] == "ConsistentHashPlacement"
            assert snap["targets"] == 4
            assert snap["drained_total"] == 8
            assert snap["pending"] == 0
            assert snap["degraded"] == []
            assert snap["truncated"] == []
            assert snap["failures"] == []
            assert [e["shard"] for e in snap["per_shard"]] == [0, 1]
            assert all(
                e["status"] == SHARD_HEALTHY for e in snap["per_shard"]
            )

    def test_start_drains_on_the_simulated_clock(self):
        clock = SimulationClock()
        with ShardedEngine(recipe, 2, clock=clock) as engine:
            n = fill(engine, targets=4, per_target=3)
            engine.start(1.0)
            assert engine.snapshot()["running"]
            clock.run_until(5.0)
            assert engine.drained_total == n
            engine.stop()
            assert not engine.snapshot()["running"]

    def test_start_requires_a_clock(self):
        with ShardedEngine(recipe, 2) as engine:
            with pytest.raises(ShardingError):
                engine.start(1.0)
        clock = SimulationClock()
        with ShardedEngine(recipe, 2, clock=clock) as engine:
            with pytest.raises(ShardingError):
                engine.start(0.0)

    def test_shard_lookup_errors(self):
        with ShardedEngine(recipe, 2) as engine:
            with pytest.raises(ShardingError):
                engine.shard(5)


class TestMergedObservability:
    def test_merged_component_stats_sum_across_shards(self):
        with ShardedEngine(recipe, 3, observability=True) as engine:
            n = fill(engine, targets=6, per_target=4)
            engine.drain_all()
            stats = engine.merged_component_stats()
            assert stats["stage"]["items_in"] == n
            assert stats["app"]["items_in"] == n
            # Latency histograms record per delivered batch, not per
            # datum; the merge must still sum across shards.
            per_shard = sum(
                shard.component_stats()["stage"]["latency"]["count"]
                for shard in engine.shards()
            )
            assert stats["stage"]["latency"]["count"] == per_shard > 0

    def test_merged_metrics_sum_counter_series(self):
        with ShardedEngine(recipe, 2, observability=True) as engine:
            n = fill(engine, targets=4, per_target=3)
            engine.drain_all()
            merged = engine.merged_metrics()
            items_in = sum(
                value
                for series, value in merged["counters"].items()
                if series.startswith("items_in{component=stage")
            )
            assert items_in == n

    def test_surfaces_empty_without_observability(self):
        with ShardedEngine(recipe, 2) as engine:
            fill(engine, targets=2, per_target=2)
            engine.drain_all()
            assert engine.merged_component_stats() == {}
            assert engine.merged_metrics() == {
                "counters": {},
                "gauges": {},
                "histograms": {},
            }


class TestShardFailureContainment:
    def test_failing_shard_is_degraded_and_survivors_drain(self):
        with ShardedEngine(recipe, 3) as engine:
            for t in range(3):
                engine.track(f"t{t}", "src", shard=t)
            engine.submit("t0", datum(5))
            engine.submit("t1", datum(-1))  # stage raises on shard 1
            engine.submit("t2", datum(7))
            drained = engine.drain_all()
            assert drained == 2  # shards 0 and 2 finished their datums
            assert engine.degraded() == [1]
            shard = engine.shard(1)
            assert shard.status == SHARD_DEGRADED
            assert "ValueError" in shard.error
            [failure] = engine.failures()
            assert failure["shard"] == 1
            assert failure["op"] == "all"
            assert "crash on -1" in failure["error"]

    def test_degraded_shard_skips_rounds_until_restored(self):
        with ShardedEngine(recipe, 2) as engine:
            engine.track("bad", "src", shard=0)
            engine.track("good", "src", shard=1)
            engine.submit("bad", datum(-1))
            engine.drain_all()
            assert engine.degraded() == [0]
            # New work on the healthy shard still flows.
            engine.submit("good", datum(1))
            assert engine.drain_all() == 1
            assert engine.degraded() == [0]
            # After healing (the poison datum was consumed by the
            # failed delivery), the shard rejoins the rounds.
            engine.restore_shard(0)
            engine.submit("bad", datum(2))
            assert engine.drain_all() == 1
            assert engine.degraded() == []

    def test_all_shards_degraded_raises(self):
        with ShardedEngine(recipe, 2) as engine:
            engine.track("a", "src", shard=0)
            engine.track("b", "src", shard=1)
            engine.submit("a", datum(-1))
            engine.submit("b", datum(-2))
            engine.drain_all()
            assert engine.degraded() == [0, 1]
            with pytest.raises(ShardingError):
                engine.drain_round()

    def test_failure_ring_is_bounded(self):
        with ShardedEngine(recipe, 2, failure_limit=3) as engine:
            engine.track("bad", "src", shard=0)
            for i in range(5):
                engine.submit("bad", datum(-1 - i))
                engine.drain_all()
                engine.restore_shard(0)
            assert len(engine.failures()) == 3

    def test_truncation_is_degradation_not_quiescence(self):
        # Quantum 1 + 5 datums + max_rounds 2: the shard cannot finish,
        # and the coordinator must not report it drained.
        with ShardedEngine(
            recipe, 2, scheduler=("round_robin", 1)
        ) as engine:
            engine.track("slow", "src", shard=0)
            engine.track("fast", "src", shard=1)
            for i in range(5):
                engine.submit("slow", datum(i))
            engine.submit("fast", datum(9))
            drained = engine.drain_all(max_rounds=2)
            assert drained == 1  # only the fast shard finished
            assert engine.degraded() == [0]
            snap = engine.snapshot()
            assert snap["truncated"] == [0]
            assert snap["pending"] == 3
            assert "not drained" in engine.shard(0).error

    def test_begin_drain_failure_is_contained_and_survivors_collected(self):
        # A shard can fail at begin_drain (a worker dead while idle is
        # the realistic crash mode): it must be degraded like a
        # finish_drain failure, and shards that DID begin must still be
        # collected -- in begin-order, keeping survivors' results exact.
        with ShardedEngine(recipe, 3) as engine:
            for t in range(3):
                engine.track(f"t{t}", "src", shard=t)
            for t in range(3):
                engine.submit(f"t{t}", datum(t))

            def broken_begin(op, max_rounds):
                raise ShardingError("worker exited unexpectedly")

            engine.shard(1).begin_drain = broken_begin
            assert engine.drain_all() == 2  # shards 0 and 2 delivered
            assert engine.degraded() == [1]
            [failure] = engine.failures()
            assert failure["shard"] == 1
            assert "worker exited unexpectedly" in failure["error"]
            # The degraded shard is skipped, so later rounds stay clean.
            engine.submit("t0", datum(9))
            assert engine.drain_all() == 1
            assert engine.degraded() == [1]

    def test_shard_drain_all_on_exact_round_boundary_stays_healthy(self):
        # Quantum 1 + 2 datums + max_rounds 2: the queues empty exactly
        # on the last round -- quiescence, not truncation; the shard
        # must not be degraded.
        with ShardedEngine(
            recipe, 2, scheduler=("round_robin", 1)
        ) as engine:
            engine.track("t0", "src", shard=0)
            engine.submit("t0", datum(0))
            engine.submit("t0", datum(1))
            assert engine.drain_all(max_rounds=2) == 2
            assert engine.degraded() == []
            assert engine.snapshot()["truncated"] == []

    def test_per_shard_supervision_quarantines_inside_the_shard(self):
        policy = SupervisionPolicy(
            mode=QUARANTINE, failure_threshold=2, window_s=60.0
        )
        with ShardedEngine(recipe, 2, supervision=policy) as engine:
            engine.track("bad", "src", shard=0)
            engine.track("good", "src", shard=1)
            for i in range(3):
                engine.submit("bad", datum(-1 - i))
                engine.submit("good", datum(i))
            # Supervised delivery absorbs the failures: no shard-level
            # degradation, the breaker opens inside shard 0 instead.
            engine.drain_all()
            assert engine.degraded() == []
            health = engine.component_health()
            assert health["stage"] == OPEN  # worst-of across shards


@pytest.mark.chaos
class TestShardChaos:
    def _engine_with_fault(self, **kwargs):
        engine = ShardedEngine(recipe, 3, **kwargs)
        stage = engine.shard(0).graph.component("stage")
        stage.attach_feature(FaultInjectionFeature(fail_every=1))
        return engine

    def test_mid_drain_crash_degrades_only_its_shard(self):
        with self._engine_with_fault() as engine:
            for t in range(6):
                engine.track(f"t{t}", "src", shard=t % 3)
            for i in range(4):
                for t in range(6):
                    engine.submit(f"t{t}", datum(i, t=float(i)))
            drained = engine.drain_all()
            # Shards 1 and 2 (two targets x four datums each) finish.
            assert drained == 16
            assert engine.degraded() == [0]
            assert "FaultInjected" in engine.shard(0).error
            rows = engine.sink_outputs()
            assert {row[3] for row in rows} == {
                "t1", "t2", "t4", "t5"
            }

    def test_merged_report_stays_renderable_during_chaos(self):
        middleware = PerPos()
        engine = middleware.enable_sharding(recipe, 3)
        stage = engine.shard(0).graph.component("stage")
        stage.attach_feature(FaultInjectionFeature(fail_every=1))
        for t in range(3):
            engine.track(f"t{t}", "src", shard=t)
            engine.submit(f"t{t}", datum(t, t=float(t)))
        engine.drain_all()
        assert engine.degraded() == [0]
        snap = infrastructure_snapshot(middleware)
        assert snap["sharding"]["degraded"] == [0]
        assert snap["sharding"]["per_shard"][0]["status"] == (
            SHARD_DEGRADED
        )
        text = render_report(middleware)
        assert "sharding:" in text
        assert "shard 0: degraded" in text
        assert "FaultInjected" in text
        assert "shard 1: healthy" in text
        middleware.disable_sharding()

    def test_disarm_and_restore_rejoins_the_fleet(self):
        with self._engine_with_fault() as engine:
            engine.track("a", "src", shard=0)
            engine.submit("a", datum(1))
            engine.drain_all()
            assert engine.degraded() == [0]
            stage = engine.shard(0).graph.component("stage")
            stage.get_feature("FaultInjection").disarm()
            engine.restore_shard(0)
            engine.submit("a", datum(2))
            assert engine.drain_all() == 1
            assert engine.degraded() == []


class TestMiddlewareIntegration:
    def test_enable_sharding_registers_and_uses_the_clock(self):
        middleware = PerPos()
        engine = middleware.enable_sharding(recipe, 2)
        assert middleware.sharding is engine
        assert engine.clock is middleware.clock
        assert (
            middleware.framework.registry.find_service(
                "perpos.ShardedEngine"
            )
            is engine
        )
        engine.track("t1", "src")
        engine.submit("t1", datum(1))
        engine.start(1.0)
        middleware.clock.run_until(2.0)
        assert engine.drained_total == 1
        previous = middleware.disable_sharding()
        assert previous is engine
        assert middleware.sharding is None

    def test_re_enabling_replaces_the_coordinator(self):
        middleware = PerPos()
        first = middleware.enable_sharding(recipe, 2)
        second = middleware.enable_sharding(recipe, 3)
        assert second is not first
        assert middleware.sharding is second
        middleware.disable_sharding()

    def test_registry_tracks_the_live_coordinator(self):
        # Re-enabling must re-register: a stale registration would hand
        # registry consumers the previous, now-closed coordinator.
        middleware = PerPos()
        registry = middleware.framework.registry
        first = middleware.enable_sharding(recipe, 2)
        second = middleware.enable_sharding(recipe, 3)
        assert registry.find_service("perpos.ShardedEngine") is second
        assert first is not second
        middleware.disable_sharding()
        assert registry.find_service("perpos.ShardedEngine") is None
        third = middleware.enable_sharding(recipe, 2)
        assert registry.find_service("perpos.ShardedEngine") is third
        middleware.disable_sharding()
        assert registry.find_service("perpos.ShardedEngine") is None

    def test_report_without_sharding(self):
        middleware = PerPos()
        assert infrastructure_snapshot(middleware)["sharding"] is None
        assert "(sharding disabled)" in render_report(middleware)

    def test_report_with_sharding(self):
        middleware = PerPos()
        engine = middleware.enable_sharding(recipe, 2)
        engine.track("t1", "src")
        engine.submit("t1", datum(1))
        engine.drain_all()
        text = render_report(middleware)
        assert "2 shards (inprocess)" in text
        assert "placement=ConsistentHashPlacement" in text
        assert "drained=1" in text
        middleware.disable_sharding()


@pytest.mark.multiproc
class TestMultiprocessingExecutor:
    def test_roundtrip_matches_inprocess(self):
        results = {}
        for executor in ("inprocess", "multiprocessing"):
            with ShardedEngine(
                recipe,
                2,
                executor=executor,
                scheduler=("round_robin", 16),
            ) as engine:
                for t in range(6):
                    engine.track(f"t{t}", "src")
                engine.submit_batch(
                    [
                        (f"t{t}", datum(i, t=float(i)))
                        for t in range(6)
                        for i in range(5)
                    ]
                )
                assert engine.drain_all() == 30
                results[executor] = Counter(
                    (kind, payload, target)
                    for _s, kind, payload, target in (
                        engine.sink_outputs()
                    )
                )
        assert results["multiprocessing"] == results["inprocess"]

    def test_merged_surfaces_cross_the_process_boundary(self):
        with ShardedEngine(
            recipe, 2, executor="multiprocessing", observability=True
        ) as engine:
            for t in range(4):
                engine.track(f"t{t}", "src")
            engine.submit_batch(
                [(f"t{t}", datum(1)) for t in range(4)]
            )
            engine.drain_all()
            assert engine.merged_component_stats()["app"]["items_in"] == 4
            lanes = engine.ingestion_lanes()
            assert set(lanes) == {f"t{t}" for t in range(4)}
            snap = engine.snapshot()
            assert snap["executor"] == "multiprocessing"
            assert snap["pending"] == 0

    def test_remote_failure_degrades_only_its_shard(self):
        with ShardedEngine(
            recipe, 2, executor="multiprocessing"
        ) as engine:
            engine.track("bad", "src", shard=0)
            engine.track("good", "src", shard=1)
            engine.submit("bad", datum(-1))
            engine.submit("good", datum(1))
            assert engine.drain_all() == 1
            assert engine.degraded() == [0]
            assert "ValueError" in engine.shard(0).error
            # The worker survived its exception: still inspectable.
            assert engine.shard(0).snapshot()["pending"] == 0

    def test_set_policy_and_untrack_remotely(self):
        with ShardedEngine(
            recipe, 2, executor="multiprocessing"
        ) as engine:
            engine.track("t1", "src")
            stats = engine.set_policy("t1", weight=4)
            assert stats["weight"] == 4
            engine.untrack("t1")
            assert engine.ingestion_lanes() == {}

    def test_killed_worker_is_degraded_and_survivors_keep_draining(self):
        # A worker dying while idle must not leak BrokenPipeError out of
        # drain_round: the shard is degraded on the next round and the
        # survivors keep delivering.
        with ShardedEngine(
            recipe, 2, executor="multiprocessing"
        ) as engine:
            engine.track("dead", "src", shard=0)
            engine.track("live", "src", shard=1)
            shard = engine.shard(0)
            shard._process.terminate()
            shard._process.join(timeout=5)
            engine.submit("live", datum(1))
            assert engine.drain_round() == 1
            assert engine.degraded() == [0]
            assert "worker" in shard.error
            # The round after stays clean: the dead shard is skipped.
            engine.submit("live", datum(2))
            assert engine.drain_round() == 1
            assert engine.degraded() == [0]

    def test_close_with_abandoned_drain_exits_worker_cleanly(self):
        # close() after a begun-but-uncollected drain must resync the
        # pipe and complete the stop handshake -- exitcode 0 proves the
        # worker was not SIGTERMed after a 5s join timeout.
        engine = ShardedEngine(recipe, 1, executor="multiprocessing")
        engine.track("t1", "src")
        engine.submit("t1", datum(1))
        shard = engine.shard(0)
        shard.begin_drain("round", 1)  # abandoned: never finished
        engine.close()
        assert not shard._process.is_alive()
        assert shard._process.exitcode == 0


def test_single_shard_matches_plain_engine_exactly():
    """One shard, same scheduler: the coordinator adds no semantics."""
    graph = recipe()
    single = PositioningEngine(graph)
    for t in range(4):
        single.track(f"t{t}", "src")
    for i in range(6):
        for t in range(4):
            single.submit(f"t{t}", datum(i, t=float(i)))
    single.drain_all()
    sink = graph.component("app")
    single_outputs = Counter(
        (d.kind, d.payload, d.attributes.get("target"))
        for d in sink.received
    )

    with ShardedEngine(recipe, 1) as engine:
        for t in range(4):
            engine.track(f"t{t}", "src")
        for i in range(6):
            for t in range(4):
                engine.submit(f"t{t}", datum(i, t=float(i)))
        engine.drain_all()
        sharded_outputs = Counter(
            (kind, payload, target)
            for _s, kind, payload, target in engine.sink_outputs()
        )
    assert sharded_outputs == single_outputs


def test_engine_error_truncation_only_on_exhaustion():
    """EngineError from drain_all surfaces; clean drains reset the latch."""
    graph = recipe()
    engine = PositioningEngine(graph, scheduler=RoundRobinScheduler(1))
    engine.track("t1", "src")
    for i in range(4):
        engine.submit("t1", datum(i))
    with pytest.raises(EngineError):
        engine.drain_all(max_rounds=2)
    assert engine.last_drain_truncated
    assert engine.truncations == 1
    assert engine.snapshot()["last_drain_truncated"]
    engine.drain_all()
    assert not engine.last_drain_truncated
    assert engine.snapshot()["truncations"] == 1


class _AllToShard(PlacementPolicy):
    """Test policy: every target belongs on one fixed shard index."""

    def __init__(self, shard):
        self.shard = shard

    def place(self, target_id, shard_count):
        return self.shard


class TestRebalance:
    """Placement-driven ``rebalance`` sweeps (the controller's actuator)."""

    def test_sweep_follows_new_placement(self):
        with ShardedEngine(recipe, 3) as engine:
            submitted = fill(engine, targets=6, per_target=4, shard=0)
            assert engine.pending_total() == submitted
            moves = engine.rebalance(ModuloPlacement())
            expected_moves = sum(
                1 for t in range(6) if stable_hash(f"t{t}") % 3 != 0
            )
            assert len(moves) == expected_moves
            for record in moves:
                assert record["from"] == 0
                assert record["datums"] == 4
            for t in range(6):
                assert engine.shard_of(f"t{t}") == stable_hash(f"t{t}") % 3
            # Warm handoff: no queued datum was lost in the sweep.
            assert engine.pending_total() == submitted
            assert engine.drain_all() == submitted
            assert engine.migrations()[-len(moves) :] == moves

    def test_max_moves_bounds_the_sweep(self):
        with ShardedEngine(recipe, 3) as engine:
            fill(engine, targets=6, per_target=2, shard=0)
            moves = engine.rebalance(_AllToShard(1), max_moves=1)
            assert len(moves) == 1
            # The rest of the population is still where it was.
            moved = {record["target"] for record in moves}
            for t in range(6):
                expected = 1 if f"t{t}" in moved else 0
                assert engine.shard_of(f"t{t}") == expected

    def test_degraded_destination_is_skipped_not_failed(self):
        with ShardedEngine(recipe, 2) as engine:
            engine.track("boom", "src", shard=1)
            engine.submit("boom", datum(-1))
            engine.drain_all()
            assert engine.degraded() == [1]
            fill(engine, targets=4, per_target=2, shard=0)
            assert engine.rebalance(_AllToShard(1)) == []
            for t in range(4):
                assert engine.shard_of(f"t{t}") == 0

    def test_out_of_range_placement_raises(self):
        with ShardedEngine(recipe, 2) as engine:
            engine.track("t1", "src", shard=0)
            with pytest.raises(ShardingError):
                engine.rebalance(_AllToShard(5))

    def test_second_sweep_is_a_noop(self):
        with ShardedEngine(recipe, 3) as engine:
            fill(engine, targets=6, per_target=1, shard=0)
            moves = engine.rebalance(ModuloPlacement())
            assert moves
            # Completed moves pin their targets, so re-running the
            # (now pinned) current policy finds nothing left to do.
            assert isinstance(engine.placement, PinnedPlacement)
            assert engine.rebalance() == []

    def test_rebalance_under_concurrent_submits_loses_nothing(self):
        """The ISSUE-named regression: interleaving sweeps with live
        ingestion and partial drains must neither lose nor duplicate a
        single datum -- the sink multiset equals exactly what was
        submitted."""
        with ShardedEngine(
            recipe, 3, scheduler=("round_robin", 2)
        ) as engine:
            targets = [f"t{t}" for t in range(8)]
            for t in targets:
                engine.track(t, "src", shard=0, capacity=64)
            expected = Counter()
            submitted = 0
            drained = 0
            sequence = 0
            policies = (ModuloPlacement(), ConsistentHashPlacement())
            for round_no in range(12):
                for t in targets:
                    engine.submit(t, datum(sequence, t=float(sequence)))
                    expected[("x", sequence, t)] += 1
                    submitted += 1
                    sequence += 1
                engine.rebalance(policies[round_no % 2], max_moves=2)
                drained += engine.drain_round()
            drained += engine.drain_all()
            assert drained == submitted
            outputs = Counter(
                (kind, payload, target)
                for _sink, kind, payload, target in engine.sink_outputs()
            )
            assert outputs == expected
