"""Tests for the ingestion gateway: wire formats, crosswalks, DLQ, replay.

Covers the :mod:`repro.gateway` package bottom-up -- timestamp parsing
and per-field schemas (:mod:`~repro.gateway.wire`), crosswalk
normalisation (:mod:`~repro.gateway.adapters`), the bounded dead-letter
ring with backoff/exhaustion (:mod:`~repro.gateway.dlq`) -- then the
:class:`IngestionGateway` pipeline end to end: stage-by-stage rejection,
device admission policies, admission-boundary shedding, replay-after-fix,
the middleware/PSL/report/hub surfaces, and the ISSUE acceptance storm
(10k mixed payloads drain with exact accounting; a chaos-marked variant
drives :class:`FaultInjectionFeature` payload corruption at the edge).
"""

import random

import pytest

from repro.clock import SimulationClock
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Kind
from repro.core.graph import GraphError, ProcessingGraph
from repro.core.middleware import PerPos
from repro.core.report import infrastructure_snapshot, render_report
from repro.gateway import (
    ADMITTED,
    EXHAUSTED,
    PENDING,
    PHONE_TRACKER_V1,
    RATE_LIMITED,
    REJECTED,
    REPLAYED,
    SHED,
    STAGES,
    AutoTrackPolicy,
    ClosedWorldPolicy,
    Crosswalk,
    CrosswalkError,
    DeadLetterQueue,
    FieldMap,
    FieldSpec,
    GatewayError,
    IngestionGateway,
    SourceAdapter,
    WireFormat,
    WireFormatError,
    WireFormatRegistry,
    builtin_registry,
    parse_timestamp,
    scale,
)
from repro.robustness import FaultInjectionFeature
from repro.runtime import PositioningEngine
from repro.services.remote import RetryPolicy

POS = Kind.POSITION_WGS84


class FakeClock:
    """A settable ``.now`` for clock-injected gateway tests."""

    def __init__(self, now=1000.0):
        self.now = now

    def advance(self, seconds):
        self.now += seconds


def build_graph():
    """src -> sink on the position kind the gateway's adapters mint."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", (POS,)))
    graph.add(ApplicationSink("sink", (POS,), keep_last=100_000))
    graph.connect("src", "sink", "in")
    sink = graph.component("sink")
    return graph, sink


def make_gateway(**kwargs):
    graph, sink = build_graph()
    engine = PositioningEngine(graph)
    clock = kwargs.pop("clock", FakeClock())
    gateway = IngestionGateway(engine, "src", clock=clock, **kwargs)
    return gateway, engine, sink, clock


def payload(device="d1", t=1000.0, **over):
    out = {
        "source_format": "phone_tracker_v1",
        "device_id": device,
        "timestamp": t,
        "lat": 55.676,
        "lon": 12.568,
        "accuracy_m": 5.0,
        "battery_pct": 0.8,
    }
    out.update(over)
    return out


def pump(gateway, engine):
    """Forward everything admitted and drain it through to the sink."""
    gateway.forward()
    engine.drain_all()


# -- wire formats -------------------------------------------------------------


class TestParseTimestamp:
    def test_epoch_seconds_pass_through(self):
        assert parse_timestamp(1700000000) == 1700000000.0
        assert parse_timestamp(12.5) == 12.5

    def test_bool_is_not_a_timestamp(self):
        # bool is an int subclass; accepting True as 1.0 would silently
        # validate corrupted payloads.
        with pytest.raises(WireFormatError):
            parse_timestamp(True)

    def test_iso_with_zulu_suffix(self):
        assert parse_timestamp("1970-01-01T00:01:00Z") == 60.0

    def test_naive_iso_reads_as_utc(self):
        # Host-timezone independence: a naive stamp must parse the same
        # everywhere.
        assert parse_timestamp("1970-01-01T01:00:00") == 3600.0

    def test_explicit_offset_respected(self):
        assert parse_timestamp("1970-01-01T01:00:00+01:00") == 0.0

    @pytest.mark.parametrize("bad", ["yesterday", "", None, [1], {"t": 1}])
    def test_garbage_raises(self, bad):
        with pytest.raises(WireFormatError):
            parse_timestamp(bad)


class TestWireFormat:
    def test_field_spec_rejects_unknown_kind(self):
        with pytest.raises(WireFormatError):
            FieldSpec("x", kind="blob")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(WireFormatError):
            WireFormat(
                "dup_v1",
                (
                    FieldSpec("device_id", "str", required=True),
                    FieldSpec("timestamp", "timestamp", required=True),
                    FieldSpec("timestamp", "float"),
                ),
            )

    def test_device_and_timestamp_fields_must_have_specs(self):
        with pytest.raises(WireFormatError):
            WireFormat("x_v1", (FieldSpec("timestamp", "timestamp"),))

    def test_valid_payload_has_no_errors(self):
        assert PHONE_TRACKER_V1.validate(payload()) == []

    def test_unknown_extra_fields_tolerated(self):
        # Forward compatibility: informational fields must not break _v1.
        assert PHONE_TRACKER_V1.validate(payload(firmware="2.1")) == []

    def test_missing_required_fields_all_reported(self):
        errors = PHONE_TRACKER_V1.validate({"source_format": "phone_tracker_v1"})
        missing = {e for e in errors if e.startswith("missing")}
        assert len(missing) == 4  # device_id, timestamp, lat, lon

    @pytest.mark.parametrize(
        "field, value",
        [
            ("lat", 91.0),
            ("lat", -90.5),
            ("lon", 181.0),
            ("heading_deg", 361.0),
            ("speed_mps", -1.0),
            ("battery_pct", 1.5),
        ],
    )
    def test_range_violations_caught(self, field, value):
        errors = PHONE_TRACKER_V1.validate(payload(**{field: value}))
        assert len(errors) == 1 and field in errors[0]

    def test_bool_not_accepted_as_numeric(self):
        errors = PHONE_TRACKER_V1.validate(payload(lat=True))
        assert errors and "must be numeric" in errors[0]

    def test_wrong_types_caught(self):
        errors = PHONE_TRACKER_V1.validate(
            payload(lat="55.6", note=7, timestamp="not-a-date")
        )
        assert len(errors) == 3

    def test_iso_timestamp_validates_and_converts(self):
        assert PHONE_TRACKER_V1.validate(payload(t="2026-01-01T00:00:00Z")) == []

    def test_device_of_requires_non_empty_string(self):
        assert PHONE_TRACKER_V1.device_of(payload()) == "d1"
        assert PHONE_TRACKER_V1.device_of(payload(device="")) is None
        assert PHONE_TRACKER_V1.device_of({"device_id": 42}) is None

    def test_timestamp_of_parses_and_raises_when_absent(self):
        assert PHONE_TRACKER_V1.timestamp_of(payload(t=5)) == 5.0
        with pytest.raises(WireFormatError):
            PHONE_TRACKER_V1.timestamp_of({})

    def test_version_parsed_from_name(self):
        assert PHONE_TRACKER_V1.version == 1
        spec = (
            FieldSpec("device_id", "str"),
            FieldSpec("timestamp", "timestamp"),
        )
        assert WireFormat("tracker_v12", spec).version == 12
        assert WireFormat("tracker", spec).version == 0

    def test_describe_lists_fields_and_bounds(self):
        info = PHONE_TRACKER_V1.describe()
        assert info["name"] == "phone_tracker_v1"
        assert info["fields"]["lat"] == {
            "kind": "float",
            "required": True,
            "minimum": -90.0,
            "maximum": 90.0,
        }


class TestWireFormatRegistry:
    def test_builtin_registry_is_a_fresh_copy(self):
        first, second = builtin_registry(), builtin_registry()
        assert first.names() == ["phone_tracker_v1"]
        assert first is not second

    def test_reregistering_requires_replace(self):
        registry = builtin_registry()
        with pytest.raises(WireFormatError):
            registry.register(PHONE_TRACKER_V1)
        registry.register(PHONE_TRACKER_V1, replace=True)
        assert len(registry) == 1

    def test_get_tolerates_non_string_names(self):
        registry = builtin_registry()
        assert registry.get(None) is None
        assert registry.get(3) is None
        assert registry.get("phone_tracker_v1") is PHONE_TRACKER_V1
        assert "phone_tracker_v1" in registry


# -- crosswalks ---------------------------------------------------------------


class TestCrosswalk:
    def test_rename_consumes_the_source_field(self):
        walk = Crosswalk([FieldMap("latitude", "lat")])
        out = walk.apply({"latitude": 1.0, "lon": 2.0})
        assert out == {"lat": 1.0, "lon": 2.0}

    def test_unit_conversion_with_scale(self):
        walk = Crosswalk([FieldMap("speed_kmh", "speed_mps", convert=scale(1 / 3.6))])
        out = walk.apply({"speed_kmh": 36.0})
        assert out["speed_mps"] == pytest.approx(10.0)

    def test_default_fill_is_not_converted(self):
        # Defaults are declared in contract units already.
        walk = Crosswalk(
            [FieldMap("acc", "accuracy_m", convert=scale(100.0), default=5.0)]
        )
        assert walk.apply({}) == {"accuracy_m": 5.0}
        assert walk.apply({"acc": 0.1}) == {"accuracy_m": pytest.approx(10.0)}

    def test_required_source_missing_raises(self):
        walk = Crosswalk([FieldMap("latitude", "lat", required=True)])
        with pytest.raises(CrosswalkError):
            walk.apply({"lon": 2.0})

    def test_convert_failure_wrapped_as_crosswalk_error(self):
        walk = Crosswalk([FieldMap("x", "y", convert=scale(2.0))])
        with pytest.raises(CrosswalkError) as err:
            walk.apply({"x": "not-a-number"})
        assert "convert failed" in str(err.value)

    def test_passthrough_false_is_an_allow_list(self):
        walk = Crosswalk([FieldMap("latitude", "lat")], passthrough=False)
        assert walk.apply({"latitude": 1.0, "noise": "x"}) == {"lat": 1.0}

    def test_add_appends_rules_at_runtime(self):
        walk = Crosswalk()
        assert len(walk) == 0
        walk.add(FieldMap("a", "b"))
        assert walk.apply({"a": 1}) == {"b": 1}

    def test_empty_field_names_rejected(self):
        with pytest.raises(CrosswalkError):
            FieldMap("", "lat")
        with pytest.raises(CrosswalkError):
            FieldMap("lat", "")

    def test_describe_names_conversions(self):
        walk = Crosswalk(
            [FieldMap("v", "speed_mps", convert=scale(0.2778), default=0.0)]
        )
        info = walk.describe()
        assert info["passthrough"] is True
        assert info["maps"][0]["convert"].startswith("scale(")
        assert info["maps"][0]["default"] == 0.0


class TestSourceAdapter:
    def test_no_crosswalk_is_a_zero_copy_fast_path(self):
        adapter = SourceAdapter(PHONE_TRACKER_V1)
        raw = payload()
        assert adapter.normalize(raw) is raw

    def test_empty_crosswalk_also_skips_copying(self):
        adapter = SourceAdapter(PHONE_TRACKER_V1, crosswalk=Crosswalk())
        raw = payload()
        assert adapter.normalize(raw) is raw

    def test_datum_carries_provenance(self):
        adapter = SourceAdapter(PHONE_TRACKER_V1)
        datum = adapter.datum_of(payload(), "d1", 1000.0)
        assert datum.kind == POS
        assert datum.producer == "gateway:phone_tracker_v1"
        assert datum.attributes["device"] == "d1"
        assert datum.attributes["format"] == "phone_tracker_v1"

    def test_set_crosswalk_swaps_normalisation(self):
        adapter = SourceAdapter(PHONE_TRACKER_V1)
        adapter.set_crosswalk(Crosswalk([FieldMap("latitude", "lat")]))
        assert adapter.normalize({"latitude": 3.0}) == {"lat": 3.0}
        assert adapter.describe()["crosswalk"]["maps"]


# -- the dead-letter queue ----------------------------------------------------


class TestDeadLetterQueue:
    def make(self, **kwargs):
        clock = FakeClock(0.0)
        kwargs.setdefault("time_fn", lambda: clock.now)
        return DeadLetterQueue(**kwargs), clock

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DeadLetterQueue(0)

    def test_ring_evicts_oldest_and_counts(self):
        dlq, _ = self.make(capacity=3)
        for i in range(5):
            dlq.push({"i": i}, "schema", "bad")
        assert len(dlq) == 3
        assert dlq.evicted == 2
        assert [r.raw["i"] for r in dlq.records()] == [2, 3, 4]
        assert dlq.total_pushed == 5

    def test_records_filter_by_state(self):
        dlq, _ = self.make()
        ok = dlq.push({"a": 1}, "schema", "bad")
        dlq.push({"b": 2}, "format", "unknown")
        dlq.mark_replayed(ok)
        assert [r.seq for r in dlq.records(REPLAYED)] == [ok.seq]
        assert len(dlq.pending()) == 1

    def test_patch_updates_raw_and_resets_backoff(self):
        dlq, _ = self.make()
        record = dlq.push({"lat": 999.0}, "schema", "out of range")
        record.next_attempt_s = 50.0
        patched = dlq.patch(record.seq, lat=55.0)
        assert patched.raw["lat"] == 55.0
        assert patched.next_attempt_s == 0.0
        assert any("patched" in entry for entry in patched.history)

    def test_patch_refuses_missing_and_terminal_records(self):
        dlq, _ = self.make()
        record = dlq.push({"a": 1}, "schema", "bad")
        dlq.mark_replayed(record)
        with pytest.raises(ValueError):
            dlq.patch(record.seq, a=2)
        with pytest.raises(KeyError):
            dlq.patch(999, a=2)

    def test_discard_removes_and_counts(self):
        dlq, _ = self.make()
        record = dlq.push({"a": 1}, "schema", "bad")
        assert dlq.discard(record.seq) is True
        assert dlq.discard(record.seq) is False
        assert len(dlq) == 0
        assert dlq.total_discarded == 1

    def test_backoff_schedule_is_exponential(self):
        dlq, _ = self.make(
            retry=RetryPolicy(max_attempts=4, backoff_s=1.0, multiplier=2.0)
        )
        record = dlq.push({"a": 1}, "schema", "bad")
        dlq.mark_failed(record, "still bad", now=10.0)
        assert record.next_attempt_s == pytest.approx(11.0)
        dlq.mark_failed(record, "still bad", now=11.0)
        assert record.next_attempt_s == pytest.approx(13.0)
        dlq.mark_failed(record, "still bad", now=13.0)
        assert record.next_attempt_s == pytest.approx(17.0)
        assert record.state == PENDING

    def test_exhaustion_at_the_attempt_cap_is_terminal(self):
        dlq, _ = self.make(retry=RetryPolicy(max_attempts=2, backoff_s=0.0))
        record = dlq.push({"a": 1}, "schema", "bad")
        dlq.mark_failed(record, "no", now=0.0)
        assert record.state == PENDING
        dlq.mark_failed(record, "no", now=0.0)
        assert record.state == EXHAUSTED
        assert dlq.total_exhausted == 1
        assert record.attempts == 2

    def test_due_honours_backoff_windows(self):
        dlq, _ = self.make(retry=RetryPolicy(max_attempts=5, backoff_s=10.0))
        early = dlq.push({"a": 1}, "schema", "bad")
        late = dlq.push({"b": 2}, "schema", "bad")
        dlq.mark_failed(late, "no", now=0.0)  # due again at 10.0
        assert [r.seq for r in dlq.due(5.0)] == [early.seq]
        assert {r.seq for r in dlq.due(10.0)} == {early.seq, late.seq}

    def test_stats_break_down_state_and_stage(self):
        dlq, _ = self.make(capacity=10)
        dlq.push({"a": 1}, "schema", "bad")
        dlq.push({"b": 2}, "schema", "bad")
        record = dlq.push({"c": 3}, "format", "unknown")
        dlq.mark_replayed(record)
        stats = dlq.stats()
        assert stats["depth"] == 3
        assert stats["by_stage"] == {"format": 1, "schema": 2}
        assert stats["by_state"][PENDING] == 2
        assert stats["by_state"][REPLAYED] == 1
        assert stats["retry"]["max_attempts"] == 3


# -- the gateway pipeline -----------------------------------------------------


class TestGatewayPipeline:
    def test_valid_payload_reaches_the_sink(self):
        gateway, engine, sink, _ = make_gateway()
        assert gateway.submit(payload()) == ADMITTED
        assert gateway.pending == 1
        pump(gateway, engine)
        assert len(sink.received) == 1
        datum = sink.received[0]
        assert datum.attributes["device"] == "d1"
        assert datum.payload["lat"] == 55.676
        assert (gateway.accepted, gateway.rejected, gateway.shed) == (1, 0, 0)

    def test_auto_tracking_creates_engine_lanes(self):
        gateway, engine, _, _ = make_gateway()
        assert not engine.is_tracked("d7")
        gateway.submit(payload(device="d7"))
        assert engine.is_tracked("d7")

    @pytest.mark.parametrize(
        "bad, stage",
        [
            ("not a mapping", "format"),
            ({"source_format": "nope_v9"}, "format"),
            ({"device_id": "d1"}, "format"),  # no source_format at all
            (payload(lat=123.0), "schema"),
            (payload(t="garbage"), "schema"),
        ],
    )
    def test_rejections_name_their_stage(self, bad, stage):
        gateway, _, _, _ = make_gateway()
        assert gateway.submit(bad) == REJECTED
        record = gateway.dlq.records()[-1]
        assert record.stage == stage
        assert record.reason
        assert stage in STAGES

    def test_empty_device_id_rejected_at_policy_stage(self):
        # "" passes the string schema check but names no device.
        gateway, _, _, _ = make_gateway()
        assert gateway.submit(payload(device="")) == REJECTED
        assert gateway.dlq.records()[-1].stage == "policy"

    def test_non_mapping_payload_is_recoverable_from_the_dlq(self):
        gateway, _, _, _ = make_gateway()
        gateway.submit([1, 2, 3])
        assert gateway.dlq.records()[-1].raw == {"payload": [1, 2, 3]}

    def test_freshness_window_rejects_stale_and_future(self):
        gateway, _, _, clock = make_gateway(max_age_s=60.0, max_future_s=5.0)
        clock.now = 1000.0
        assert gateway.submit(payload(t=1000.0)) == ADMITTED
        assert gateway.submit(payload(t=900.0)) == REJECTED
        assert gateway.submit(payload(t=1010.0)) == REJECTED
        stages = [r.stage for r in gateway.dlq.records()]
        assert stages == ["freshness", "freshness"]

    def test_closed_world_policy_admits_only_pretracked_devices(self):
        gateway, engine, sink, _ = make_gateway(device_policy=ClosedWorldPolicy())
        engine.track("known", "src")
        assert gateway.submit(payload(device="known")) == ADMITTED
        assert gateway.submit(payload(device="stranger")) == REJECTED
        record = gateway.dlq.records()[-1]
        assert record.stage == "policy"
        assert "ClosedWorldPolicy" in record.reason

    def test_auto_track_policy_caps_device_count(self):
        gateway, engine, _, _ = make_gateway(
            device_policy=AutoTrackPolicy(max_devices=2)
        )
        assert gateway.submit(payload(device="a")) == ADMITTED
        assert gateway.submit(payload(device="b")) == ADMITTED
        assert gateway.submit(payload(device="c")) == REJECTED
        # Known devices keep flowing under the cap.
        assert gateway.submit(payload(device="a")) == ADMITTED
        assert not engine.is_tracked("c")

    def test_set_device_policy_swaps_the_seam(self):
        gateway, _, _, _ = make_gateway(device_policy=ClosedWorldPolicy())
        assert gateway.submit(payload(device="x")) == REJECTED
        previous = gateway.set_device_policy(AutoTrackPolicy())
        assert isinstance(previous, ClosedWorldPolicy)
        assert gateway.submit(payload(device="x")) == ADMITTED

    def test_policy_exception_contained_as_internal(self):
        class Broken(ClosedWorldPolicy):
            def admit(self, device_id, payload, tracked):
                raise RuntimeError("policy exploded")

        gateway, _, _, _ = make_gateway(device_policy=Broken())
        assert gateway.submit(payload()) == REJECTED
        record = gateway.dlq.records()[-1]
        assert record.stage == "internal"
        assert "policy exploded" in record.reason

    def test_block_admission_sheds_the_incoming_payload(self):
        gateway, _, _, _ = make_gateway(admission_capacity=2)
        assert gateway.submit(payload(t=1.0)) == ADMITTED
        assert gateway.submit(payload(t=2.0)) == ADMITTED
        assert gateway.submit(payload(t=3.0)) == SHED
        assert gateway.pending == 2
        record = gateway.dlq.records()[-1]
        assert record.stage == "admission"
        assert record.raw["timestamp"] == 3.0

    def test_drop_oldest_admission_sheds_the_evicted_payload(self):
        gateway, engine, sink, _ = make_gateway(
            admission_capacity=2, admission_policy="drop_oldest"
        )
        gateway.submit(payload(t=1.0))
        gateway.submit(payload(t=2.0))
        assert gateway.submit(payload(t=3.0)) == ADMITTED
        assert gateway.shed == 1
        record = gateway.dlq.records()[-1]
        assert record.stage == "admission"
        assert record.raw["timestamp"] == 1.0  # the evicted one, not the new
        pump(gateway, engine)
        assert sorted(d.payload["timestamp"] for d in sink.received) == [2.0, 3.0]

    def test_coalesce_admission_policy_refused(self):
        graph, _ = build_graph()
        engine = PositioningEngine(graph)
        with pytest.raises(GatewayError):
            IngestionGateway(engine, "src", admission_policy="coalesce")

    def test_submit_raises_only_when_closed(self):
        gateway, _, _, _ = make_gateway()
        gateway.close()
        with pytest.raises(GatewayError):
            gateway.submit(payload())

    def test_submit_many_counts_verdicts(self):
        gateway, _, _, _ = make_gateway(admission_capacity=2)
        counts = gateway.submit_many(
            [payload(t=1.0), payload(lat=999.0), payload(t=2.0), payload(t=3.0)]
        )
        assert counts == {ADMITTED: 2, REJECTED: 1, SHED: 1, RATE_LIMITED: 0}

    def test_engine_error_on_forward_dead_letters_as_ingest(self):
        gateway, engine, _, _ = make_gateway()
        gateway.submit(payload())

        def boom(target_id, datum):
            raise RuntimeError("engine on fire")

        engine.submit = boom
        assert gateway.forward() == 1
        assert gateway.rejected == 1
        record = gateway.dlq.records()[-1]
        assert record.stage == "ingest"
        assert "engine on fire" in record.reason
        # The dead letter is the raw wire payload, replayable as-is.
        assert record.raw["source_format"] == "phone_tracker_v1"

    def test_lane_backpressure_on_forward_counts_as_shed(self):
        gateway, engine, _, _ = make_gateway(
            device_policy=AutoTrackPolicy(capacity=1, policy="block")
        )
        gateway.submit(payload(t=1.0))
        gateway.submit(payload(t=2.0))
        gateway.forward()
        assert (gateway.accepted, gateway.shed) == (1, 1)
        record = gateway.dlq.records()[-1]
        assert record.stage == "ingest"
        assert "rejected" in record.reason

    def test_register_format_with_crosswalk(self):
        gateway, engine, sink, _ = make_gateway()
        legacy = WireFormat(
            "legacy_gps_v1",
            (
                FieldSpec("device_id", "str", required=True),
                FieldSpec("timestamp", "timestamp", required=True),
                FieldSpec("lat", "float", required=True),
                FieldSpec("lon", "float", required=True),
            ),
        )
        gateway.register_format(
            legacy,
            crosswalk=Crosswalk(
                [
                    FieldMap("latitude", "lat"),
                    FieldMap("longitude", "lon"),
                ]
            ),
        )
        raw = {
            "source_format": "legacy_gps_v1",
            "device_id": "old1",
            "timestamp": 1000.0,
            "latitude": 1.0,
            "longitude": 2.0,
        }
        assert gateway.submit(raw) == ADMITTED
        pump(gateway, engine)
        assert sink.received[0].payload["lat"] == 1.0
        assert "latitude" not in sink.received[0].payload

    def test_adapter_lookup_raises_for_unknown_format(self):
        gateway, _, _, _ = make_gateway()
        with pytest.raises(GatewayError):
            gateway.adapter("nope_v1")

    def test_accounting_invariant_over_mixed_traffic(self):
        gateway, engine, _, _ = make_gateway(admission_capacity=3)
        for i in range(3):
            gateway.submit(payload(t=float(i)))
        gateway.submit(payload(lat=999.0))  # rejected
        gateway.submit(payload(t=99.0))  # shed (admission full)
        gateway.forward(max_items=2)
        assert gateway.submitted == 5
        assert gateway.submitted == (
            gateway.accepted + gateway.rejected + gateway.shed + gateway.pending
        )

    def test_snapshot_surfaces_everything(self):
        gateway, engine, _, _ = make_gateway(max_age_s=60.0)
        gateway.submit(payload())
        gateway.submit(payload(lat=999.0))
        pump(gateway, engine)
        snap = gateway.snapshot()
        assert snap["formats"] == ["phone_tracker_v1"]
        assert snap["submitted"] == 2
        assert snap["accepted"] == 1
        assert snap["rejected"] == 1
        assert snap["devices"] == 1
        assert snap["adapters"]["phone_tracker_v1"]["accepted"] == 1
        assert snap["dlq"]["by_stage"] == {"schema": 1}
        assert snap["freshness"]["max_age_s"] == 60.0
        assert snap["device_policy"]["policy"] == "AutoTrackPolicy"


class TestGatewayReplay:
    def make(self, **kwargs):
        kwargs.setdefault(
            "retry", RetryPolicy(max_attempts=3, backoff_s=10.0, multiplier=2.0)
        )
        return make_gateway(**kwargs)

    def test_patch_then_replay_recovers_the_payload(self):
        gateway, engine, sink, _ = self.make()
        gateway.submit(payload(lat=999.0))
        record = gateway.dlq.records()[0]
        gateway.dlq.patch(record.seq, lat=55.0)
        outcome = gateway.replay()
        assert outcome == {
            "attempted": 1,
            "replayed": 1,
            "failed": 0,
            "exhausted": 0,
        }
        assert record.state == REPLAYED
        engine.drain_all()
        assert sink.received[0].payload["lat"] == 55.0
        # Replays never touch the clean-path counters.
        assert gateway.accepted == 0
        assert gateway.dlq.total_replayed == 1

    def test_crosswalk_fix_then_replay_full_loop(self):
        # The headline loop: payloads with vendor field names dead-letter
        # at the schema stage, installing a crosswalk *is* the fix.
        gateway, engine, sink, _ = self.make()
        raws = []
        for i in range(5):
            raw = payload(device=f"d{i}", t=1000.0 + i)
            raw["latitude"] = raw.pop("lat")
            raw["longitude"] = raw.pop("lon")
            raws.append(raw)
            assert gateway.submit(raw) == REJECTED
        assert [r.stage for r in gateway.dlq.records()] == ["schema"] * 5
        gateway.adapter("phone_tracker_v1").set_crosswalk(
            Crosswalk(
                [
                    FieldMap("latitude", "lat"),
                    FieldMap("longitude", "lon"),
                ]
            )
        )
        outcome = gateway.replay()
        assert outcome["replayed"] == 5
        engine.drain_all()
        assert len(sink.received) == 5
        assert all("latitude" not in d.payload for d in sink.received)
        assert {d.attributes["device"] for d in sink.received} == {
            f"d{i}" for i in range(5)
        }

    def test_failed_replay_backs_off_on_the_injected_clock(self):
        gateway, engine, _, clock = self.make()
        gateway.submit(payload(lat=999.0))  # unfixed: every replay fails
        record = gateway.dlq.records()[0]
        assert gateway.replay()["failed"] == 1
        assert record.attempts == 1
        assert record.next_attempt_s == pytest.approx(clock.now + 10.0)
        # Within the backoff window nothing is due.
        assert gateway.replay() == {
            "attempted": 0,
            "replayed": 0,
            "failed": 0,
            "exhausted": 0,
        }
        clock.advance(10.0)
        assert gateway.replay()["failed"] == 1
        assert record.next_attempt_s == pytest.approx(clock.now + 20.0)
        clock.advance(20.0)
        assert gateway.replay()["exhausted"] == 1
        assert record.state == EXHAUSTED
        # Terminal: never due again, explicit replay refuses it.
        clock.advance(1000.0)
        assert gateway.replay()["attempted"] == 0
        with pytest.raises(GatewayError):
            gateway.replay(record.seq)

    def test_explicit_seq_replay_and_ignore_backoff(self):
        gateway, _, _, clock = self.make()
        gateway.submit(payload(lat=999.0))
        record = gateway.dlq.records()[0]
        gateway.replay()  # fails, backs off
        # Backoff window respected without the override...
        assert gateway.replay(record.seq)["attempted"] == 0
        # ...and bypassed with it.
        assert gateway.replay(record.seq, ignore_backoff=True)["attempted"] == 1
        with pytest.raises(GatewayError):
            gateway.replay(999)

    def test_replayed_payload_fixed_by_patch_skips_admission_queue(self):
        gateway, engine, sink, _ = self.make(admission_capacity=1)
        gateway.submit(payload(lat=999.0, t=1.0))
        gateway.submit(payload(t=2.0))  # fills the admission queue
        record = gateway.dlq.records()[0]
        gateway.dlq.patch(record.seq, lat=0.0)
        assert gateway.replay()["replayed"] == 1  # despite the full queue
        assert gateway.pending == 1


# -- middleware / PSL / report / hub integration ------------------------------


def build_middleware():
    middleware = PerPos()
    middleware.graph.add(SourceComponent("src", (POS,)))
    middleware.graph.add(ApplicationSink("sink", (POS,), keep_last=100_000))
    middleware.graph.connect("src", "sink", "in")
    return middleware


class TestMiddlewareIntegration:
    def test_enable_gateway_requires_a_runtime(self):
        middleware = build_middleware()
        with pytest.raises(ValueError):
            middleware.enable_gateway("src")

    def test_enable_gateway_wires_clock_engine_and_registry(self):
        middleware = build_middleware()
        engine = middleware.enable_runtime()
        gateway = middleware.enable_gateway("src", max_age_s=60.0)
        assert middleware.gateway is gateway
        assert gateway.engine is engine
        assert (
            middleware.framework.registry.find_service("perpos.IngestionGateway")
            is gateway
        )
        # Freshness runs against the middleware's simulation clock.
        middleware.clock.advance(1000.0)
        assert gateway.submit(payload(t=990.0)) == ADMITTED
        assert gateway.submit(payload(t=10.0)) == REJECTED

    def test_re_enabling_replaces_and_closes_the_previous_gateway(self):
        middleware = build_middleware()
        middleware.enable_runtime()
        first = middleware.enable_gateway("src")
        second = middleware.enable_gateway("src")
        assert first.closed and not second.closed
        assert middleware.gateway is second
        assert (
            middleware.framework.registry.find_service("perpos.IngestionGateway")
            is second
        )

    def test_disable_gateway_closes_but_stays_inspectable(self):
        middleware = build_middleware()
        middleware.enable_runtime()
        gateway = middleware.enable_gateway("src")
        gateway.submit(payload(lat=999.0))
        previous = middleware.disable_gateway()
        assert previous is gateway and gateway.closed
        assert middleware.gateway is None
        assert len(gateway.dlq) == 1  # post-mortem inspection
        assert (
            middleware.framework.registry.find_service("perpos.IngestionGateway")
            is None
        )
        assert middleware.disable_gateway() is None

    def test_gateway_feeds_the_sharded_coordinator_when_enabled(self):
        def recipe():
            graph = ProcessingGraph()
            graph.add(SourceComponent("src", (POS,)))
            graph.add(ApplicationSink("app", (POS,), keep_last=100_000))
            graph.connect("src", "app", "in")
            return graph

        middleware = PerPos()
        sharding = middleware.enable_sharding(recipe, 2)
        gateway = middleware.enable_gateway("src")
        assert gateway.engine is sharding
        for i in range(6):
            assert gateway.submit(payload(device=f"d{i}")) == ADMITTED
        gateway.forward()
        sharding.drain_all()
        assert gateway.accepted == 6
        rows = sharding.sink_outputs()
        assert len(rows) == 6
        middleware.disable_gateway()
        middleware.disable_sharding()

    def test_hub_counters_and_dlq_gauges(self):
        middleware = build_middleware()
        engine = middleware.enable_runtime()
        hub = middleware.enable_observability()
        gateway = middleware.enable_gateway("src")
        gateway.submit(payload())
        gateway.submit(payload(lat=999.0))
        gateway.forward()
        engine.drain_all()
        registry = hub.registry
        assert (
            registry.counter("gateway_accepted", adapter="phone_tracker_v1").value
            == 1
        )
        assert (
            registry.counter("gateway_rejected", adapter="phone_tracker_v1").value
            == 1
        )
        assert registry.gauge("dlq_depth").value == 1
        record = gateway.dlq.records()[0]
        gateway.dlq.patch(record.seq, lat=0.0)
        gateway.replay()
        assert (
            registry.counter("gateway_replayed", adapter="phone_tracker_v1").value
            == 1
        )
        assert registry.gauge("dlq_replayed").value == 1

    def test_gateway_follows_the_hub_across_toggles(self):
        # The lazy hub seam: observability enabled *after* the gateway.
        middleware = build_middleware()
        middleware.enable_runtime()
        gateway = middleware.enable_gateway("src")
        gateway.submit(payload(lat=999.0))  # no hub yet: silently unmetered
        hub = middleware.enable_observability()
        gateway.submit(payload(lat=999.0))
        assert (
            hub.registry.counter(
                "gateway_rejected", adapter="phone_tracker_v1"
            ).value
            == 1
        )

    def test_shed_counter_labels_the_adapter(self):
        middleware = build_middleware()
        middleware.enable_runtime()
        hub = middleware.enable_observability()
        gateway = middleware.enable_gateway("src", admission_capacity=1)
        gateway.submit(payload(t=1.0))
        gateway.submit(payload(t=2.0))
        assert (
            hub.registry.counter("gateway_shed", adapter="phone_tracker_v1").value
            == 1
        )


class TestPSLSurface:
    def make(self):
        middleware = build_middleware()
        engine = middleware.enable_runtime()
        gateway = middleware.enable_gateway("src")
        return middleware, engine, gateway

    def test_describe_includes_gateway_on_its_source(self):
        middleware, _, gateway = self.make()
        gateway.submit(payload())
        info = middleware.psl.describe("src")
        assert info["gateway"]["submitted"] == 1
        assert "gateway" not in middleware.psl.describe("sink")

    def test_gateway_inspection_degrades_gracefully(self):
        middleware = build_middleware()
        assert middleware.psl.gateway() == {}
        assert middleware.psl.dead_letters() == []

    def test_replay_without_gateway_raises(self):
        middleware = build_middleware()
        with pytest.raises(GraphError):
            middleware.psl.replay_dead_letters()

    def test_dead_letters_and_replay_through_the_psl(self):
        middleware, engine, gateway = self.make()
        gateway.submit(payload(lat=999.0))
        letters = middleware.psl.dead_letters()
        assert len(letters) == 1
        assert letters[0]["stage"] == "schema"
        gateway.dlq.patch(letters[0]["seq"], lat=12.0)
        outcome = middleware.psl.replay_dead_letters()
        assert outcome["replayed"] == 1
        assert middleware.psl.dead_letters(state=PENDING) == []
        assert middleware.psl.gateway()["dlq"]["total_replayed"] == 1


class TestReportSurface:
    def test_snapshot_and_render_without_gateway(self):
        middleware = build_middleware()
        assert infrastructure_snapshot(middleware)["gateway"] is None
        assert "(no ingestion gateway)" in render_report(middleware)

    def test_render_shows_counters_and_stage_breakdown(self):
        middleware = build_middleware()
        engine = middleware.enable_runtime()
        gateway = middleware.enable_gateway("src")
        gateway.submit(payload())
        gateway.submit(payload(lat=999.0))
        gateway.submit({"source_format": "nope_v1"})
        gateway.forward()
        engine.drain_all()
        text = render_report(middleware)
        assert "gateway:" in text
        assert (
            "submitted=3, accepted=1, rejected=2, shed=0, rate_limited=0,"
            " pending=0" in text
        )
        assert "schema: 1" in text
        assert "format: 1" in text
        snap = infrastructure_snapshot(middleware)
        assert snap["gateway"]["submitted"] == 3


# -- the acceptance storm -----------------------------------------------------


class TestGatewayStorm:
    def _storm_payloads(self, rng, count=10_000):
        """A deterministic hostile mix: valid / malformed / unknown /
        stale / burst traffic, tagged with the expected failure class."""
        payloads = []
        for i in range(count):
            roll = rng.random()
            device = f"d{rng.randrange(20)}"
            t = 1000.0 + (i % 50)
            if roll < 0.55:
                payloads.append(payload(device=device, t=t))
            elif roll < 0.65:
                # Fixable vendor rename -- dead-letters at schema.
                raw = payload(device=device, t=t)
                raw["latitude"] = raw.pop("lat")
                payloads.append(raw)
            elif roll < 0.75:
                bad = rng.choice(
                    [
                        payload(device=device, t=t, lat=200.0),
                        payload(device=device, t=t, lon="east"),
                        payload(device=device, t="not a time"),
                        {"source_format": "mystery_v7", "device_id": device},
                        "not even a mapping",
                        None,
                        41.5,
                    ]
                )
                payloads.append(bad)
            elif roll < 0.85:
                # Unknown device beyond the auto-track cap.
                payloads.append(payload(device=f"stranger{i}", t=t))
            else:
                payloads.append(payload(device=device, t=-5000.0))  # stale
        return payloads

    def test_10k_storm_drains_with_exact_accounting(self):
        clock = FakeClock(1000.0)
        gateway, engine, sink, _ = make_gateway(
            clock=clock,
            device_policy=AutoTrackPolicy(capacity=512, max_devices=20),
            admission_capacity=128,
            admission_policy="block",
            dlq_capacity=512,
            max_age_s=3600.0,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        rng = random.Random(42)
        payloads = self._storm_payloads(rng)
        for i, raw in enumerate(payloads):
            gateway.submit(raw)
            if i % 97 == 0:  # irregular cadence: bursts hit the boundary
                gateway.forward()
                engine.drain_all()
        gateway.forward()
        engine.drain_all()
        # Exact accounting: every submission lands in one bucket.
        assert gateway.submitted == len(payloads) == 10_000
        assert gateway.pending == 0
        assert gateway.submitted == (
            gateway.accepted + gateway.rejected + gateway.shed + gateway.pending
        )
        # Every class of traffic actually exercised its path.
        assert gateway.accepted > 4000
        assert gateway.rejected > 1000
        assert len(sink.received) == gateway.accepted
        by_stage = gateway.dlq.stats()["by_stage"]
        for stage in ("format", "schema", "freshness", "policy"):
            assert by_stage.get(stage, 0) > 0, stage
        # Every retained dead letter is inspectable: stage + reason.
        for record in gateway.dlq.records():
            assert record.stage in STAGES
            assert record.reason
        # The DLQ ring stayed bounded under rejection pressure.
        assert len(gateway.dlq) <= 512
        assert gateway.dlq.stats()["evicted"] > 0

    def test_storm_replay_after_fix_recovers_fixable_dead_letters(self):
        clock = FakeClock(1000.0)
        gateway, engine, sink, _ = make_gateway(
            clock=clock,
            device_policy=AutoTrackPolicy(capacity=4096),
            admission_capacity=4096,
            dlq_capacity=4096,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        rng = random.Random(7)
        fixable = 0
        for i in range(2000):
            raw = payload(device=f"d{rng.randrange(10)}", t=1000.0 + i)
            if rng.random() < 0.3:
                raw["latitude"] = raw.pop("lat")
                raw["longitude"] = raw.pop("lon")
                fixable += 1
            gateway.submit(raw)
        pump(gateway, engine)
        assert gateway.rejected == fixable
        assert len(gateway.dlq.pending()) == fixable
        # The fix: one crosswalk on the shared adapter.
        gateway.adapter("phone_tracker_v1").set_crosswalk(
            Crosswalk(
                [FieldMap("latitude", "lat"), FieldMap("longitude", "lon")]
            )
        )
        outcome = gateway.replay()
        engine.drain_all()
        # ISSUE acceptance: >= 95% of fixable dead letters recover (here
        # the fix is complete, so all of them do).
        assert outcome["replayed"] >= 0.95 * fixable
        assert outcome["replayed"] == fixable
        assert len(sink.received) == 2000
        # Post-replay the sink holds exactly the clean-run stream.
        times = sorted(d.payload["timestamp"] for d in sink.received)
        assert times == [1000.0 + i for i in range(2000)]

    @pytest.mark.chaos
    def test_corruption_storm_is_contained_and_deterministic(self):
        def run(seed):
            clock = FakeClock(10_000.0)
            gateway, engine, sink, _ = make_gateway(
                clock=clock,
                device_policy=AutoTrackPolicy(capacity=4096),
                admission_capacity=4096,
                dlq_capacity=4096,
                max_age_s=3600.0,
                max_future_s=3600.0,
            )
            chaos = FaultInjectionFeature(
                corrupt_rate=0.35, timestamp_skew_s=100_000.0, seed=seed
            )
            for i in range(3000):
                raw = payload(device=f"d{i % 8}", t=10_000.0 - (i % 100))
                gateway.submit(chaos.maybe_corrupt(raw))
            pump(gateway, engine)
            assert gateway.pending == 0
            assert gateway.submitted == 3000
            assert gateway.submitted == (
                gateway.accepted + gateway.rejected + gateway.shed
            )
            assert chaos.injected_corruptions > 500
            # Corruption produced real rejections, but most traffic
            # survived (drops of optional fields stay schema-valid).
            assert 0 < gateway.rejected < 3000
            assert len(sink.received) == gateway.accepted
            return (
                gateway.accepted,
                gateway.rejected,
                gateway.shed,
                gateway.dlq.stats()["by_stage"],
                chaos.injected_corruptions,
            )

        # Same seed, same storm: chaos runs replay identically.
        assert run(99) == run(99)
        # A different seed corrupts differently.
        assert run(99) != run(100)
