"""Unit tests for the runtime observability layer.

Covers the metric instruments (counters/gauges/histograms, clock
injection, reset), flow-trace propagation across a three-component
pipeline, the disabled-by-default no-op path, and the feature-mechanism
entry points (TracingFeature / ChannelTracingFeature).
"""

import pytest

from repro.clock import SimulationClock
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.features import ComponentFeature
from repro.core.graph import ProcessingGraph
from repro.core.middleware import PerPos
from repro.core.pcl import ProcessChannelLayer
from repro.observability import (
    ChannelTracingFeature,
    FlowTrace,
    MetricsRegistry,
    NullMetricsRegistry,
    ObservabilityHub,
    TraceHop,
    TracingFeature,
    metrics as metrics_module,
    trace_of,
    with_trace,
)
from repro.observability.metrics import (
    NULL_REGISTRY,
    default_registry,
    set_default_registry,
)


def build_chain(n_stages=2):
    """src -> stage1 -> ... -> stageN -> app."""
    graph = ProcessingGraph()
    source = SourceComponent("src", ("x",))
    graph.add(source)
    previous = "src"
    for i in range(1, n_stages + 1):
        stage = FunctionComponent(
            f"stage{i}", ("x",), ("x",), fn=lambda d: d
        )
        graph.add(stage)
        graph.connect(previous, stage.name)
        previous = stage.name
    sink = ApplicationSink("app", ("x",))
    graph.add(sink)
    graph.connect(previous, "app")
    return graph, source, sink


class TestCounter:
    def test_inc_and_reset(self):
        registry = MetricsRegistry()
        counter = registry.counter("events", component="a")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        registry.reset()
        assert counter.value == 0

    def test_label_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("events", component="a")
        b = registry.counter("events", component="b")
        unlabelled = registry.counter("events")
        a.inc()
        assert b.value == 0
        assert unlabelled.value == 0
        # Same (name, labels) -> same instrument.
        assert registry.counter("events", component="a") is a


class TestGauge:
    def test_set_add_reset(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.add(-1)
        assert gauge.value == 2
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_summary_statistics(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.001
        assert summary["max"] == 0.003
        assert summary["mean"] == pytest.approx(0.002)

    def test_quantile_returns_bucket_bound(self):
        histogram = MetricsRegistry().histogram("latency")
        for _ in range(99):
            histogram.observe(0.0005)  # <= 1e-3 bucket
        histogram.observe(5.0)  # <= 10.0 bucket
        assert histogram.quantile(0.5) == 1e-3
        assert histogram.quantile(1.0) == 10.0

    def test_reset(self):
        histogram = MetricsRegistry().histogram("latency")
        histogram.observe(1.0)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.min is None
        assert histogram.mean == 0.0

    def test_quantile_validates_range(self):
        histogram = MetricsRegistry().histogram("latency")
        with pytest.raises(ValueError):
            histogram.quantile(0.0)


class TestClockInjection:
    def test_timer_uses_injected_clock(self):
        clock = SimulationClock()
        registry = MetricsRegistry(time_fn=lambda: clock.now)
        with registry.timer("step"):
            clock.advance(2.5)
        summary = registry.histogram("step").summary()
        assert summary["count"] == 1
        assert summary["sum"] == pytest.approx(2.5)

    def test_hub_hop_timestamps_follow_simulation_clock(self):
        clock = SimulationClock(start=100.0)
        graph, source, sink = build_chain()
        graph.set_instrumentation(
            ObservabilityHub(time_fn=lambda: clock.now)
        )
        source.inject(Datum("x", 1, clock.now))
        trace = trace_of(sink.last())
        assert [hop.timestamp for hop in trace] == [100.0, 100.0, 100.0]


class TestSnapshotAndReset:
    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("items", component="a").inc()
        registry.gauge("size").set(7)
        registry.histogram("lat", component="a").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"items{component=a}": 1}
        assert snapshot["gauges"] == {"size": 7.0}
        assert snapshot["histograms"]["lat{component=a}"]["count"] == 1

    def test_reset_keeps_series_clear_drops_them(self):
        registry = MetricsRegistry()
        registry.counter("items").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {"items": 0}
        registry.clear()
        assert len(registry) == 0


class TestNullRegistry:
    def test_all_instruments_are_noops(self):
        registry = NullMetricsRegistry()
        registry.counter("a", component="x").inc(10)
        registry.gauge("b").set(5)
        registry.histogram("c").observe(1.0)
        with registry.timer("d"):
            pass
        assert registry.counter("a", component="x").value == 0
        assert registry.gauge("b").value == 0.0
        assert registry.histogram("c").count == 0
        assert list(registry.series()) == []
        assert not registry.enabled

    def test_shared_instruments(self):
        registry = NullMetricsRegistry()
        assert registry.counter("a") is registry.counter("b")


class TestDefaultRegistryGlobalState:
    def test_default_is_null(self):
        assert default_registry() is NULL_REGISTRY

    def test_swap_and_restore(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert default_registry() is mine
        finally:
            set_default_registry(previous)
        assert default_registry() is NULL_REGISTRY

    def test_state_token_detects_recordings(self):
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            before = metrics_module.global_state_token()
            default_registry().counter("leak").inc()
            assert metrics_module.global_state_token() != before
            mine.clear()
            assert metrics_module.global_state_token() == before
        finally:
            set_default_registry(previous)

    @pytest.mark.mutates_observability
    def test_guard_restores_marked_leaks(self):
        # Deliberately leak: the conftest guard must restore silently
        # (this test would otherwise poison the suite).
        set_default_registry(MetricsRegistry())
        default_registry().counter("leak").inc()


class TestFlowTrace:
    def test_extended_is_immutable(self):
        trace = FlowTrace((TraceHop("a", 0.0),))
        longer = trace.extended(TraceHop("b", 1.0))
        assert trace.path == ["a"]
        assert longer.path == ["a", "b"]
        assert longer.duration == 1.0

    def test_render_and_describe(self):
        trace = FlowTrace(
            (TraceHop("a", 0.0, "x"), TraceHop("b", 1.5, "x"))
        )
        assert trace.render() == "a[t=0] -> b[t=1.5]"
        assert trace.describe()[1] == {
            "component": "b",
            "timestamp": 1.5,
            "kind": "x",
        }

    def test_trace_of_untraced_datum(self):
        assert trace_of(Datum("x", 1, 0.0)) is None
        assert trace_of(None) is None

    def test_with_trace_round_trip(self):
        trace = FlowTrace((TraceHop("a", 0.0),))
        datum = with_trace(Datum("x", 1, 0.0), trace)
        assert trace_of(datum) is trace


class TestTracePropagation:
    def test_three_component_pipeline_path(self):
        graph, source, sink = build_chain(n_stages=2)
        graph.set_instrumentation(ObservabilityHub(time_fn=lambda: 1.0))
        source.inject(Datum("x", 1, 0.0))
        trace = trace_of(sink.last())
        assert trace.path == ["src", "stage1", "stage2"]

    def test_each_datum_gets_its_own_trace(self):
        graph, source, sink = build_chain(n_stages=1)
        graph.set_instrumentation(ObservabilityHub(time_fn=lambda: 0.0))
        source.inject(Datum("x", 1, 0.0))
        source.inject(Datum("x", 2, 1.0))
        first, second = sink.received
        assert trace_of(first).path == ["src", "stage1"]
        assert trace_of(second).path == ["src", "stage1"]
        assert trace_of(first) is not trace_of(second)

    def test_merge_trace_follows_triggering_strand(self):
        graph = ProcessingGraph()
        left = SourceComponent("left", ("x",))
        right = SourceComponent("right", ("x",))
        merge = FunctionComponent("merge", ("x",), ("x",), fn=lambda d: d)
        sink = ApplicationSink("app", ("x",))
        for c in (left, right, merge, sink):
            graph.add(c)
        graph.connect("left", "merge")
        graph.connect("right", "merge")
        graph.connect("merge", "app")
        graph.set_instrumentation(ObservabilityHub(time_fn=lambda: 0.0))
        left.inject(Datum("x", 1, 0.0))
        right.inject(Datum("x", 2, 1.0))
        first, second = sink.received
        assert trace_of(first).path == ["left", "merge"]
        assert trace_of(second).path == ["right", "merge"]

    def test_spontaneous_production_starts_fresh_trace(self):
        # Data produced outside any delivery (e.g. from a clock callback)
        # traces from the producing component, not a stale context.
        graph, source, sink = build_chain(n_stages=1)
        graph.set_instrumentation(ObservabilityHub(time_fn=lambda: 0.0))
        stage = graph.component("stage1")
        stage.produce(Datum("x", 99, 5.0))
        assert trace_of(sink.last()).path == ["stage1"]


class TestHubMetrics:
    def test_items_in_out_and_latency(self):
        graph, source, sink = build_chain(n_stages=2)
        hub = ObservabilityHub(time_fn=lambda: 0.0)
        graph.set_instrumentation(hub)
        for i in range(5):
            source.inject(Datum("x", i, float(i)))
        stats = hub.component_stats("stage1")
        assert stats["items_in"] == 5
        assert stats["items_out"] == 5
        assert stats["latency"]["count"] == 5
        assert hub.component_stats("src")["items_out"] == 5
        assert hub.component_stats("app")["items_in"] == 5

    def test_error_counting_and_reraise(self):
        graph = ProcessingGraph()
        source = SourceComponent("src", ("x",))

        def boom(datum):
            raise RuntimeError("kaput")

        graph.add(source)
        graph.add(FunctionComponent("bad", ("x",), ("x",), fn=boom))
        graph.connect("src", "bad")
        hub = ObservabilityHub(time_fn=lambda: 0.0)
        graph.set_instrumentation(hub)
        with pytest.raises(RuntimeError):
            source.inject(Datum("x", 1, 0.0))
        assert hub.component_stats("bad")["errors"] == 1
        # The failed delivery still recorded a latency sample.
        assert hub.component_stats("bad")["latency"]["count"] == 1

    def test_feature_drop_counting(self):
        class DropAll(ComponentFeature):
            name = "DropAll"

            def consume(self, datum):
                return None

        graph, source, sink = build_chain(n_stages=1)
        graph.component("stage1").attach_feature(DropAll())
        hub = ObservabilityHub(time_fn=lambda: 0.0)
        graph.set_instrumentation(hub)
        source.inject(Datum("x", 1, 0.0))
        stats = hub.component_stats("stage1")
        assert stats["items_dropped"] == 1
        assert stats.get("items_out", 0) == 0
        assert sink.received == []

    def test_topology_gauges(self):
        graph, source, sink = build_chain(n_stages=1)
        hub = ObservabilityHub(time_fn=lambda: 0.0)
        graph.set_instrumentation(hub)
        snapshot = hub.registry.snapshot()
        assert snapshot["gauges"]["graph_components"] == 3
        assert snapshot["gauges"]["graph_connections"] == 2
        graph.add(FunctionComponent("extra", ("x",), ("x",), fn=lambda d: d))
        assert hub.registry.snapshot()["gauges"]["graph_components"] == 4

    def test_hub_reset(self):
        graph, source, sink = build_chain(n_stages=1)
        hub = ObservabilityHub(time_fn=lambda: 0.0)
        graph.set_instrumentation(hub)
        source.inject(Datum("x", 1, 0.0))
        hub.reset()
        assert hub.component_stats("stage1")["items_in"] == 0


class TestDisabledDefault:
    def test_no_hub_means_no_traces_no_metrics(self):
        graph, source, sink = build_chain(n_stages=2)
        assert graph.instrumentation is None
        source.inject(Datum("x", 1, 0.0))
        datum = sink.last()
        assert trace_of(datum) is None
        # Attributes untouched: the envelope is byte-identical behaviour.
        assert dict(datum.attributes) == {}

    def test_middleware_disabled_by_default(self):
        middleware = PerPos()
        assert middleware.observability is None
        assert middleware.trace(None) is None
        assert middleware.psl.component_metrics() == {}

    def test_enable_then_disable(self):
        middleware = PerPos()
        hub = middleware.enable_observability()
        assert middleware.observability is hub
        removed = middleware.disable_observability()
        assert removed is hub
        assert middleware.observability is None

    def test_tracing_can_be_disabled_independently(self):
        graph, source, sink = build_chain(n_stages=1)
        hub = ObservabilityHub(time_fn=lambda: 0.0, tracing=False)
        graph.set_instrumentation(hub)
        source.inject(Datum("x", 1, 0.0))
        assert trace_of(sink.last()) is None
        assert hub.component_stats("stage1")["items_in"] == 1


class TestTracingFeature:
    def test_event_log_and_reflection(self):
        graph, source, sink = build_chain(n_stages=1)
        feature = TracingFeature(registry=MetricsRegistry())
        graph.component("stage1").attach_feature(feature)
        source.inject(Datum("x", 1, 2.0))
        events = feature.events()
        assert [(e[1], e[2]) for e in events] == [("in", "x"), ("out", "x")]
        assert feature.last_event()[1] == "out"
        feature.clear()
        assert feature.events() == []
        # The feature's methods surface through the reflective API.
        assert "Tracing.events" in graph.component("stage1").public_methods()

    def test_records_into_explicit_registry(self):
        registry = MetricsRegistry()
        graph, source, sink = build_chain(n_stages=1)
        graph.component("stage1").attach_feature(
            TracingFeature(registry=registry)
        )
        source.inject(Datum("x", 1, 0.0))
        counters = registry.snapshot()["counters"]
        assert (
            counters["feature_events{component=stage1,direction=in}"] == 1
        )

    def test_defaults_to_global_null_registry(self):
        # With the pristine global default, attaching costs nothing and
        # leaves no global trace -- the conftest guard would fail this
        # test otherwise.
        graph, source, sink = build_chain(n_stages=1)
        graph.component("stage1").attach_feature(TracingFeature())
        source.inject(Datum("x", 1, 0.0))

    def test_bounded_event_log(self):
        graph, source, sink = build_chain(n_stages=1)
        feature = TracingFeature(registry=MetricsRegistry(), keep_last=4)
        graph.component("stage1").attach_feature(feature)
        for i in range(10):
            source.inject(Datum("x", i, float(i)))
        assert len(feature.events()) == 4


class TestChannelTracingFeature:
    def test_collects_paths_behind_outputs(self):
        graph, source, sink = build_chain(n_stages=2)
        graph.set_instrumentation(ObservabilityHub(time_fn=lambda: 0.0))
        pcl = ProcessChannelLayer(graph)
        feature = ChannelTracingFeature()
        pcl.attach_feature("src->app", feature)
        for i in range(3):
            source.inject(Datum("x", i, float(i)))
        assert feature.paths() == [["src", "stage1", "stage2"]]
        assert len(feature.traces()) == 3
        assert feature.last_trace().path == ["src", "stage1", "stage2"]

    def test_no_traces_without_tracing(self):
        graph, source, sink = build_chain(n_stages=1)
        pcl = ProcessChannelLayer(graph)
        feature = ChannelTracingFeature()
        pcl.attach_feature("src->app", feature)
        source.inject(Datum("x", 1, 0.0))
        assert feature.traces() == []
        assert feature.last_trace() is None


class TestLayerQueries:
    def test_channel_stats_and_latest_trace(self):
        graph, source, sink = build_chain(n_stages=1)
        graph.set_instrumentation(ObservabilityHub(time_fn=lambda: 0.0))
        pcl = ProcessChannelLayer(graph)
        source.inject(Datum("x", 1, 0.0))
        stats = pcl.channel_metrics("src->app")
        assert stats["outputs_delivered"] == 1
        assert stats["members"]["stage1"]["items_in"] == 1
        [row] = pcl.flow_summary()
        assert row["latest_path"] == ["src", "stage1"]

    def test_psl_component_metrics_validates_name(self):
        from repro.core.graph import GraphError
        from repro.core.psl import ProcessStructureLayer

        graph, source, sink = build_chain(n_stages=1)
        psl = ProcessStructureLayer(graph)
        graph.set_instrumentation(ObservabilityHub(time_fn=lambda: 0.0))
        source.inject(Datum("x", 1, 0.0))
        assert psl.component_metrics("stage1")["items_in"] == 1
        assert "stage1" in psl.component_metrics()
        with pytest.raises(GraphError):
            psl.component_metrics("nope")
