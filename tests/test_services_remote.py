"""Tests for simulated distribution (hosts, network, proxies)."""

import pytest

from repro.clock import SimulationClock
from repro.services.remote import Host, Network, RemoteProxy


class Calculator:
    """A service with both methods and plain attributes."""

    value = 42

    def add(self, a, b):
        return a + b

    def fail(self):
        raise RuntimeError("remote failure")


def make_pair():
    network = Network()
    mobile = Host("mobile", network)
    server = Host("server", network)
    return network, mobile, server


class TestExportImport:
    def test_remote_call_returns_result(self):
        _network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        assert proxy.add(2, 3) == 5

    def test_import_unknown_service_raises(self):
        _network, mobile, server = make_pair()
        with pytest.raises(LookupError):
            mobile.import_service(server, "nothing")

    def test_imported_service_visible_in_local_registry(self):
        _network, mobile, server = make_pair()
        server.export("calc", Calculator())
        mobile.import_service(server, "calc")
        imported = mobile.framework.registry.get_reference("calc")
        assert imported.property("service.imported") is True
        assert imported.property("remote.host") == "server"

    def test_export_tagged_with_host(self):
        _network, _mobile, server = make_pair()
        server.export("calc", Calculator())
        ref = server.framework.registry.get_reference("calc")
        assert ref.property("remote.host") == "server"


class TestTrafficAccounting:
    def test_each_call_records_request_and_response(self):
        network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        proxy.add(1, 2)
        proxy.add(3, 4)
        assert network.message_count(source="mobile") == 2
        assert network.message_count(source="server") == 2
        assert network.message_count() == 4

    def test_bytes_are_positive_and_direction_filtered(self):
        network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        proxy.add(10, 20)
        assert network.bytes_sent(source="mobile", destination="server") > 0
        assert network.bytes_sent(source="server", destination="mobile") > 0
        assert network.bytes_sent(source="server", destination="ghost") == 0

    def test_call_counts_per_method(self):
        _network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        proxy.add(1, 1)
        proxy.add(2, 2)
        assert proxy.call_counts == {"add": 2}

    def test_messages_timestamped_from_clock(self):
        clock = SimulationClock()
        network = Network(clock=clock)
        mobile = Host("mobile", network)
        server = Host("server", network)
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        clock.advance(12.5)
        proxy.add(1, 1)
        assert all(m.time_s == 12.5 for m in network.messages)

    def test_reset_clears_history(self):
        network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        proxy.add(1, 1)
        network.reset()
        assert network.message_count() == 0


class TestProxySemantics:
    def test_non_callable_attribute_access_raises(self):
        _network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        with pytest.raises(AttributeError):
            _ = proxy.value

    def test_remote_exception_propagates(self):
        network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        with pytest.raises(RuntimeError):
            proxy.fail()
        # The request was sent even though the call failed.
        assert network.message_count(source="mobile") == 1

    def test_missing_method_raises_attribute_error(self):
        _network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        with pytest.raises(AttributeError):
            proxy.no_such_method()
