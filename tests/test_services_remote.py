"""Tests for simulated distribution (hosts, network, proxies)."""

import dataclasses

import pytest

from repro.clock import SimulationClock
from repro.services.remote import Host, Network, RemoteProxy, RetryPolicy


class Calculator:
    """A service with both methods and plain attributes."""

    value = 42

    def add(self, a, b):
        return a + b

    def fail(self):
        raise RuntimeError("remote failure")


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def fetch(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise ConnectionError(f"attempt {self.calls} lost")
        return "payload"


def make_pair():
    network = Network()
    mobile = Host("mobile", network)
    server = Host("server", network)
    return network, mobile, server


class TestExportImport:
    def test_remote_call_returns_result(self):
        _network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        assert proxy.add(2, 3) == 5

    def test_import_unknown_service_raises(self):
        _network, mobile, server = make_pair()
        with pytest.raises(LookupError):
            mobile.import_service(server, "nothing")

    def test_imported_service_visible_in_local_registry(self):
        _network, mobile, server = make_pair()
        server.export("calc", Calculator())
        mobile.import_service(server, "calc")
        imported = mobile.framework.registry.get_reference("calc")
        assert imported.property("service.imported") is True
        assert imported.property("remote.host") == "server"

    def test_export_tagged_with_host(self):
        _network, _mobile, server = make_pair()
        server.export("calc", Calculator())
        ref = server.framework.registry.get_reference("calc")
        assert ref.property("remote.host") == "server"


class TestTrafficAccounting:
    def test_each_call_records_request_and_response(self):
        network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        proxy.add(1, 2)
        proxy.add(3, 4)
        assert network.message_count(source="mobile") == 2
        assert network.message_count(source="server") == 2
        assert network.message_count() == 4

    def test_bytes_are_positive_and_direction_filtered(self):
        network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        proxy.add(10, 20)
        assert network.bytes_sent(source="mobile", destination="server") > 0
        assert network.bytes_sent(source="server", destination="mobile") > 0
        assert network.bytes_sent(source="server", destination="ghost") == 0

    def test_call_counts_per_method(self):
        _network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        proxy.add(1, 1)
        proxy.add(2, 2)
        assert proxy.call_counts == {"add": 2}

    def test_messages_timestamped_from_clock(self):
        clock = SimulationClock()
        network = Network(clock=clock)
        mobile = Host("mobile", network)
        server = Host("server", network)
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        clock.advance(12.5)
        proxy.add(1, 1)
        assert all(m.time_s == 12.5 for m in network.messages)

    def test_reset_clears_history(self):
        network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        proxy.add(1, 1)
        network.reset()
        assert network.message_count() == 0


class TestProxySemantics:
    def test_non_callable_attribute_access_raises(self):
        _network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        with pytest.raises(AttributeError):
            _ = proxy.value

    def test_remote_exception_propagates(self):
        network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        with pytest.raises(RuntimeError):
            proxy.fail()
        # The request was sent even though the call failed.
        assert network.message_count(source="mobile") == 1

    def test_failed_call_records_error_message_and_count(self):
        network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        with pytest.raises(RuntimeError):
            proxy.fail()
        # Request/error form a matched pair on the ledger.
        descriptions = [m.description for m in network.messages]
        assert descriptions == ["calc.fail:request", "calc.fail:error"]
        error = network.messages[-1]
        assert error.source == "server"
        assert error.destination == "mobile"
        assert proxy.failure_counts == {"fail": 1}
        assert proxy.call_counts == {"fail": 1}

    def test_missing_method_raises_attribute_error(self):
        _network, mobile, server = make_pair()
        server.export("calc", Calculator())
        proxy = mobile.import_service(server, "calc")
        with pytest.raises(AttributeError):
            proxy.no_such_method()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def make_pair_with_clock(self):
        clock = SimulationClock()
        network = Network(clock=clock)
        mobile = Host("mobile", network)
        server = Host("server", network)
        return clock, network, mobile, server

    def test_retry_recovers_from_transient_failures(self):
        clock, network, mobile, server = self.make_pair_with_clock()
        service = Flaky(failures=2)
        server.export("flaky", service)
        proxy = mobile.import_service(
            server, "flaky", retry=RetryPolicy(max_attempts=3)
        )
        assert proxy.fetch() == "payload"
        assert service.calls == 3
        assert proxy.call_counts == {"fetch": 3}
        assert proxy.failure_counts == {"fetch": 2}
        # Every attempt is on the ledger: 3 requests, 2 errors, 1 response.
        descriptions = [m.description for m in network.messages]
        assert descriptions.count("flaky.fetch:request") == 3
        assert descriptions.count("flaky.fetch:error") == 2
        assert descriptions.count("flaky.fetch:response") == 1

    def test_backoff_advances_simulated_clock_exponentially(self):
        clock, network, mobile, server = self.make_pair_with_clock()
        server.export("flaky", Flaky(failures=2))
        proxy = mobile.import_service(
            server,
            "flaky",
            retry=RetryPolicy(
                max_attempts=3, backoff_s=0.1, multiplier=2.0
            ),
        )
        proxy.fetch()
        # 0.1 s after the first failure, 0.2 s after the second.
        assert clock.now == pytest.approx(0.3)
        times = [
            m.time_s
            for m in network.messages
            if m.description == "flaky.fetch:request"
        ]
        assert times == [0.0, pytest.approx(0.1), pytest.approx(0.3)]

    def test_attempts_are_bounded_and_last_error_reraises(self):
        clock, network, mobile, server = self.make_pair_with_clock()
        service = Flaky(failures=10)
        server.export("flaky", service)
        proxy = mobile.import_service(
            server, "flaky", retry=RetryPolicy(max_attempts=3)
        )
        with pytest.raises(ConnectionError):
            proxy.fetch()
        assert service.calls == 3
        assert proxy.failure_counts == {"fetch": 3}
        # No backoff after the final attempt.
        assert clock.now == pytest.approx(0.3)

    def test_clockless_network_retries_without_delay(self):
        network, mobile, server = make_pair()
        server.export("flaky", Flaky(failures=1))
        proxy = mobile.import_service(
            server, "flaky", retry=RetryPolicy(max_attempts=2)
        )
        assert proxy.fetch() == "payload"
        assert proxy.failure_counts == {"fetch": 1}

    def test_no_retry_without_policy(self):
        _network, mobile, server = make_pair()
        service = Flaky(failures=1)
        server.export("flaky", service)
        proxy = mobile.import_service(server, "flaky")
        with pytest.raises(ConnectionError):
            proxy.fetch()
        assert service.calls == 1

    def test_zero_attempt_configs_rejected_and_policy_frozen(self):
        # max_attempts counts the first try, so zero (or fewer) attempts
        # would mean "never call at all" -- invalid by construction.
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-3)
        policy = RetryPolicy()
        assert (policy.max_attempts, policy.backoff_s, policy.multiplier) == (
            3,
            0.1,
            2.0,
        )
        # Frozen: a shared policy object cannot be mutated by one caller.
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.max_attempts = 5  # type: ignore[misc]

    def test_single_attempt_policy_never_retries_or_backs_off(self):
        clock, _network, mobile, server = self.make_pair_with_clock()
        service = Flaky(failures=1)
        server.export("flaky", service)
        proxy = mobile.import_service(
            server, "flaky", retry=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(ConnectionError):
            proxy.fetch()
        assert service.calls == 1
        assert clock.now == 0.0

    def test_zero_backoff_retries_without_advancing_clock(self):
        clock, _network, mobile, server = self.make_pair_with_clock()
        server.export("flaky", Flaky(failures=2))
        proxy = mobile.import_service(
            server,
            "flaky",
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        assert proxy.fetch() == "payload"
        assert clock.now == 0.0

    def test_backoff_sequence_with_unit_multiplier_is_linear(self):
        clock, network, mobile, server = self.make_pair_with_clock()
        server.export("flaky", Flaky(failures=3))
        proxy = mobile.import_service(
            server,
            "flaky",
            retry=RetryPolicy(max_attempts=4, backoff_s=0.5, multiplier=1.0),
        )
        assert proxy.fetch() == "payload"
        times = [
            m.time_s
            for m in network.messages
            if m.description == "flaky.fetch:request"
        ]
        assert times == [
            0.0,
            pytest.approx(0.5),
            pytest.approx(1.0),
            pytest.approx(1.5),
        ]
