"""Tests for Component Feature augmentation: added data and state."""

import pytest

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.features import ComponentFeature, FeatureError
from repro.core.graph import ProcessingGraph


class CountingFeature(ComponentFeature):
    """Adds a 'count' datum alongside every produced element and exposes
    the running total as component state."""

    name = "Counting"
    provides = ("count",)

    def __init__(self):
        super().__init__()
        self.total = 0

    def produce(self, d):
        self.total += 1
        self.add_data(Datum("count", self.total, d.timestamp))
        return d

    def get_total(self):
        return self.total

    def reset(self):
        self.total = 0


class RequiresKind(ComponentFeature):
    name = "Needy"
    requires_kinds = ("special",)


def make_graph(sink_accepts=("x",)):
    graph = ProcessingGraph()
    source = SourceComponent("s", ("x",))
    middle = FunctionComponent("m", ("x",), ("x",), fn=lambda d: d)
    sink = ApplicationSink("app", sink_accepts)
    for c in (source, middle, sink):
        graph.add(c)
    graph.connect("s", "m")
    graph.connect("m", "app")
    return graph, source, middle, sink


class TestAddedData:
    def test_added_data_reaches_accepting_port(self):
        _g, source, middle, sink = make_graph(sink_accepts=("x", "count"))
        middle.attach_feature(CountingFeature())
        source.inject(Datum("x", "a", 0.0))
        source.inject(Datum("x", "b", 1.0))
        kinds = [d.kind for d in sink.received]
        assert kinds == ["count", "x", "count", "x"]
        counts = [d.payload for d in sink.received if d.kind == "count"]
        assert counts == [1, 2]

    def test_added_data_dropped_by_non_accepting_port(self):
        """Paper §2.1: generated data only propagates if the next
        component explicitly declares that it accepts it."""
        _g, source, middle, sink = make_graph(sink_accepts=("x",))
        middle.attach_feature(CountingFeature())
        source.inject(Datum("x", "a", 0.0))
        assert [d.kind for d in sink.received] == ["x"]

    def test_added_data_attributed_to_component_and_feature(self):
        _g, source, middle, sink = make_graph(sink_accepts=("x", "count"))
        middle.attach_feature(CountingFeature())
        source.inject(Datum("x", "a", 0.0))
        count = [d for d in sink.received if d.kind == "count"][0]
        assert count.producer == "m#Counting"

    def test_feature_extends_output_capabilities(self):
        _g, _s, middle, _sink = make_graph()
        assert not middle.output_port.can_produce("count")
        middle.attach_feature(CountingFeature())
        assert middle.output_port.can_produce("count")

    def test_detach_removes_capability(self):
        _g, _s, middle, _sink = make_graph()
        middle.attach_feature(CountingFeature())
        middle.detach_feature("Counting")
        assert not middle.output_port.can_produce("count")

    def test_add_data_outside_provides_rejected(self):
        class Rogue(ComponentFeature):
            name = "Rogue"
            provides = ("count",)

            def produce(self, d):
                self.add_data(Datum("undeclared", 1, d.timestamp))
                return d

        _g, source, middle, _sink = make_graph()
        middle.attach_feature(Rogue())
        with pytest.raises(FeatureError):
            source.inject(Datum("x", "a", 0.0))


class TestAttachment:
    def test_requires_kinds_checked_at_attach(self):
        _g, _s, middle, _sink = make_graph()
        with pytest.raises(FeatureError):
            middle.attach_feature(RequiresKind())

    def test_feature_cannot_attach_twice(self):
        _g, _s, middle, _sink = make_graph()
        feature = CountingFeature()
        middle.attach_feature(feature)
        other = FunctionComponent("m2", ("x",), ("x",), fn=lambda d: d)
        with pytest.raises(FeatureError):
            other.attach_feature(feature)

    def test_unattached_feature_has_no_component(self):
        feature = CountingFeature()
        assert not feature.attached
        with pytest.raises(FeatureError):
            _ = feature.component

    def test_lifecycle_hooks_called(self):
        events = []

        class Hooked(ComponentFeature):
            name = "Hooked"

            def on_attached(self):
                events.append("attached")

            def on_detached(self):
                events.append("detached")

        _g, _s, middle, _sink = make_graph()
        middle.attach_feature(Hooked())
        middle.detach_feature("Hooked")
        assert events == ["attached", "detached"]


class TestStateExposure:
    def test_exposed_methods_listed(self):
        feature = CountingFeature()
        assert feature.exposed_methods() == ["get_total", "reset"]

    def test_state_visible_through_component(self):
        _g, source, middle, _sink = make_graph(sink_accepts=("x", "count"))
        middle.attach_feature(CountingFeature())
        source.inject(Datum("x", "a", 0.0))
        feature = middle.get_feature("Counting")
        assert feature.get_total() == 1
        feature.reset()
        assert feature.get_total() == 0

    def test_feature_methods_in_component_method_list(self):
        _g, _s, middle, _sink = make_graph()
        middle.attach_feature(CountingFeature())
        methods = middle.public_methods()
        assert "Counting.get_total" in methods
        assert "Counting.reset" in methods
