"""Tests for supervised dispatch: isolation, quarantine, fault injection.

Covers the :class:`SupervisionPolicy` validation, failure reification
(:class:`FailureRecord`), the three policy modes at the delivery
boundary, the circuit-breaker state machine (sliding window, half-open
probes, manual overrides), reentrant graph mutation from supervision
listeners, the PSL/observability surfaces, deterministic fault
injection through the Component Feature seam, provider failover in the
Positioning Layer, and the end-to-end quarantine -> failover -> recovery
scenario from the issue's acceptance criteria.
"""

import pytest

from repro.clock import SimulationClock
from repro.core import Kind, PerPos
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.features import FeatureError
from repro.core.graph import ProcessingGraph
from repro.core.pcl import ProcessChannelLayer
from repro.core.positioning import Criteria
from repro.core.report import infrastructure_snapshot, render_report
from repro.observability import MetricsRegistry, ObservabilityHub
from repro.robustness import (
    FailureRecord,
    FaultInjected,
    FaultInjectionFeature,
    SupervisionError,
    SupervisionPolicy,
    Supervisor,
)
from repro.robustness.supervision import (
    CLOSED,
    HALF_OPEN,
    ISOLATE,
    OPEN,
    PROPAGATE,
    QUARANTINE,
)


def build_fanout(fail_on=None):
    """src -> [bomb, ok1 -> down, ok2]; bomb raises per ``fail_on``.

    ``fail_on`` is a predicate over the datum payload (None = always
    raise).  Returns (graph, source, sinks-by-name).
    """

    def bomb_fn(datum):
        if fail_on is None or fail_on(datum.payload):
            raise ValueError(f"boom on {datum.payload}")
        return datum

    graph = ProcessingGraph()
    source = SourceComponent("src", ("x",))
    bomb = FunctionComponent("bomb", ("x",), ("x",), fn=bomb_fn)
    ok1 = FunctionComponent("ok1", ("x",), ("x",), fn=lambda d: d)
    ok2 = ApplicationSink("ok2", ("x",))
    down = ApplicationSink("down", ("x",))
    for c in (source, bomb, ok1, ok2, down):
        graph.add(c)
    graph.connect("src", "bomb")
    graph.connect("src", "ok1")
    graph.connect("src", "ok2")
    graph.connect("ok1", "down")
    return graph, source, {"ok2": ok2, "down": down}


def supervised_fanout(policy, time_fn=None, **kwargs):
    graph, source, sinks = build_fanout(**kwargs)
    supervisor = Supervisor(policy, time_fn=time_fn)
    graph.set_supervisor(supervisor)
    return graph, source, sinks, supervisor


class TestSupervisionPolicy:
    def test_defaults(self):
        policy = SupervisionPolicy()
        assert policy.mode == ISOLATE
        assert policy.failure_threshold == 5
        assert policy.window_s == 60.0
        assert policy.half_open_after_s == 30.0
        assert policy.max_records == 256

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "explode"},
            {"failure_threshold": 0},
            {"window_s": 0.0},
            {"window_s": -1.0},
            {"half_open_after_s": 0.0},
            {"max_records": 0},
        ],
    )
    def test_invalid_configuration_raises(self, kwargs):
        with pytest.raises(SupervisionError):
            SupervisionPolicy(**kwargs)


class TestFailureRecords:
    def test_record_captures_the_failure_seam(self):
        clock = SimulationClock()
        clock.advance(7.5)
        _graph, source, _sinks, supervisor = supervised_fanout(
            SupervisionPolicy(mode=ISOLATE), time_fn=lambda: clock.now
        )
        source.inject(Datum("x", 1, 0.0))
        (record,) = supervisor.failure_records("bomb")
        assert record.component == "bomb"
        assert record.port == "in"
        assert record.kind == "x"
        assert record.time_s == 7.5
        assert record.seq == 1
        assert record.error_type == "ValueError"
        assert "boom on 1" in record.message
        # Origin points into the failing component's own code.
        assert "bomb_fn" in record.origin
        assert "boom on 1" in record.summary()
        assert record.as_dict()["error_type"] == "ValueError"

    def test_ring_buffer_is_bounded(self):
        policy = SupervisionPolicy(mode=ISOLATE, max_records=3)
        _graph, source, _sinks, supervisor = supervised_fanout(policy)
        for i in range(10):
            source.inject(Datum("x", i, float(i)))
        records = supervisor.failure_records()
        assert len(records) == 3
        assert [r.seq for r in records] == [8, 9, 10]
        # The running total is not bounded by the ring.
        assert supervisor.failure_count("bomb") == 10

    def test_records_filtered_by_component(self):
        _graph, source, _sinks, supervisor = supervised_fanout(
            SupervisionPolicy(mode=ISOLATE)
        )
        source.inject(Datum("x", 1, 0.0))
        assert supervisor.failure_records("ok2") == []
        assert len(supervisor.failure_records("bomb")) == 1


class TestIsolationModes:
    def test_isolate_contains_failure_at_delivery_boundary(self):
        _graph, source, sinks, supervisor = supervised_fanout(
            SupervisionPolicy(mode=ISOLATE)
        )
        source.inject(Datum("x", 1, 0.0))
        source.inject(Datum("x", 2, 1.0))
        # Siblings and their downstream keep receiving everything.
        assert [d.payload for d in sinks["ok2"].received] == [1, 2]
        assert [d.payload for d in sinks["down"].received] == [1, 2]
        assert supervisor.failure_count("bomb") == 2
        # Isolation never trips a breaker.
        assert supervisor.health("bomb") == CLOSED
        assert supervisor.quarantined() == []

    def test_propagate_reraises_but_still_records(self):
        _graph, source, sinks, supervisor = supervised_fanout(
            SupervisionPolicy(mode=PROPAGATE)
        )
        with pytest.raises(ValueError):
            source.inject(Datum("x", 1, 0.0))
        assert supervisor.failure_count("bomb") == 1
        assert len(supervisor.failure_records("bomb")) == 1
        # The cascade unwound: siblings routed after the bomb got nothing.
        assert sinks["ok2"].received == []

    def test_downstream_failure_does_not_unwind_upstream(self):
        """A failure two hops down is caught at its own boundary."""

        def bomb_fn(datum):
            raise RuntimeError("deep boom")

        graph = ProcessingGraph()
        source = SourceComponent("src", ("x",))
        stage = FunctionComponent("stage", ("x",), ("x",), fn=lambda d: d)
        deep = FunctionComponent("deep", ("x",), ("x",), fn=bomb_fn)
        side = ApplicationSink("side", ("x",))
        for c in (source, stage, deep, side):
            graph.add(c)
        graph.connect("src", "stage")
        graph.connect("stage", "deep")
        graph.connect("src", "side")
        supervisor = Supervisor(SupervisionPolicy(mode=ISOLATE))
        graph.set_supervisor(supervisor)
        source.inject(Datum("x", 1, 0.0))
        assert [d.payload for d in side.received] == [1]
        assert supervisor.failure_count("deep") == 1
        assert supervisor.failure_count("stage") == 0

    def test_set_supervisor_returns_previous_and_detaches(self):
        graph = ProcessingGraph()
        first = Supervisor()
        second = Supervisor()
        assert graph.set_supervisor(first) is None
        assert graph.supervisor is first
        assert graph.set_supervisor(second) is first
        assert graph.supervisor is second
        assert graph.set_supervisor(None) is second


class TestCircuitBreaker:
    def make(self, threshold=3, window_s=60.0, half_open_after_s=30.0):
        clock = SimulationClock()
        policy = SupervisionPolicy(
            mode=QUARANTINE,
            failure_threshold=threshold,
            window_s=window_s,
            half_open_after_s=half_open_after_s,
        )
        graph, source, sinks, supervisor = supervised_fanout(
            policy, time_fn=lambda: clock.now
        )
        return clock, graph, source, sinks, supervisor

    def test_trips_after_threshold_within_window(self):
        clock, _graph, source, _sinks, supervisor = self.make(threshold=3)
        for i in range(3):
            clock.advance(1.0)
            source.inject(Datum("x", i, float(i)))
        assert supervisor.health("bomb") == OPEN
        assert supervisor.quarantined() == ["bomb"]

    def test_quarantined_component_is_skipped_by_routing(self):
        clock, _graph, source, sinks, supervisor = self.make(threshold=2)
        for i in range(2):
            clock.advance(1.0)
            source.inject(Datum("x", i, float(i)))
        assert supervisor.health("bomb") == OPEN
        failures_before = supervisor.failure_count("bomb")
        clock.advance(1.0)
        source.inject(Datum("x", 99, 9.0))
        # Skipped, not failed: the bomb never saw the datum.
        assert supervisor.failure_count("bomb") == failures_before
        assert supervisor.skipped_count("bomb") == 1
        # Siblings are unaffected by the quarantine.
        assert sinks["ok2"].received[-1].payload == 99

    def test_sliding_window_expires_old_failures(self):
        clock, _graph, source, _sinks, supervisor = self.make(
            threshold=3, window_s=10.0
        )
        source.inject(Datum("x", 1, 0.0))
        clock.advance(4.0)
        source.inject(Datum("x", 2, 1.0))
        # Third failure lands 12 s after the first: only two remain in
        # the window, so the breaker stays closed.
        clock.advance(8.0)
        source.inject(Datum("x", 3, 2.0))
        assert supervisor.health("bomb") == CLOSED
        # A fourth failure close behind the third crosses the threshold.
        clock.advance(1.0)
        source.inject(Datum("x", 4, 3.0))
        assert supervisor.health("bomb") == OPEN

    def test_half_open_probe_success_closes(self):
        clock, graph, source, _sinks, supervisor = self.make(
            threshold=2, half_open_after_s=30.0
        )
        for i in range(2):
            clock.advance(1.0)
            source.inject(Datum("x", i, float(i)))
        assert supervisor.health("bomb") == OPEN
        # Heal the component, then wait out the probe window.
        graph.component("bomb")._fn = lambda d: d
        clock.advance(30.0)
        source.inject(Datum("x", 42, 9.0))
        assert supervisor.health("bomb") == CLOSED
        assert supervisor.quarantined() == []

    def test_half_open_probe_failure_reopens(self):
        clock, _graph, source, _sinks, supervisor = self.make(
            threshold=2, half_open_after_s=30.0
        )
        for i in range(2):
            clock.advance(1.0)
            source.inject(Datum("x", i, float(i)))
        clock.advance(30.0)
        # Still broken: the single probe fails and the breaker reopens
        # immediately -- one failure, not a fresh threshold count.
        source.inject(Datum("x", 3, 9.0))
        assert supervisor.health("bomb") == OPEN
        # The next delivery inside the new open window is skipped.
        clock.advance(1.0)
        skipped_before = supervisor.skipped_count("bomb")
        source.inject(Datum("x", 4, 10.0))
        assert supervisor.skipped_count("bomb") == skipped_before + 1

    def test_before_probe_window_stays_open(self):
        clock, _graph, source, _sinks, supervisor = self.make(
            threshold=2, half_open_after_s=30.0
        )
        for i in range(2):
            clock.advance(1.0)
            source.inject(Datum("x", i, float(i)))
        clock.advance(29.0)
        source.inject(Datum("x", 3, 9.0))
        assert supervisor.health("bomb") == OPEN
        assert supervisor.skipped_count("bomb") == 1

    def test_manual_quarantine_and_restore(self):
        _clock, _graph, source, _sinks, supervisor = self.make()
        supervisor.quarantine("ok2")
        assert supervisor.health("ok2") == OPEN
        source.inject(Datum("x", 1, 0.0))
        assert supervisor.skipped_count("ok2") == 1
        supervisor.restore("ok2")
        assert supervisor.health("ok2") == CLOSED

    def test_trip_counter_and_snapshot(self):
        clock, _graph, source, _sinks, supervisor = self.make(threshold=1)
        source.inject(Datum("x", 1, 0.0))
        clock.advance(30.0)
        source.inject(Datum("x", 2, 1.0))  # probe fails -> second trip
        snapshot = supervisor.snapshot()
        assert snapshot["policy"]["mode"] == QUARANTINE
        assert snapshot["components"]["bomb"]["trips"] == 2
        assert snapshot["components"]["bomb"]["health"] == OPEN
        assert snapshot["records"][-1]["component"] == "bomb"

    def test_listener_receives_lifecycle_events(self):
        clock, graph, source, _sinks, supervisor = self.make(threshold=2)
        events = []
        remove = supervisor.add_listener(
            lambda event, name, record: events.append((event, name))
        )
        for i in range(2):
            clock.advance(1.0)
            source.inject(Datum("x", i, float(i)))
        graph.component("bomb")._fn = lambda d: d
        clock.advance(30.0)
        source.inject(Datum("x", 3, 9.0))
        assert events == [
            ("failure", "bomb"),
            ("failure", "bomb"),
            (OPEN, "bomb"),
            (HALF_OPEN, "bomb"),
            (CLOSED, "bomb"),
        ]
        remove()
        supervisor.quarantine("bomb")
        assert len(events) == 5

    def test_reset_forgets_history(self):
        clock, _graph, source, _sinks, supervisor = self.make(threshold=1)
        source.inject(Datum("x", 1, 0.0))
        assert supervisor.quarantined() == ["bomb"]
        supervisor.reset()
        assert supervisor.quarantined() == []
        assert supervisor.failure_count("bomb") == 0
        assert supervisor.failure_records() == []


class TestReentrantMutation:
    def test_listener_may_remove_failing_component_mid_delivery(self):
        """Removing the failing component from inside the failure event
        must not break the in-flight routing loop (PR-2 reentrancy)."""
        graph, source, sinks, supervisor = supervised_fanout(
            SupervisionPolicy(mode=ISOLATE)
        )
        supervisor.add_listener(
            lambda event, name, record: (
                graph.remove(name)
                if event == "failure" and name in graph
                else None
            )
        )
        source.inject(Datum("x", 1, 0.0))
        # Siblings routed after the bomb still got the datum.
        assert [d.payload for d in sinks["ok2"].received] == [1]
        assert "bomb" not in graph
        # The graph keeps working after the reentrant removal.
        source.inject(Datum("x", 2, 1.0))
        assert [d.payload for d in sinks["ok2"].received] == [1, 2]


class TestLayerSurfaces:
    def make_middleware(self, threshold=2):
        middleware = PerPos()
        graph = middleware.graph
        source = SourceComponent("src", ("x",))
        bomb = FunctionComponent(
            "bomb", ("x",), ("x",), fn=lambda d: 1 / 0
        )
        sink = ApplicationSink("app", ("x",))
        for c in (source, bomb, sink):
            graph.add(c)
        graph.connect("src", "bomb")
        graph.connect("src", "app")
        middleware.enable_supervision(
            SupervisionPolicy(
                mode=QUARANTINE, failure_threshold=threshold
            )
        )
        return middleware, source

    def test_psl_describe_and_health_queries(self):
        middleware, source = self.make_middleware(threshold=2)
        psl = middleware.psl
        assert psl.component_health("bomb") == {"bomb": CLOSED}
        for i in range(2):
            middleware.clock.advance(1.0)
            source.inject(Datum("x", i, float(i)))
        info = psl.describe("bomb")
        assert info["health"] == OPEN
        assert info["failures"] == 2
        assert psl.component_health() == {"bomb": OPEN}
        assert psl.quarantined() == ["bomb"]
        records = psl.failure_records("bomb")
        assert records and records[0].error_type == "ZeroDivisionError"

    def test_psl_health_empty_while_supervision_disabled(self):
        middleware, _source = self.make_middleware()
        middleware.disable_supervision()
        assert middleware.psl.component_health() == {}
        assert middleware.psl.failure_records() == []
        assert middleware.psl.quarantined() == []
        assert "health" not in middleware.psl.describe("bomb")

    def test_enable_supervision_registers_service(self):
        middleware, _source = self.make_middleware()
        service = middleware.framework.registry.find_service(
            "perpos.Supervisor"
        )
        assert service is middleware.supervision

    def test_hub_gauges_and_counters(self):
        middleware, source = self.make_middleware(threshold=2)
        hub = middleware.enable_observability(tracing=False)
        for i in range(2):
            middleware.clock.advance(1.0)
            source.inject(Datum("x", i, float(i)))
        registry = hub.registry
        assert (
            registry.counter("supervised_failures", component="bomb").value
            == 2
        )
        assert (
            registry.counter("quarantine_trips", component="bomb").value
            == 1
        )
        # Health gauge: 0=closed, 1=half-open, 2=open.
        gauge = registry.gauge("component_health", component="bomb")
        assert gauge.value == 2
        middleware.supervision.restore("bomb")
        assert gauge.value == 0
        # Hub error counters keep recording under supervision: the
        # supervisor wraps hub.deliver, it does not replace it.
        assert registry.counter("errors", component="bomb").value == 2

    def test_snapshot_and_report_carry_supervision(self):
        middleware, source = self.make_middleware(threshold=2)
        for i in range(2):
            middleware.clock.advance(1.0)
            source.inject(Datum("x", i, float(i)))
        snapshot = infrastructure_snapshot(middleware)
        assert snapshot["supervision"]["components"]["bomb"]["health"] == OPEN
        bomb_info = next(
            c for c in snapshot["components"] if c["name"] == "bomb"
        )
        assert bomb_info["health"] == OPEN
        text = render_report(middleware)
        assert "supervision:" in text
        assert "bomb: open" in text
        assert "ZeroDivisionError" in text

    def test_report_with_supervision_disabled(self):
        middleware = PerPos()
        assert (
            infrastructure_snapshot(middleware)["supervision"] is None
        )
        assert "(supervision disabled)" in render_report(middleware)


@pytest.mark.chaos
class TestFaultInjectionFeature:
    def build(self, feature):
        graph = ProcessingGraph()
        source = SourceComponent("src", ("x",))
        stage = FunctionComponent("stage", ("x",), ("x",), fn=lambda d: d)
        sink = ApplicationSink("app", ("x",))
        for c in (source, stage, sink):
            graph.add(c)
        graph.connect("src", "stage")
        graph.connect("stage", "app")
        stage.attach_feature(feature)
        supervisor = Supervisor(SupervisionPolicy(mode=ISOLATE))
        graph.set_supervisor(supervisor)
        return graph, source, sink, supervisor

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fail_every": 0},
            {"drop_every": 0},
            {"fail_rate": 1.5},
            {"drop_rate": -0.1},
            {"delay_datums": -1},
            {"fail_limit": -1},
            {"corrupt_every": 0},
            {"corrupt_rate": 2.0},
            {"timestamp_skew_s": -1.0},
        ],
    )
    def test_invalid_configuration_raises(self, kwargs):
        with pytest.raises(FeatureError):
            FaultInjectionFeature(**kwargs)

    def test_fail_every_cadence_is_supervised(self):
        feature = FaultInjectionFeature(fail_every=3)
        _graph, source, sink, supervisor = self.build(feature)
        for i in range(1, 10):
            source.inject(Datum("x", i, float(i)))
        # Every 3rd consumed datum raises FaultInjected; the rest pass.
        assert [d.payload for d in sink.received] == [1, 2, 4, 5, 7, 8]
        assert feature.injected_failures == 3
        assert supervisor.failure_count("stage") == 3
        record = supervisor.failure_records("stage")[0]
        assert record.error_type == "FaultInjected"

    def test_seeded_rates_replay_identically(self):
        outcomes = []
        for _run in range(2):
            feature = FaultInjectionFeature(
                fail_rate=0.3, drop_rate=0.2, seed=7
            )
            _graph, source, sink, _sup = self.build(feature)
            for i in range(40):
                source.inject(Datum("x", i, float(i)))
            outcomes.append(
                (
                    [d.payload for d in sink.received],
                    feature.injected_failures,
                    feature.injected_drops,
                )
            )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][1] > 0 and outcomes[0][2] > 0

    def test_different_seed_differs(self):
        received = []
        for seed in (1, 2):
            feature = FaultInjectionFeature(fail_rate=0.5, seed=seed)
            _graph, source, sink, _sup = self.build(feature)
            for i in range(40):
                source.inject(Datum("x", i, float(i)))
            received.append([d.payload for d in sink.received])
        assert received[0] != received[1]

    def test_drop_is_a_feature_veto_not_a_failure(self):
        feature = FaultInjectionFeature(drop_every=2)
        _graph, source, sink, supervisor = self.build(feature)
        for i in range(1, 5):
            source.inject(Datum("x", i, float(i)))
        assert [d.payload for d in sink.received] == [1, 3]
        assert feature.injected_drops == 2
        assert supervisor.failure_count("stage") == 0

    def test_delay_lags_datums_deterministically(self):
        feature = FaultInjectionFeature(delay_datums=2)
        _graph, source, sink, _sup = self.build(feature)
        for i in range(1, 6):
            source.inject(Datum("x", i, float(i)))
        # Two datums in flight at all times; delivery lags by two.
        assert [d.payload for d in sink.received] == [1, 2, 3]
        assert feature.pending() == 2

    def test_fail_limit_stops_injecting(self):
        feature = FaultInjectionFeature(fail_every=1, fail_limit=2)
        _graph, source, sink, supervisor = self.build(feature)
        for i in range(1, 6):
            source.inject(Datum("x", i, float(i)))
        assert feature.injected_failures == 2
        assert [d.payload for d in sink.received] == [3, 4, 5]

    def test_corruption_mangles_mapping_payloads_deterministically(self):
        runs = []
        for _run in range(2):
            feature = FaultInjectionFeature(corrupt_every=2, seed=11)
            _graph, source, sink, _sup = self.build(feature)
            for i in range(1, 7):
                source.inject(Datum("x", {"v": i, "s": "ok"}, float(i)))
            runs.append(
                (
                    [d.payload for d in sink.received],
                    feature.injected_corruptions,
                )
            )
        assert runs[0] == runs[1]
        payloads, corruptions = runs[0]
        assert corruptions == 3
        # Every 2nd consumed payload was mangled; the rest pass intact.
        for index, payload in enumerate(payloads, 1):
            if index % 2 == 0:
                assert payload != {"v": index, "s": "ok"}
            else:
                assert payload == {"v": index, "s": "ok"}

    def test_corruption_skips_non_mapping_payloads(self):
        feature = FaultInjectionFeature(corrupt_every=1)
        _graph, source, sink, _sup = self.build(feature)
        for i in range(3):
            source.inject(Datum("x", i, float(i)))
        assert [d.payload for d in sink.received] == [0, 1, 2]
        assert feature.injected_corruptions == 0

    def test_maybe_corrupt_works_without_a_host_component(self):
        # The gateway-boundary mode: raw wire payloads, no attachment.
        feature = FaultInjectionFeature(
            corrupt_every=3, timestamp_skew_s=60.0, seed=5
        )
        original = {"device_id": "d", "timestamp": 100.0, "lat": 1.0}
        stream = [dict(original) for _ in range(9)]
        out = [feature.maybe_corrupt(p) for p in stream]
        assert feature.injected_corruptions == 3
        assert sum(1 for o in out if o != original) == 3
        # maybe_corrupt copies: the submitted payloads are untouched.
        assert all(p == original for p in stream)

    def test_corrupt_fields_restricts_targets(self):
        feature = FaultInjectionFeature(
            corrupt_every=1, corrupt_fields=("lat",), seed=3
        )
        for _ in range(5):
            out = feature.maybe_corrupt({"lat": 1.0, "lon": 2.0})
            assert out.get("lon") == 2.0
            assert out.get("lat") != 1.0  # dropped or mangled

    def test_disarmed_feature_does_not_corrupt(self):
        feature = FaultInjectionFeature(corrupt_every=1)
        feature.disarm()
        payload = {"lat": 1.0}
        assert feature.maybe_corrupt(payload) == payload
        assert feature.injected_corruptions == 0
        assert feature.stats()["injected_corruptions"] == 0

    def test_disarm_through_psl_reflective_surface(self):
        feature = FaultInjectionFeature(fail_every=1)
        graph, source, sink, _sup = self.build(feature)
        from repro.core.psl import ProcessStructureLayer

        psl = ProcessStructureLayer(graph)
        assert "FaultInjection.disarm" in psl.methods_of("stage")
        psl.invoke("stage", "FaultInjection.disarm")
        assert psl.invoke("stage", "FaultInjection.armed") is False
        source.inject(Datum("x", 1, 0.0))
        assert [d.payload for d in sink.received] == [1]
        stats = psl.invoke("stage", "FaultInjection.stats")
        assert stats["armed"] is False
        assert stats["injected_failures"] == 0


class TestChannelFeatureErrorAccounting:
    def build_channel(self, feature_error_limit=64):
        from repro.core.channel import Channel, ChannelFeature

        class Bad(ChannelFeature):
            name = "Bad"

            def apply(self, tree):
                raise RuntimeError("observer bug")

        graph = ProcessingGraph()
        source = SourceComponent("src", ("x",))
        sink = ApplicationSink("app", ("x",))
        graph.add(source)
        graph.add(sink)
        graph.connect("src", "app")
        channel = Channel(
            graph,
            [source],
            "app",
            feature_error_limit=feature_error_limit,
        )
        channel.attach_feature(Bad())
        return graph, source, channel

    def test_buffer_is_capped_but_count_is_total(self):
        _graph, source, channel = self.build_channel(feature_error_limit=5)
        for i in range(12):
            source.inject(Datum("x", i, float(i)))
        assert len(channel.feature_errors) == 5
        assert channel.feature_error_count == 12
        assert channel.stats()["feature_errors"] == 12

    def test_invalid_limit_raises(self):
        from repro.core.channel import Channel

        graph = ProcessingGraph()
        source = SourceComponent("src", ("x",))
        graph.add(source)
        with pytest.raises(ValueError):
            Channel(graph, [source], "app", feature_error_limit=0)

    def test_hub_counter_records_channel_feature_errors(self):
        graph, source, channel = self.build_channel()
        hub = ObservabilityHub(MetricsRegistry(), tracing=False)
        graph.set_instrumentation(hub)
        source.inject(Datum("x", 1, 0.0))
        source.inject(Datum("x", 2, 1.0))
        counter = hub.registry.counter(
            "channel_feature_errors",
            channel=channel.id,
            feature="Bad",
        )
        assert counter.value == 2

    def test_flow_summary_includes_feature_errors(self):
        graph, source, _sinks = build_fanout(fail_on=lambda p: False)
        pcl = ProcessChannelLayer(graph)

        from repro.core.channel import ChannelFeature

        class Bad(ChannelFeature):
            name = "Bad"

            def apply(self, tree):
                raise RuntimeError("observer bug")

        channel = pcl.channel("src->ok2")
        channel.attach_feature(Bad())
        source.inject(Datum("x", 1, 0.0))
        summary = {
            entry["id"]: entry["feature_errors"]
            for entry in pcl.flow_summary()
        }
        assert summary["src->ok2"] == 1
        assert summary["src->down"] == 0


class TestProviderFailover:
    def make_two_providers(self):
        middleware = PerPos()
        graph = middleware.graph
        for tech, src_name in (("gps", "gps-src"), ("wifi", "wifi-src")):
            source = SourceComponent(src_name, (Kind.POSITION_WGS84,))
            graph.add(source)
            provider = middleware.create_provider(
                f"{tech}-app",
                accepts=(Kind.POSITION_WGS84,),
                technologies=(tech,),
            )
            graph.connect(src_name, provider.sink.name)
        middleware.enable_supervision(
            SupervisionPolicy(mode=QUARANTINE, failure_threshold=1)
        )
        return middleware

    def test_healthy_provider_preferred_over_quarantined(self):
        middleware = self.make_two_providers()
        events = []
        middleware.positioning.add_failover_listener(
            lambda demoted, selected: events.append((demoted, selected))
        )
        criteria = Criteria(kind=Kind.POSITION_WGS84)
        assert middleware.get_provider(criteria).name == "gps-app"
        middleware.supervision.quarantine("gps-src")
        provider = middleware.get_provider(criteria)
        assert provider.name == "wifi-app"
        assert events == [(["gps-app"], "wifi-app")]

    def test_provider_degraded_when_any_backing_component_open(self):
        middleware = self.make_two_providers()
        gps = middleware.positioning.provider("gps-app")
        assert gps.is_degraded() is False
        middleware.supervision.quarantine("gps-src")
        assert gps.is_degraded() is True
        assert gps.quarantined_components() == ["gps-src"]
        info = gps.describe()
        assert info["health"] == "degraded"
        assert info["quarantined"] == ["gps-src"]
        wifi = middleware.positioning.provider("wifi-app")
        assert wifi.is_degraded() is False
        assert wifi.describe()["health"] == "ok"

    def test_all_degraded_returns_first_with_notification(self):
        middleware = self.make_two_providers()
        events = []
        remove = middleware.positioning.add_failover_listener(
            lambda demoted, selected: events.append((demoted, selected))
        )
        middleware.supervision.quarantine("gps-src")
        middleware.supervision.quarantine("wifi-src")
        provider = middleware.get_provider(
            Criteria(kind=Kind.POSITION_WGS84)
        )
        # A degraded provider beats none; the demotion is announced.
        assert provider.name == "gps-app"
        assert events == [(["gps-app", "wifi-app"], "gps-app")]
        remove()
        middleware.get_provider(Criteria(kind=Kind.POSITION_WGS84))
        assert len(events) == 1

    def test_criteria_filter_still_applies_during_failover(self):
        middleware = self.make_two_providers()
        middleware.supervision.quarantine("gps-src")
        provider = middleware.get_provider(
            Criteria(kind=Kind.POSITION_WGS84, technology="gps")
        )
        # Only the degraded provider matches the technology: it wins.
        assert provider.name == "gps-app"

    def test_recovery_restores_preference(self):
        middleware = self.make_two_providers()
        middleware.supervision.quarantine("gps-src")
        criteria = Criteria(kind=Kind.POSITION_WGS84)
        assert middleware.get_provider(criteria).name == "wifi-app"
        middleware.supervision.restore("gps-src")
        assert middleware.get_provider(criteria).name == "gps-app"


@pytest.mark.chaos
class TestEndToEndQuarantineRecovery:
    def test_quarantine_failover_and_half_open_recovery(self):
        """The issue's acceptance scenario, end to end."""
        middleware = PerPos()
        graph = middleware.graph
        # Two independent strands into two providers.
        gps_src = SourceComponent("gps-src", (Kind.POSITION_WGS84,))
        gps_stage = FunctionComponent(
            "gps-stage",
            (Kind.POSITION_WGS84,),
            (Kind.POSITION_WGS84,),
            fn=lambda d: d,
        )
        wifi_src = SourceComponent("wifi-src", (Kind.POSITION_WGS84,))
        for c in (gps_src, gps_stage, wifi_src):
            graph.add(c)
        gps = middleware.create_provider(
            "gps-app", (Kind.POSITION_WGS84,), technologies=("gps",)
        )
        wifi = middleware.create_provider(
            "wifi-app", (Kind.POSITION_WGS84,), technologies=("wifi",)
        )
        graph.connect("gps-src", "gps-stage")
        graph.connect("gps-stage", gps.sink.name)
        graph.connect("wifi-src", wifi.sink.name)
        middleware.enable_supervision(
            SupervisionPolicy(
                mode=QUARANTINE,
                failure_threshold=3,
                window_s=60.0,
                half_open_after_s=30.0,
            )
        )
        fault = FaultInjectionFeature(fail_every=1)
        middleware.psl.attach_feature("gps-stage", fault)

        def tick(payload):
            middleware.clock.advance(1.0)
            t = middleware.clock.now
            gps_src.inject(Datum(Kind.POSITION_WGS84, payload, t))
            wifi_src.inject(Datum(Kind.POSITION_WGS84, payload, t))

        criteria = Criteria(kind=Kind.POSITION_WGS84)
        # 1. The GPS stage fails every datum and trips after 3 failures.
        for i in range(3):
            tick(("fix", i))
        assert middleware.supervision.health("gps-stage") == OPEN
        # 2. The sibling strand kept receiving throughout.
        assert len(wifi.sink.received) == 3
        # 3. PSL and the report expose the open breaker.
        assert middleware.psl.quarantined() == ["gps-stage"]
        assert "gps-stage: open" in render_report(middleware)
        # 4. Provider selection fails over to the healthy fallback.
        assert middleware.get_provider(criteria).name == "wifi-app"
        assert gps.is_degraded() is True
        # 5. Heal the stage; after the half-open window the next routed
        #    datum is the probe, it succeeds, and the breaker closes.
        middleware.psl.invoke("gps-stage", "FaultInjection.disarm")
        middleware.clock.advance(30.0)
        tick(("fix", 99))
        assert middleware.supervision.health("gps-stage") == CLOSED
        # 6. The recovered provider is preferred again and delivers.
        assert middleware.get_provider(criteria).name == "gps-app"
        assert gps.sink.received[-1].payload == ("fix", 99)
