"""Property-based tests on the sensing substrate (hypothesis)."""

import statistics

from hypothesis import given, settings, strategies as st

from repro.geo.wgs84 import Wgs84Position
from repro.sensors.gps import (
    GpsReceiver,
    OPEN_SKY,
    constant_environment,
)
from repro.sensors.nmea import GgaSentence, NmeaError, parse_sentence
from repro.sensors.trajectory import (
    StationaryTrajectory,
    Waypoint,
    WaypointTrajectory,
)

START = Wgs84Position(56.17, 10.19)


class TestGpsReceiverProperties:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_stationary_apparent_speed_bounded(self, seed):
        """Correlated error keeps a still receiver's apparent speed low.

        This is the property the transportation-mode pipeline depends
        on: white per-epoch noise would fake several m/s of movement.
        """
        gps = GpsReceiver(
            "g",
            StationaryTrajectory(START, 120.0),
            constant_environment(OPEN_SKY),
            seed=seed,
            chunk_size=None,
        )
        gps.sample(120.0)
        fixes = [
            e.reported_position
            for e in gps.epochs
            if e.reported_position is not None
        ]
        deltas = [
            a.distance_to(b) for a, b in zip(fixes, fixes[1:])
        ]
        assert statistics.mean(deltas) < 1.2

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_error_magnitude_tracks_hdop(self, seed):
        """Fix error stays within a few sigma of the reported quality."""
        gps = GpsReceiver(
            "g",
            StationaryTrajectory(START, 120.0),
            constant_environment(OPEN_SKY),
            seed=seed,
            chunk_size=None,
        )
        gps.sample(120.0)
        for epoch in gps.epochs:
            if epoch.reported_position is None or epoch.is_stale:
                continue
            sigma = 5.0 * epoch.hdop  # uere * hdop, open-sky multiplier 1
            error = epoch.reported_position.distance_to(
                epoch.true_position
            )
            assert error < 6.0 * sigma + 1.0

    @given(
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=8, max_value=64),
    )
    @settings(max_examples=10, deadline=None)
    def test_fragmentation_preserves_stream(self, seed, chunk):
        """Any fragment size reassembles to the identical NMEA stream."""
        def make(chunk_size):
            trajectory = WaypointTrajectory(
                [Waypoint(0.0, START), Waypoint(30.0, START.moved(90, 40))]
            )
            gps = GpsReceiver(
                "g",
                trajectory,
                constant_environment(OPEN_SKY),
                seed=seed,
                chunk_size=chunk_size,
            )
            return "".join(r.payload for r in gps.sample(10.0))

        # Compare unfragmented vs fragmented byte streams directly.
        whole = make(None)
        fragged = make(chunk)
        assert fragged == whole


class TestNmeaProperties:
    @given(
        st.floats(min_value=-89.9, max_value=89.9),
        st.floats(min_value=-179.9, max_value=179.9),
        st.integers(min_value=0, max_value=99),
        st.floats(min_value=0.1, max_value=99.0),
        st.floats(min_value=-400.0, max_value=8000.0),
        st.floats(min_value=0.0, max_value=86399.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_gga_roundtrip_total(self, lat, lon, sats, hdop, alt, t):
        sentence = GgaSentence(t, lat, lon, 1, sats, hdop, alt)
        decoded = parse_sentence(sentence.encode())
        assert decoded.latitude_deg is not None
        assert abs(decoded.latitude_deg - lat) < 1e-5
        assert abs(decoded.longitude_deg - lon) < 1e-5
        assert decoded.num_satellites == sats
        assert abs(decoded.altitude_m - alt) < 0.051
        assert abs(decoded.time_s - t) < 0.011

    @given(st.text(min_size=0, max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_parser_never_crashes_on_garbage(self, line):
        """parse_sentence raises NmeaError or returns a sentence; it
        never raises anything else."""
        try:
            parse_sentence(line)
        except NmeaError:
            pass
