"""BLE technology plug-in (requirement R1), interval + geofence listeners."""

import pytest

from repro.clock import SimulationClock
from repro.core import Criteria, Kind, PerPos
from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.core.pcl import ProcessChannelLayer
from repro.core.positioning import LocationProvider, PositioningError
from repro.geo.grid import GridPosition
from repro.model.demo import (
    demo_beacons,
    demo_building,
    demo_radio_environment,
)
from repro.processing.beacon_positioning import BeaconPositioningComponent
from repro.processing.pipelines import build_room_app
from repro.sensors.ble import Beacon, BeaconScan, BeaconSighting, BleScanner
from repro.sensors.gps import GpsReceiver, INDOOR, OPEN_SKY
from repro.sensors.trajectory import (
    StationaryTrajectory,
    Waypoint,
    WaypointTrajectory,
)
from repro.sensors.wifi import WifiScanner
from repro.geo.wgs84 import Wgs84Position


class TestBleScanner:
    def setup_scanner(self, position=GridPosition(15.0, 12.0), seed=1):
        building = demo_building()
        inside = building.grid.to_wgs84(position)
        scanner = BleScanner(
            "ble0",
            StationaryTrajectory(inside, 60.0),
            demo_beacons(),
            building.grid,
            seed=seed,
            wall_counter=building.walls_between,
        )
        return scanner

    def test_scan_rate(self):
        scanner = self.setup_scanner()
        readings = scanner.sample(9.0)
        assert len(readings) == 10
        assert all(isinstance(r.payload, BeaconScan) for r in readings)

    def test_nearest_beacon_strongest(self):
        # Standing in N2: the N2 beacon should usually win.
        scanner = self.setup_scanner(GridPosition(15.0, 12.0))
        wins = 0
        for reading in scanner.sample(30.0):
            strongest = reading.payload.strongest()
            if strongest and strongest.beacon_id == "bcn:N2":
                wins += 1
        assert wins > 15

    def test_validation(self):
        building = demo_building()
        still = StationaryTrajectory(Wgs84Position(0, 0), 1.0)
        with pytest.raises(ValueError):
            BleScanner("b", still, [], building.grid)
        with pytest.raises(ValueError):
            BleScanner(
                "b", still, demo_beacons(), building.grid,
                scan_period_s=0.0,
            )


class TestBeaconPositioning:
    def wire(self):
        building = demo_building()
        component = BeaconPositioningComponent(
            demo_beacons(), building.grid
        )
        graph = ProcessingGraph()
        source = SourceComponent("ble", (Kind.BEACON_SCAN,))
        sink = ApplicationSink(
            "app", (Kind.POSITION_WGS84, Kind.POSITION_GRID)
        )
        for c in (source, component, sink):
            graph.add(c)
        graph.connect("ble", component.name)
        graph.connect(component.name, "app")
        return building, component, source, sink

    def scan(self, *sightings, t=0.0):
        return Datum(
            Kind.BEACON_SCAN,
            BeaconScan(
                t, tuple(BeaconSighting(b, r) for b, r in sightings)
            ),
            t,
        )

    def test_strongest_beacon_position_produced(self):
        building, _comp, source, sink = self.wire()
        source.inject(
            self.scan(("bcn:N2", -55.0), ("bcn:corr:west", -75.0))
        )
        grid_pos = sink.last(Kind.POSITION_GRID)
        assert grid_pos.attributes["beacon"] == "bcn:N2"
        assert building.room_at(grid_pos.payload).room_id == "N2"

    def test_weak_sightings_rejected(self):
        _b, _comp, source, sink = self.wire()
        source.inject(self.scan(("bcn:N2", -89.0)))
        assert sink.received == []

    def test_unknown_beacon_ignored(self):
        _b, _comp, source, sink = self.wire()
        source.inject(self.scan(("bcn:rogue", -40.0)))
        assert sink.received == []

    def test_accuracy_grows_with_weakness(self):
        _b, component, source, sink = self.wire()
        source.inject(self.scan(("bcn:N2", -59.0), t=0.0))
        near = sink.last(Kind.POSITION_WGS84).payload.accuracy_m
        source.inject(self.scan(("bcn:N2", -75.0), t=1.0))
        far = sink.last(Kind.POSITION_WGS84).payload.accuracy_m
        assert far > near

    def test_validation(self):
        building = demo_building()
        with pytest.raises(ValueError):
            BeaconPositioningComponent([], building.grid)


class TestR1PlugIn:
    """§1/R1: add a new positioning mechanism to a RUNNING application
    without touching its API."""

    def test_ble_strand_added_to_live_room_app(self):
        building = demo_building()
        grid = building.grid
        trajectory = WaypointTrajectory(
            [
                Waypoint(0.0, grid.to_wgs84(GridPosition(15.0, 12.0))),
                Waypoint(120.0, grid.to_wgs84(GridPosition(15.0, 12.0))),
            ]
        )

        def sky(t, position):
            return INDOOR  # fully indoors: GPS is useless here

        middleware = PerPos()
        gps = GpsReceiver("gps-dev", trajectory, sky, seed=3)
        wifi = WifiScanner(
            "wifi-dev",
            trajectory,
            demo_radio_environment(building),
            grid,
            seed=4,
        )
        app = build_room_app(middleware, gps, wifi, building)
        middleware.run_until(30.0)

        # Plug BLE in mid-run: sensor + positioning component into the
        # existing fusion node.  No application change.
        ble = BleScanner(
            "ble-dev",
            trajectory,
            demo_beacons(),
            grid,
            seed=5,
            wall_counter=building.walls_between,
        )
        middleware.attach_sensor(ble, (Kind.BEACON_SCAN,))
        engine = BeaconPositioningComponent(demo_beacons(), grid)
        middleware.graph.add(engine)
        middleware.graph.connect("ble-dev", engine.name)
        middleware.graph.connect(engine.name, app.fusion)
        middleware.run_until(120.0)

        # The new technology's fixes flowed through the unchanged app.
        late = [
            d
            for d in app.provider.sink.received
            if d.kind == Kind.POSITION_WGS84 and d.timestamp > 30.0
        ]
        sources = {d.attributes.get("selected_source") for d in late}
        assert "ble-positioning" in sources
        # The channel view gained a strand; the app sink is untouched.
        channel_ids = [c.id for c in middleware.pcl.channels()]
        assert "ble-dev->fusion" in channel_ids
        room = app.provider.last_known(Kind.ROOM_ID)
        assert room.payload.room_id == "N2"


class TestIntervalListener:
    def build_provider(self):
        graph = ProcessingGraph()
        source = SourceComponent("src", (Kind.POSITION_WGS84,))
        sink = ApplicationSink("app", (Kind.POSITION_WGS84,))
        graph.add(source)
        graph.add(sink)
        graph.connect("src", "app")
        provider = LocationProvider(
            "app", sink, ProcessChannelLayer(graph)
        )
        return provider, source

    def test_periodic_delivery(self):
        clock = SimulationClock()
        provider, source = self.build_provider()
        received = []
        provider.add_interval_listener(
            clock, 10.0, lambda d: received.append(d)
        )
        clock.run_until(5.0)
        assert received == []
        source.inject(
            Datum(
                Kind.POSITION_WGS84, Wgs84Position(56.0, 10.0), 5.0, "src"
            )
        )
        clock.run_until(35.0)
        assert len(received) == 3
        assert all(d is not None for d in received)

    def test_none_delivered_before_first_fix(self):
        clock = SimulationClock()
        provider, _source = self.build_provider()
        received = []
        provider.add_interval_listener(
            clock, 10.0, lambda d: received.append(d)
        )
        clock.run_until(25.0)
        assert received == [None, None]

    def test_cancellation(self):
        clock = SimulationClock()
        provider, _source = self.build_provider()
        received = []
        cancel = provider.add_interval_listener(
            clock, 10.0, lambda d: received.append(d)
        )
        clock.run_until(15.0)
        cancel()
        clock.run_until(100.0)
        assert len(received) == 1

    def test_validation(self):
        clock = SimulationClock()
        provider, _source = self.build_provider()
        with pytest.raises(PositioningError):
            provider.add_interval_listener(clock, 0.0, lambda d: None)


class TestGeofence:
    def test_polygon_geofence_crossings(self):
        building = demo_building()
        grid = building.grid
        graph = ProcessingGraph()
        source = SourceComponent("src", (Kind.POSITION_WGS84,))
        sink = ApplicationSink("app", (Kind.POSITION_WGS84,))
        graph.add(source)
        graph.add(sink)
        graph.connect("src", "app")
        provider = LocationProvider(
            "app", sink, ProcessChannelLayer(graph)
        )
        n2_polygon = building.room_by_id("N2").polygon
        events = []
        provider.add_geofence_listener(
            n2_polygon, grid, lambda kind, d: events.append(kind)
        )

        def inject(x, y, t):
            source.inject(
                Datum(
                    Kind.POSITION_WGS84,
                    grid.to_wgs84(GridPosition(x, y)),
                    t,
                    "src",
                )
            )

        inject(5.0, 7.5, 0.0)  # corridor, outside N2
        inject(15.0, 12.0, 1.0)  # inside N2
        inject(15.0, 7.5, 2.0)  # back in the corridor
        assert events == ["entered", "left"]

    def test_geofence_validation(self):
        building = demo_building()
        provider, _src = TestIntervalListener().build_provider()
        with pytest.raises(PositioningError):
            provider.add_geofence_listener(
                [(0, 0), (1, 1)], building.grid, lambda k, d: None
            )
