"""Property tests: compiled dispatch == interpreted dispatch.

The contract of :mod:`repro.core.compile` is observational equivalence:
for any graph, executing a workload with plan compilation enabled must
be indistinguishable -- sink contents, raised exceptions, per-component
metric counters -- from executing it with ``set_compilation(False)``.

Every test here builds *two* structurally identical graphs from one
randomly generated spec, runs the identical action script against both
(one compiled, one forced interpreted), and compares every observable.
Scripts interleave per-datum and batched injection with the reflection
seams that interact with the plan: feature attach/detach, structural
mutation (remove-with-reconnect, insert_between), breaker trips under a
supervisor, and component functions that mutate the graph *mid
delivery* -- the in-flight decompilation path.

Metric comparison covers counters only (``items_in`` / ``items_out`` /
``errors`` / ``items_dropped``): latency histogram *values* are
wall-clock and the fused path intentionally records per-member fn time
instead of nested whole-subtree time, so ``latency`` is excluded.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.features import ComponentFeature, FeatureError
from repro.core.graph import GraphError, ProcessingGraph
from repro.observability.instrumentation import ObservabilityHub
from repro.observability.metrics import MetricsRegistry
from repro.robustness.supervision import SupervisionPolicy, Supervisor

KINDS = ("x", "y")
ACCEPT_SETS = (("x", "y"), ("x",))
BEHAVIORS = (
    "identity",
    "inc",
    "drop_odd",
    "dup",
    "swap",
    "explode",
    "bad_kind",
)


def make_fn(behavior: str) -> Callable[[Datum], Any]:
    """The per-datum step for one generated stage behaviour."""
    if behavior == "identity":
        return lambda d: d
    if behavior == "inc":
        return lambda d: d.with_payload(d.payload + 1)
    if behavior == "drop_odd":
        return lambda d: None if d.payload % 2 else d
    if behavior == "dup":
        return lambda d: (d, d.with_payload(d.payload + 100))
    if behavior == "swap":
        return lambda d: Datum(
            "y" if d.kind == "x" else "x", d.payload, d.timestamp
        )
    if behavior == "explode":

        def _explode(d: Datum) -> Datum:
            if d.payload % 5 == 0:
                raise ValueError(f"boom {d.payload}")
            return d

        return _explode
    assert behavior == "bad_kind"
    return lambda d: (
        Datum("z", d.payload, d.timestamp) if d.payload % 5 == 0 else d
    )


class VetoFeature(ComponentFeature):
    """Drops every payload divisible by three on its way in."""

    name = "Veto"

    def consume(self, datum: Datum) -> Optional[Datum]:
        return None if datum.payload % 3 == 0 else datum


StageSpec = Tuple[str, Tuple[str, ...]]


def build_pipeline(
    stages: List[StageSpec],
    branch_at: Optional[int],
    *,
    hub: bool,
) -> Tuple[ProcessingGraph, List[ApplicationSink], Optional[ObservabilityHub]]:
    """One graph from the spec: src -> s0 -> ... -> app (+ side branch)."""
    graph = ProcessingGraph()
    hub_obj: Optional[ObservabilityHub] = None
    if hub:
        hub_obj = ObservabilityHub(MetricsRegistry(), tracing=False)
        graph.set_instrumentation(hub_obj)
    graph.add(SourceComponent("src", KINDS))
    sink = ApplicationSink("app", KINDS)
    graph.add(sink)
    prev = "src"
    for i, (behavior, accepts) in enumerate(stages):
        graph.add(
            FunctionComponent(f"s{i}", accepts, KINDS, make_fn(behavior))
        )
        graph.connect(prev, f"s{i}")
        prev = f"s{i}"
    graph.connect(prev, "app")
    sinks = [sink]
    if branch_at is not None:
        side = ApplicationSink("side", KINDS)
        graph.add(side)
        graph.connect(f"s{branch_at % len(stages)}", "side")
        sinks.append(side)
    return graph, sinks, hub_obj


def run_script(
    graph: ProcessingGraph, script: List[Tuple[Any, ...]], n_stages: int
) -> List[Tuple[str, str]]:
    """Apply one action script; returns the (type, message) of every
    exception an injection raised, in order."""
    src = graph.component("src")
    raised: List[Tuple[str, str]] = []
    inserted = 0
    for action in script:
        op = action[0]
        if op in ("inject", "batch"):
            _, payloads, kind = action
            datums = [Datum(kind, p, float(p)) for p in payloads]
            try:
                if op == "inject":
                    for datum in datums:
                        src.inject(datum)
                else:
                    src.inject_batch(datums)
            except Exception as exc:  # noqa: BLE001 - compared across runs
                raised.append((type(exc).__name__, str(exc)))
        elif op in ("attach", "detach", "remove"):
            name = f"s{action[1] % n_stages}"
            if name not in graph:
                continue
            try:
                if op == "attach":
                    graph.component(name).attach_feature(VetoFeature())
                elif op == "detach":
                    graph.component(name).detach_feature("Veto")
                else:
                    graph.remove(name, reconnect=True)
            except (FeatureError, GraphError):
                continue
        else:
            assert op == "insert"
            edges = sorted(
                graph.connections(),
                key=lambda c: (c.producer, c.consumer, c.port),
            )
            if not edges:
                continue
            edge = edges[action[1] % len(edges)]
            component = FunctionComponent(
                f"ins{inserted}", KINDS, KINDS, lambda d: d
            )
            inserted += 1
            graph.insert_between(edge.producer, edge.consumer, component)
    return raised


def observed(
    sinks: List[ApplicationSink], hub: Optional[ObservabilityHub]
) -> Tuple[Dict[str, Any], Optional[Dict[str, Any]]]:
    """Everything a run exposes: sink multisets + metric counters."""
    data = {
        sink.name: sorted(
            (d.kind, d.payload, d.producer, d.timestamp)
            for d in sink.received
        )
        for sink in sinks
    }
    stats: Optional[Dict[str, Any]] = None
    if hub is not None:
        # Compare counter *values*, not instrument existence: fused
        # chains pre-create every member's instruments (value 0), while
        # interpreted dispatch creates them lazily on first increment --
        # absent and zero mean the same thing.  Latency histogram values
        # are wall-clock and excluded by design (module docstring).
        stats = {}
        for name, entry in hub.component_stats().items():
            counters = {
                k: v for k, v in entry.items() if k != "latency" and v != 0
            }
            if counters:
                stats[name] = counters
    return data, stats


payloads = st.lists(
    st.integers(min_value=0, max_value=20), min_size=1, max_size=6
)
actions = st.one_of(
    st.tuples(st.just("inject"), payloads, st.sampled_from(KINDS)),
    st.tuples(st.just("batch"), payloads, st.sampled_from(KINDS)),
    st.tuples(st.just("attach"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("detach"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("remove"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("insert"), st.integers(min_value=0, max_value=7)),
)
stage_specs = st.lists(
    st.tuples(st.sampled_from(BEHAVIORS), st.sampled_from(ACCEPT_SETS)),
    min_size=2,
    max_size=7,
)


@given(
    stages=stage_specs,
    branch_at=st.none() | st.integers(min_value=0, max_value=6),
    script=st.lists(actions, min_size=1, max_size=10),
    hub=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_compiled_equivalent_to_interpreted(
    stages: List[StageSpec],
    branch_at: Optional[int],
    script: List[Tuple[Any, ...]],
    hub: bool,
) -> None:
    """Random pipelines + scripts: every observable matches exactly."""
    compiled_graph, compiled_sinks, compiled_hub = build_pipeline(
        stages, branch_at, hub=hub
    )
    interp_graph, interp_sinks, interp_hub = build_pipeline(
        stages, branch_at, hub=hub
    )
    interp_graph.set_compilation(False)
    assert (
        interp_graph.plan_snapshot()["fallback_reason"]
        == "compilation-disabled"
    )

    compiled_raised = run_script(compiled_graph, script, len(stages))
    interp_raised = run_script(interp_graph, script, len(stages))

    assert compiled_raised == interp_raised
    assert observed(compiled_sinks, compiled_hub) == observed(
        interp_sinks, interp_hub
    )
    # The compiled plan tracked every structural mutation the script made.
    assert (
        compiled_graph.plan_snapshot()["version"]
        == compiled_graph.topology_version
    )


def build_mutating_pipeline(
    depth: int, mut_pos: int, mutation: str, trigger: int
) -> Tuple[ProcessingGraph, ApplicationSink]:
    """A linear chain whose stage ``mut_pos`` mutates the graph from
    inside its own fn the first time it sees ``trigger`` -- forcing the
    fused chain to decompile mid delivery."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", KINDS))
    sink = ApplicationSink("app", KINDS)
    graph.add(sink)
    m = mut_pos % depth
    fired: List[bool] = []

    def mutate(d: Datum) -> Datum:
        if d.payload == trigger and not fired:
            fired.append(True)
            try:
                if mutation == "remove_next":
                    graph.remove(f"s{(m + 1) % depth}", reconnect=True)
                elif mutation == "remove_prev":
                    graph.remove(f"s{(m - 1) % depth}", reconnect=True)
                elif mutation == "remove_self":
                    graph.remove(f"s{m}", reconnect=True)
                else:
                    assert mutation == "insert_after"
                    edges = sorted(
                        graph.connections(),
                        key=lambda c: (c.producer, c.consumer, c.port),
                    )
                    edge = edges[trigger % len(edges)]
                    graph.insert_between(
                        edge.producer,
                        edge.consumer,
                        FunctionComponent("ins0", KINDS, KINDS, lambda x: x),
                    )
            except GraphError:
                pass
        return d

    for i in range(depth):
        fn: Callable[[Datum], Datum] = mutate if i == m else (lambda d: d)
        graph.add(FunctionComponent(f"s{i}", KINDS, KINDS, fn))
        graph.connect("src" if i == 0 else f"s{i - 1}", f"s{i}")
    graph.connect(f"s{depth - 1}", "app")
    return graph, sink


@given(
    depth=st.integers(min_value=3, max_value=6),
    mut_pos=st.integers(min_value=0, max_value=5),
    mutation=st.sampled_from(
        ("remove_next", "remove_prev", "remove_self", "insert_after")
    ),
    trigger=st.integers(min_value=0, max_value=9),
    workload=st.lists(
        st.tuples(
            st.booleans(),  # batched?
            st.lists(
                st.integers(min_value=0, max_value=9),
                min_size=1,
                max_size=8,
            ),
        ),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=80, deadline=None)
def test_mid_delivery_mutation_decompiles_equivalently(
    depth: int,
    mut_pos: int,
    mutation: str,
    trigger: int,
    workload: List[Tuple[bool, List[int]]],
) -> None:
    """A structural mutation fired from *inside* a fused member lands at
    the same point interpreted dispatch would apply it: the surviving
    data reaches the same sinks either way."""
    compiled_graph, compiled_sink = build_mutating_pipeline(
        depth, mut_pos, mutation, trigger
    )
    interp_graph, interp_sink = build_mutating_pipeline(
        depth, mut_pos, mutation, trigger
    )
    interp_graph.set_compilation(False)

    for batched, group in workload:
        for graph in (compiled_graph, interp_graph):
            src = graph.component("src")
            datums = [Datum("x", p, float(p)) for p in group]
            if batched:
                src.inject_batch(datums)
            else:
                for datum in datums:
                    src.inject(datum)

    assert observed([compiled_sink], None) == observed([interp_sink], None)
    assert (
        compiled_graph.plan_snapshot()["version"]
        == compiled_graph.topology_version
    )


def _ticker() -> Callable[[], float]:
    t = [0.0]

    def fn() -> float:
        t[0] += 1.0
        return t[0]

    return fn


def build_supervised_pipeline(
    threshold: int,
) -> Tuple[ProcessingGraph, ApplicationSink, Supervisor]:
    """src -> ok0 -> bad -> ok1 -> app under a quarantine supervisor."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", KINDS))
    sink = ApplicationSink("app", KINDS)
    graph.add(sink)

    def bad_fn(d: Datum) -> Datum:
        if d.payload % 2:
            raise ValueError(f"poisoned {d.payload}")
        return d

    graph.add(FunctionComponent("ok0", KINDS, KINDS, lambda d: d))
    graph.add(FunctionComponent("bad", KINDS, KINDS, bad_fn))
    graph.add(FunctionComponent("ok1", KINDS, KINDS, lambda d: d))
    graph.connect("src", "ok0")
    graph.connect("ok0", "bad")
    graph.connect("bad", "ok1")
    graph.connect("ok1", "app")
    supervisor = Supervisor(
        SupervisionPolicy(
            mode="quarantine",
            failure_threshold=threshold,
            window_s=1e6,
            half_open_after_s=1e9,
        ),
        time_fn=_ticker(),
    )
    graph.set_supervisor(supervisor)
    return graph, sink, supervisor


@given(
    threshold=st.integers(min_value=1, max_value=3),
    batched=st.booleans(),
    group=st.lists(
        st.integers(min_value=0, max_value=9), min_size=2, max_size=10
    ),
    after=st.lists(
        st.integers(min_value=0, max_value=9), min_size=1, max_size=6
    ),
)
@settings(max_examples=60, deadline=None)
def test_breaker_trips_gate_fusion_and_stay_equivalent(
    threshold: int, batched: bool, group: List[int], after: List[int]
) -> None:
    """Under a supervisor the plan is gated (trivially equivalent), and
    lifting the supervisor mid-run re-fuses without losing equivalence
    -- breaker state included."""
    compiled_graph, compiled_sink, compiled_sup = build_supervised_pipeline(
        threshold
    )
    interp_graph, interp_sink, interp_sup = build_supervised_pipeline(
        threshold
    )
    interp_graph.set_compilation(False)
    assert (
        compiled_graph.plan_snapshot()["fallback_reason"]
        == "supervisor-installed"
    )

    for graph in (compiled_graph, interp_graph):
        src = graph.component("src")
        datums = [Datum("x", p, float(p)) for p in group]
        if batched:
            src.inject_batch(datums)
        else:
            for datum in datums:
                src.inject(datum)

    assert compiled_sup.health_states() == interp_sup.health_states()
    assert compiled_sup.failure_count("bad") == interp_sup.failure_count(
        "bad"
    )
    assert observed([compiled_sink], None) == observed([interp_sink], None)

    # Lift supervision: the compiled graph fuses again, the interpreted
    # twin stays interpreted, and the post-trip traffic still matches.
    compiled_graph.set_supervisor(None)
    interp_graph.set_supervisor(None)
    snapshot = compiled_graph.plan_snapshot()
    assert snapshot["fallback_reason"] is None
    assert [c["members"] for c in snapshot["chains"]] == [
        ["ok0", "bad", "ok1"]
    ]
    for graph in (compiled_graph, interp_graph):
        src = graph.component("src")
        for p in after:
            try:
                src.inject(Datum("x", p, float(p)))
            except ValueError:
                pass  # unsupervised failures propagate -- on both sides
    assert observed([compiled_sink], None) == observed([interp_sink], None)
