"""Tests for processing components, ports and the feature chain."""

import pytest

from repro.core.component import (
    ApplicationSink,
    ComponentError,
    FunctionComponent,
    InputPort,
    OutputPort,
    ProcessingComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.features import ComponentFeature, FeatureError
from repro.core.graph import ProcessingGraph


def datum(kind="x", payload=1, t=0.0, producer=""):
    return Datum(kind, payload, t, producer)


class Doubler(FunctionComponent):
    def __init__(self, name="doubler"):
        super().__init__(
            name,
            accepts=("x",),
            capabilities=("x",),
            fn=lambda d: d.with_payload(d.payload * 2),
        )


class TestPorts:
    def test_duplicate_port_names_rejected(self):
        class Bad(ProcessingComponent):
            def process(self, port_name, datum):
                pass

        with pytest.raises(ComponentError):
            Bad(
                "bad",
                inputs=(InputPort("in", ("x",)), InputPort("in", ("y",))),
                output=OutputPort(()),
            )

    def test_unknown_port_lookup(self):
        comp = Doubler()
        with pytest.raises(ComponentError):
            comp.input_port("nope")

    def test_receive_wrong_kind_rejected(self):
        comp = Doubler()
        with pytest.raises(ComponentError):
            comp.receive("in", datum(kind="unrelated"))

    def test_produce_undeclared_kind_rejected(self):
        comp = FunctionComponent(
            "c", accepts=("x",), capabilities=("x",),
            fn=lambda d: Datum("y", 1, 0.0),
        )
        with pytest.raises(ComponentError):
            comp.receive("in", datum())

    def test_source_has_no_inputs(self):
        source = SourceComponent("s", ("x",))
        assert source.is_source
        with pytest.raises(ComponentError):
            source.process("in", datum())


class TestDataFlow:
    def wire(self, *components):
        graph = ProcessingGraph()
        for c in components:
            graph.add(c)
        for a, b in zip(components, components[1:]):
            graph.connect(a.name, b.name)
        return graph

    def test_function_component_transforms(self):
        source = SourceComponent("s", ("x",))
        double = Doubler()
        sink = ApplicationSink("app", ("x",))
        self.wire(source, double, sink)
        source.inject(datum(payload=21))
        assert sink.last().payload == 42

    def test_function_component_can_drop(self):
        source = SourceComponent("s", ("x",))
        drop = FunctionComponent(
            "drop", ("x",), ("x",),
            fn=lambda d: None if d.payload < 0 else d,
        )
        sink = ApplicationSink("app", ("x",))
        self.wire(source, drop, sink)
        source.inject(datum(payload=-1))
        source.inject(datum(payload=5))
        assert [d.payload for d in sink.received] == [5]

    def test_function_component_can_fan_out_results(self):
        source = SourceComponent("s", ("x",))
        split = FunctionComponent(
            "split", ("x",), ("x",),
            fn=lambda d: [d.with_payload(p) for p in d.payload],
        )
        sink = ApplicationSink("app", ("x",))
        self.wire(source, split, sink)
        source.inject(datum(payload=[1, 2, 3]))
        assert [d.payload for d in sink.received] == [1, 2, 3]

    def test_producer_attribution_defaults_to_component(self):
        source = SourceComponent("s", ("x",))
        sink = ApplicationSink("app", ("x",))
        self.wire(source, sink)
        source.inject(Datum("x", 1, 0.0))
        assert sink.last().producer == "s"

    def test_sink_bounded_history(self):
        source = SourceComponent("s", ("x",))
        sink = ApplicationSink("app", ("x",), keep_last=3)
        self.wire(source, sink)
        for i in range(10):
            source.inject(datum(payload=i))
        assert [d.payload for d in sink.received] == [7, 8, 9]

    def test_sink_listener_and_removal(self):
        source = SourceComponent("s", ("x",))
        sink = ApplicationSink("app", ("x",))
        self.wire(source, sink)
        seen = []
        remove = sink.add_listener(lambda d: seen.append(d.payload))
        source.inject(datum(payload=1))
        remove()
        source.inject(datum(payload=2))
        assert seen == [1]

    def test_sink_last_by_kind(self):
        sink = ApplicationSink("app", ("x", "y"))
        graph = ProcessingGraph()
        graph.add(sink)
        sink.receive("in", datum(kind="x", payload="ex"))
        sink.receive("in", datum(kind="y", payload="why"))
        assert sink.last("x").payload == "ex"
        assert sink.last().payload == "why"
        assert sink.last("z") is None


class UppercaseFeature(ComponentFeature):
    name = "Uppercase"

    def produce(self, d):
        return d.with_payload(str(d.payload).upper())


class DropNegative(ComponentFeature):
    name = "DropNegative"

    def consume(self, d):
        if isinstance(d.payload, int) and d.payload < 0:
            return None
        return d


class KindChanger(ComponentFeature):
    name = "KindChanger"

    def produce(self, d):
        return Datum("other", d.payload, d.timestamp)


class TestFeatureChain:
    def make_pipeline(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        middle = FunctionComponent("m", ("x",), ("x",), fn=lambda d: d)
        sink = ApplicationSink("app", ("x",))
        for c in (source, middle, sink):
            graph.add(c)
        graph.connect("s", "m")
        graph.connect("m", "app")
        return graph, source, middle, sink

    def test_produce_hook_rewrites_outgoing(self):
        _g, source, middle, sink = self.make_pipeline()
        middle.attach_feature(UppercaseFeature())
        source.inject(datum(payload="hello"))
        assert sink.last().payload == "HELLO"

    def test_consume_hook_can_drop_incoming(self):
        _g, source, middle, sink = self.make_pipeline()
        middle.attach_feature(DropNegative())
        source.inject(datum(payload=-5))
        source.inject(datum(payload=5))
        assert [d.payload for d in sink.received] == [5]

    def test_feature_cannot_change_kind(self):
        _g, source, middle, _sink = self.make_pipeline()
        middle.attach_feature(KindChanger())
        with pytest.raises(FeatureError):
            source.inject(datum(payload=1))

    def test_features_apply_in_attachment_order(self):
        class AppendA(ComponentFeature):
            name = "A"

            def produce(self, d):
                return d.with_payload(d.payload + "a")

        class AppendB(ComponentFeature):
            name = "B"

            def produce(self, d):
                return d.with_payload(d.payload + "b")

        _g, source, middle, sink = self.make_pipeline()
        middle.attach_feature(AppendA())
        middle.attach_feature(AppendB())
        source.inject(datum(payload="x"))
        assert sink.last().payload == "xab"

    def test_duplicate_feature_name_rejected(self):
        _g, _s, middle, _sink = self.make_pipeline()
        middle.attach_feature(UppercaseFeature())
        with pytest.raises(FeatureError):
            middle.attach_feature(UppercaseFeature())

    def test_detach_feature_restores_behaviour(self):
        _g, source, middle, sink = self.make_pipeline()
        middle.attach_feature(UppercaseFeature())
        middle.detach_feature("Uppercase")
        source.inject(datum(payload="quiet"))
        assert sink.last().payload == "quiet"

    def test_detach_unknown_feature(self):
        _g, _s, middle, _sink = self.make_pipeline()
        with pytest.raises(FeatureError):
            middle.detach_feature("ghost")

    def test_get_feature_by_name_and_class(self):
        _g, _s, middle, _sink = self.make_pipeline()
        feature = UppercaseFeature()
        middle.attach_feature(feature)
        assert middle.get_feature("Uppercase") is feature
        assert middle.get_feature(UppercaseFeature) is feature
        assert middle.get_feature("Other") is None

    def test_describe_lists_features_and_methods(self):
        _g, _s, middle, _sink = self.make_pipeline()
        middle.attach_feature(UppercaseFeature())
        info = middle.describe()
        assert info["features"] == ["Uppercase"]
        assert "name" in info and info["name"] == "m"
