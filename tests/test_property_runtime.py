"""Property tests: batched dispatch is observationally equivalent to
per-datum routing (hypothesis).

``route_batch`` amortises routing-table resolution over a batch and
moves the batch stage-by-stage (breadth-first within each route), where
per-datum ``produce`` recurses depth-first.  The pinned contract is
therefore *multiset* equivalence: for any graph reached purely through
public mutations and any batch, every (consumer, port, kind, payload)
delivery happens exactly as often either way -- only the interleaving
across datums of one batch may differ.  With tracing enabled the batch
path falls back to per-datum delivery, so each datum's recorded flow
trace must match the per-datum run *exactly*, not just as a multiset.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.component import FunctionComponent
from repro.core.data import Datum
from repro.core.graph import GraphError, GraphObserver, ProcessingGraph
from repro.observability.instrumentation import ObservabilityHub
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import trace_of

NAMES = ("c0", "c1", "c2", "c3", "c4", "c5")
KINDS = ("x", "y")

kind_sets = st.lists(
    st.sampled_from(KINDS), min_size=1, max_size=2, unique=True
).map(tuple)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.sampled_from(NAMES), kind_sets),
        st.tuples(
            st.just("remove"), st.sampled_from(NAMES), st.booleans()
        ),
        st.tuples(
            st.just("connect"),
            st.sampled_from(NAMES),
            st.sampled_from(NAMES),
        ),
        st.tuples(
            st.just("disconnect"),
            st.sampled_from(NAMES),
            st.sampled_from(NAMES),
        ),
    ),
    min_size=1,
    max_size=30,
)

batch_shape = st.lists(st.sampled_from(KINDS), min_size=1, max_size=6)


def apply_operations(graph, ops):
    """Apply ``ops`` to ``graph``, skipping invalid ones.

    Deterministic given ``ops``: the same sequence yields the same
    topology, which is what lets two graphs be built as exact twins.
    """
    for op in ops:
        try:
            if op[0] == "add":
                _, name, kinds = op
                graph.add(FunctionComponent(name, kinds, kinds, fn=lambda d: d))
            elif op[0] == "remove":
                _, name, reconnect = op
                graph.remove(name, reconnect=reconnect)
            elif op[0] == "connect":
                graph.connect(op[1], op[2])
            else:
                graph.disconnect(op[1], op[2])
        except GraphError:
            continue
    return graph


class Recorder(GraphObserver):
    def __init__(self):
        self.events = []
        self.datums = []

    def data_consumed(self, component, port_name, datum):
        self.events.append((component.name, port_name, datum.kind, datum.payload))
        self.datums.append((component.name, datum))


def make_batch(shape, start, component):
    """Unique-payload datums following ``shape``, restricted to kinds
    the producing component is able to emit."""
    capabilities = component.output_port.capabilities
    return [
        Datum(kind, start + index, 0.0)
        for index, kind in enumerate(shape)
        if kind in capabilities
    ]


def run_per_datum(graph, producer, batch):
    recorder = Recorder()
    unsubscribe = graph.add_observer(recorder)
    try:
        for datum in batch:
            graph.component(producer).produce(datum)
    finally:
        unsubscribe()
    return recorder


def run_batched(graph, producer, batch):
    recorder = Recorder()
    unsubscribe = graph.add_observer(recorder)
    try:
        graph.component(producer).produce_batch(batch)
    finally:
        unsubscribe()
    return recorder


@settings(max_examples=60, deadline=None)
@given(ops=operations, shape=batch_shape)
def test_route_batch_multiset_equivalent_to_per_datum(ops, shape):
    reference = apply_operations(ProcessingGraph(), ops)
    batched = apply_operations(ProcessingGraph(), ops)
    payload = 0
    for component in list(reference.components()):
        payload += 100
        batch = make_batch(shape, payload, component)
        if not batch:
            continue
        expected = run_per_datum(reference, component.name, batch)
        actual = run_batched(batched, component.name, batch)
        assert Counter(actual.events) == Counter(expected.events)


@settings(max_examples=40, deadline=None)
@given(ops=operations, shape=batch_shape)
def test_route_batch_with_tracing_matches_per_datum_traces(ops, shape):
    reference = apply_operations(ProcessingGraph(), ops)
    batched = apply_operations(ProcessingGraph(), ops)
    reference.set_instrumentation(ObservabilityHub(MetricsRegistry(), tracing=True))
    batched.set_instrumentation(ObservabilityHub(MetricsRegistry(), tracing=True))
    payload = 0
    for component in list(reference.components()):
        payload += 100
        batch = make_batch(shape, payload, component)
        if not batch:
            continue
        expected = run_per_datum(reference, component.name, batch)
        actual = run_batched(batched, component.name, batch)

        def trace_paths(recorder):
            paths = set()
            for consumer, datum in recorder.datums:
                trace = trace_of(datum)
                hops = (
                    tuple(hop.component for hop in trace.hops)
                    if trace is not None
                    else None
                )
                paths.add((consumer, datum.payload, datum.kind, hops))
            return paths

        assert Counter(actual.events) == Counter(expected.events)
        assert trace_paths(actual) == trace_paths(expected)


@settings(max_examples=30, deadline=None)
@given(ops=operations, shape=batch_shape)
def test_route_batch_with_metrics_only_counts_match(ops, shape):
    """The fused (untraced) hub path: per-component item counters must
    come out identical to the per-datum run; only the latency sample
    count may differ (one observation per batch)."""
    reference = apply_operations(ProcessingGraph(), ops)
    batched = apply_operations(ProcessingGraph(), ops)
    reference_hub = ObservabilityHub(MetricsRegistry(), tracing=False)
    batched_hub = ObservabilityHub(MetricsRegistry(), tracing=False)
    reference.set_instrumentation(reference_hub)
    batched.set_instrumentation(batched_hub)
    payload = 0
    for component in list(reference.components()):
        payload += 100
        batch = make_batch(shape, payload, component)
        if not batch:
            continue
        run_per_datum(reference, component.name, batch)
        run_batched(batched, component.name, batch)

    for name in (c.name for c in reference.components()):
        expected = reference_hub.component_stats(name)
        actual = batched_hub.component_stats(name)
        assert actual.get("items_in") == expected.get("items_in")
        assert actual.get("items_out") == expected.get("items_out")
        assert actual.get("errors") == expected.get("errors")
