"""Property-based tests on observability invariants (hypothesis).

Mirrors ``tests/test_property_core.py``: random DAGs and random datum
sequences, with the hub installed.  Invariants:

* conservation -- sinks cannot consume more items than sources produce
  (components here never amplify data);
* every recorded flow trace is a path that exists in the graph;
* metrics bookkeeping matches ground truth observable at the sinks.
"""

from hypothesis import given, settings, strategies as st

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import GraphError, ProcessingGraph
from repro.observability import ObservabilityHub, trace_of


def random_dag(data, max_nodes=6, max_edges=12):
    """A random acyclic graph of pass-through components plus sinks.

    Sources are components 0..k; whatever connect() accepts is kept,
    exactly as in the core property tests.  Every terminal component
    gets an ApplicationSink attached so deliveries are observable.
    """
    n = data.draw(st.integers(min_value=2, max_value=max_nodes))
    graph = ProcessingGraph()
    n_sources = data.draw(st.integers(min_value=1, max_value=n))
    sources = []
    for i in range(n_sources):
        source = SourceComponent(f"s{i}", ("x",))
        graph.add(source)
        sources.append(source)
    for i in range(n - n_sources):
        graph.add(
            FunctionComponent(f"c{i}", ("x",), ("x",), fn=lambda d: d)
        )
    names = [c.name for c in graph.components()]
    attempts = data.draw(st.integers(min_value=0, max_value=max_edges))
    for _ in range(attempts):
        a = data.draw(st.sampled_from(names))
        b = data.draw(st.sampled_from(names))
        try:
            graph.connect(a, b)
        except GraphError:
            pass
    sinks = []
    for terminal in list(graph.sinks()):
        if isinstance(terminal, (SourceComponent, FunctionComponent)):
            sink = ApplicationSink(f"app-{terminal.name}", ("x",))
            graph.add(sink)
            graph.connect(terminal.name, sink.name)
            sinks.append(sink)
        elif isinstance(terminal, ApplicationSink):
            sinks.append(terminal)
    return graph, sources, sinks


class TestObservedRandomDags:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_sinks_consume_at_most_what_sources_produce(self, data):
        graph, sources, sinks = random_dag(data)
        hub = ObservabilityHub(time_fn=lambda: 0.0)
        graph.set_instrumentation(hub)
        n_items = data.draw(st.integers(min_value=0, max_value=20))
        for i in range(n_items):
            source = data.draw(st.sampled_from(sources))
            source.inject(Datum("x", i, float(i)))
        stats = hub.component_stats()
        produced_by_sources = sum(
            stats.get(s.name, {}).get("items_out", 0) for s in sources
        )
        consumed_by_sinks = sum(
            stats.get(k.name, {}).get("items_in", 0) for k in sinks
        )
        assert produced_by_sources == n_items
        # Conservation: components never amplify data, so the sink set
        # as a whole never consumes more than the graph produced in
        # total (reconvergent fan-out can make one sink exceed the
        # source count, but not the total), and each sink -- hanging
        # off exactly one terminal -- sees exactly what that terminal
        # emitted.
        total_produced = sum(
            s.get("items_out", 0) for s in stats.values()
        )
        assert consumed_by_sinks <= total_produced
        for sink in sinks:
            upstream = graph.upstream(sink.name)
            assert len(upstream) == 1
            assert stats.get(sink.name, {}).get("items_in", 0) == stats.get(
                upstream[0], {}
            ).get("items_out", 0)
        # And items actually stored at sinks match the recorded metrics.
        assert consumed_by_sinks == sum(len(k.received) for k in sinks)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_trace_is_a_graph_path(self, data):
        graph, sources, sinks = random_dag(data)
        hub = ObservabilityHub(time_fn=lambda: 0.0)
        graph.set_instrumentation(hub)
        n_items = data.draw(st.integers(min_value=1, max_value=15))
        for i in range(n_items):
            source = data.draw(st.sampled_from(sources))
            source.inject(Datum("x", i, float(i)))
        edges = {
            (c.producer, c.consumer) for c in graph.connections()
        }
        component_names = {c.name for c in graph.components()}
        for sink in sinks:
            for datum in sink.received:
                trace = trace_of(datum)
                assert trace is not None and len(trace) >= 1
                # The trace starts at a true source of the graph.
                assert not graph.upstream(trace.path[0])
                for node in trace.path:
                    assert node in component_names
                for a, b in zip(trace.path, trace.path[1:]):
                    assert (a, b) in edges

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_hop_timestamps_never_decrease(self, data):
        graph, sources, sinks = random_dag(data)
        clock = {"now": 0.0}
        hub = ObservabilityHub(time_fn=lambda: clock["now"])
        graph.set_instrumentation(hub)
        n_items = data.draw(st.integers(min_value=1, max_value=10))
        for i in range(n_items):
            clock["now"] += data.draw(
                st.floats(min_value=0.0, max_value=5.0)
            )
            data.draw(st.sampled_from(sources)).inject(
                Datum("x", i, clock["now"])
            )
        for sink in sinks:
            for datum in sink.received:
                stamps = [h.timestamp for h in trace_of(datum)]
                assert stamps == sorted(stamps)
