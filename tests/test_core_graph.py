"""Tests for the processing graph: wiring, validation, routing."""

import pytest

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    InputPort,
    OutputPort,
    ProcessingComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.features import ComponentFeature
from repro.core.graph import GraphError, GraphObserver, ProcessingGraph


def passthrough(name, accepts=("x",), capabilities=("x",), **kwargs):
    return FunctionComponent(
        name, accepts, capabilities, fn=lambda d: d, **kwargs
    )


class TestMembership:
    def test_duplicate_name_rejected(self):
        graph = ProcessingGraph()
        graph.add(passthrough("a"))
        with pytest.raises(GraphError):
            graph.add(passthrough("a"))

    def test_unknown_component_lookup(self):
        with pytest.raises(GraphError):
            ProcessingGraph().component("ghost")

    def test_contains(self):
        graph = ProcessingGraph()
        graph.add(passthrough("a"))
        assert "a" in graph
        assert "b" not in graph

    def test_remove_detaches_delivery(self):
        graph = ProcessingGraph()
        a = SourceComponent("a", ("x",))
        graph.add(a)
        graph.remove("a")
        # Producing after removal must not crash or deliver anywhere.
        a.inject(Datum("x", 1, 0.0))
        assert "a" not in graph


class TestConnectValidation:
    def test_connect_requires_kind_overlap(self):
        graph = ProcessingGraph()
        graph.add(SourceComponent("s", ("x",)))
        graph.add(passthrough("c", accepts=("y",)))
        with pytest.raises(GraphError):
            graph.connect("s", "c")

    def test_connect_checks_required_features(self):
        graph = ProcessingGraph()
        graph.add(SourceComponent("s", ("x",)))
        graph.add(
            passthrough("c", required_features=("SomeFeature",))
        )
        with pytest.raises(GraphError) as err:
            graph.connect("s", "c")
        assert "SomeFeature" in str(err.value)

    def test_connect_succeeds_once_feature_attached(self):
        class SomeFeature(ComponentFeature):
            name = "SomeFeature"

        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        graph.add(source)
        graph.add(passthrough("c", required_features=("SomeFeature",)))
        source.attach_feature(SomeFeature())
        graph.connect("s", "c")

    def test_self_loop_rejected(self):
        graph = ProcessingGraph()
        graph.add(passthrough("a"))
        with pytest.raises(GraphError):
            graph.connect("a", "a")

    def test_cycle_rejected(self):
        graph = ProcessingGraph()
        for name in ("a", "b", "c"):
            graph.add(passthrough(name))
        graph.connect("a", "b")
        graph.connect("b", "c")
        with pytest.raises(GraphError):
            graph.connect("c", "a")

    def test_duplicate_connection_rejected(self):
        graph = ProcessingGraph()
        graph.add(SourceComponent("s", ("x",)))
        graph.add(passthrough("c"))
        graph.connect("s", "c")
        with pytest.raises(GraphError):
            graph.connect("s", "c")

    def test_port_autoselection(self):
        class TwoPort(ProcessingComponent):
            def __init__(self):
                super().__init__(
                    "two",
                    inputs=(
                        InputPort("first", ("y",)),
                        InputPort("second", ("x",)),
                    ),
                    output=OutputPort(()),
                )

            def process(self, port_name, datum):
                pass

        graph = ProcessingGraph()
        graph.add(SourceComponent("s", ("x",)))
        graph.add(TwoPort())
        connection = graph.connect("s", "two")
        assert connection.port == "second"

    def test_disconnect_unknown_edge(self):
        graph = ProcessingGraph()
        graph.add(passthrough("a"))
        graph.add(passthrough("b"))
        with pytest.raises(GraphError):
            graph.disconnect("a", "b")


class TestRoutingAndManipulation:
    def build_chain(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        mid = passthrough("m")
        sink = ApplicationSink("app", ("x",))
        for c in (source, mid, sink):
            graph.add(c)
        graph.connect("s", "m")
        graph.connect("m", "app")
        return graph, source, sink

    def test_delivery_along_chain(self):
        _graph, source, sink = self.build_chain()
        source.inject(Datum("x", 7, 0.0))
        assert sink.last().payload == 7

    def test_fanout_delivers_to_all_consumers(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        sink_a = ApplicationSink("a", ("x",))
        sink_b = ApplicationSink("b", ("x",))
        for c in (source, sink_a, sink_b):
            graph.add(c)
        graph.connect("s", "a")
        graph.connect("s", "b")
        source.inject(Datum("x", 1, 0.0))
        assert sink_a.last().payload == 1
        assert sink_b.last().payload == 1

    def test_kind_filtering_at_port(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x", "y"))
        sink = ApplicationSink("app", ("x",))
        graph.add(source)
        graph.add(sink)
        graph.connect("s", "app")
        source.inject(Datum("y", "dropped", 0.0))
        source.inject(Datum("x", "kept", 0.0))
        assert [d.payload for d in sink.received] == ["kept"]

    def test_insert_between(self):
        graph, source, sink = self.build_chain()
        stamp = FunctionComponent(
            "stamp", ("x",), ("x",),
            fn=lambda d: d.with_payload(f"[{d.payload}]"),
        )
        graph.insert_between("m", "app", stamp)
        source.inject(Datum("x", "v", 0.0))
        assert sink.last().payload == "[v]"
        assert graph.downstream("m") == ["stamp"]

    def test_insert_between_requires_existing_edge(self):
        graph, _source, _sink = self.build_chain()
        with pytest.raises(GraphError):
            graph.insert_between("s", "app", passthrough("new"))

    def test_remove_with_reconnect_keeps_flow(self):
        graph, source, sink = self.build_chain()
        graph.remove("m", reconnect=True)
        source.inject(Datum("x", 3, 0.0))
        assert sink.last().payload == 3

    def test_remove_without_reconnect_breaks_flow(self):
        graph, source, sink = self.build_chain()
        graph.remove("m", reconnect=False)
        source.inject(Datum("x", 3, 0.0))
        assert sink.received == []


class TestTraversal:
    def diamond(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        left = passthrough("l")
        right = passthrough("r")
        merge = ApplicationSink("m", ("x",))
        for c in (source, left, right, merge):
            graph.add(c)
        graph.connect("s", "l")
        graph.connect("s", "r")
        graph.connect("l", "m")
        graph.connect("r", "m")
        return graph

    def test_upstream_downstream(self):
        graph = self.diamond()
        assert sorted(graph.downstream("s")) == ["l", "r"]
        assert sorted(graph.upstream("m")) == ["l", "r"]

    def test_ancestors_descendants(self):
        graph = self.diamond()
        assert graph.ancestors("m") == {"s", "l", "r"}
        assert graph.descendants("s") == {"l", "r", "m"}

    def test_sources_and_sinks(self):
        graph = self.diamond()
        assert [c.name for c in graph.sources()] == ["s"]
        assert [c.name for c in graph.sinks()] == ["m"]

    def test_merge_points(self):
        graph = self.diamond()
        assert [c.name for c in graph.merge_points()] == ["m"]

    def test_render_tree(self):
        graph = self.diamond()
        text = graph.render_tree()
        assert text.splitlines()[0] == "m"
        assert "    s" in text


class TestTopologyVersionAndIndexes:
    """The dispatch fast path: versioned routing tables + indexes."""

    def test_version_bumps_on_every_mutation(self):
        graph = ProcessingGraph()
        v0 = graph.topology_version
        graph.add(SourceComponent("s", ("x",)))
        graph.add(passthrough("a"))
        assert graph.topology_version > v0
        v1 = graph.topology_version
        graph.connect("s", "a")
        assert graph.topology_version > v1
        v2 = graph.topology_version
        graph.disconnect("s", "a")
        assert graph.topology_version > v2
        v3 = graph.topology_version
        graph.remove("a")
        assert graph.topology_version > v3

    def test_version_untouched_by_data_flow(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        sink = ApplicationSink("app", ("x",))
        graph.add(source)
        graph.add(sink)
        graph.connect("s", "app")
        version = graph.topology_version
        for i in range(5):
            source.inject(Datum("x", i, 0.0))
        assert graph.topology_version == version

    def test_routing_tracks_disconnect(self):
        """The (producer, kind) memo must invalidate on edge removal."""
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        sink_a = ApplicationSink("a", ("x",))
        sink_b = ApplicationSink("b", ("x",))
        for c in (source, sink_a, sink_b):
            graph.add(c)
        graph.connect("s", "a")
        graph.connect("s", "b")
        source.inject(Datum("x", 1, 0.0))  # warms the route memo
        graph.disconnect("s", "b")
        source.inject(Datum("x", 2, 0.0))
        assert [d.payload for d in sink_a.received] == [1, 2]
        assert [d.payload for d in sink_b.received] == [1]

    def test_routing_tracks_new_connection(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        sink_a = ApplicationSink("a", ("x",))
        sink_b = ApplicationSink("b", ("x",))
        for c in (source, sink_a, sink_b):
            graph.add(c)
        graph.connect("s", "a")
        source.inject(Datum("x", 1, 0.0))
        graph.connect("s", "b")
        source.inject(Datum("x", 2, 0.0))
        assert [d.payload for d in sink_b.received] == [2]

    def test_upstream_downstream_maps(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        mid = passthrough("m")
        sink = ApplicationSink("app", ("x",))
        for c in (source, mid, sink):
            graph.add(c)
        graph.connect("s", "m")
        graph.connect("m", "app")
        assert graph.downstream_map() == {"s": ["m"], "m": ["app"]}
        assert graph.upstream_map() == {"m": ["s"], "app": ["m"]}

    def test_sources_with_unconnected_consumer(self):
        """A component with declared inputs but no inbound edge is a
        source by the 'no inbound connections' definition."""
        graph = ProcessingGraph()
        graph.add(SourceComponent("s", ("x",)))
        graph.add(passthrough("loose"))
        graph.add(ApplicationSink("app", ("x",)))
        graph.connect("s", "app")
        assert sorted(c.name for c in graph.sources()) == ["loose", "s"]

    def test_remove_merge_point_reconnects_all_upstreams(self):
        """Regression: deleting a merge component splices every upstream
        producer into every downstream consumer."""
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        left = passthrough("l")
        right = passthrough("r")
        merge = passthrough("m")
        sink = ApplicationSink("app", ("x",))
        for c in (source, left, right, merge, sink):
            graph.add(c)
        graph.connect("s", "l")
        graph.connect("s", "r")
        graph.connect("l", "m")
        graph.connect("r", "m")
        graph.connect("m", "app")
        graph.remove("m", reconnect=True)
        assert sorted(graph.upstream("app")) == ["l", "r"]
        source.inject(Datum("x", 5, 0.0))
        # Both strands still deliver: the datum arrives once per strand.
        assert [d.payload for d in sink.received] == [5, 5]

    def test_reentrant_removal_mid_delivery_skips_stale_consumer(self):
        """A component removed by an upstream consumer *during* delivery
        must not receive the in-flight datum."""
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        sink_c = ApplicationSink("c", ("x",))

        def remove_c(datum):
            if "c" in graph:
                graph.remove("c")
            return None

        remover = FunctionComponent("b", ("x",), ("x",), fn=remove_c)
        for c in (source, remover, sink_c):
            graph.add(c)
        graph.connect("s", "b")  # delivered first (edge order)
        graph.connect("s", "c")
        source.inject(Datum("x", 1, 0.0))
        assert sink_c.received == []
        assert "c" not in graph

    def test_reentrant_connect_takes_effect_for_next_dispatch(self):
        """An edge wired from inside ``process`` is live for every
        dispatch that *starts* afterwards -- including the produce call
        of the very component that added it."""
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        late = ApplicationSink("late", ("x",))

        def wire_late(datum):
            if "late" not in graph.downstream("b"):
                graph.connect("b", "late")
            return datum

        mid = FunctionComponent("b", ("x",), ("x",), fn=wire_late)
        for c in (source, mid, late):
            graph.add(c)
        graph.connect("s", "b")
        source.inject(Datum("x", 1, 0.0))
        source.inject(Datum("x", 2, 0.0))
        assert [d.payload for d in late.received] == [1, 2]


class TestObservers:
    def test_data_events_delivered(self):
        events = []

        class Recorder(GraphObserver):
            def data_consumed(self, component, port, datum):
                events.append(("consume", component.name, datum.payload))

            def data_produced(self, component, datum):
                events.append(("produce", component.name, datum.payload))

        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        sink = ApplicationSink("app", ("x",))
        graph.add(source)
        graph.add(sink)
        graph.connect("s", "app")
        graph.add_observer(Recorder())
        source.inject(Datum("x", 9, 0.0))
        assert ("produce", "s", 9) in events
        assert ("consume", "app", 9) in events

    def test_topology_events_and_unsubscribe(self):
        count = [0]

        class Topo(GraphObserver):
            def topology_changed(self, graph):
                count[0] += 1

        graph = ProcessingGraph()
        remove = graph.add_observer(Topo())
        graph.add(passthrough("a"))
        assert count[0] == 1
        remove()
        graph.add(passthrough("b"))
        assert count[0] == 1


class TestBatchDispatch:
    def build(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        graph.add(source)
        graph.add(passthrough("f"))
        sink = ApplicationSink("app", ("x",))
        graph.add(sink)
        graph.connect("s", "f", "in")
        graph.connect("f", "app", "in")
        return graph, source, sink

    def test_inject_batch_reaches_sink_in_order(self):
        graph, source, sink = self.build()
        source.inject_batch([Datum("x", i, 0.0) for i in range(5)])
        assert [d.payload for d in sink.received] == [0, 1, 2, 3, 4]

    def test_empty_batch_is_a_noop(self):
        graph, source, sink = self.build()
        source.inject_batch([])
        graph.route_batch("s", [])
        assert sink.received == []

    def test_mixed_kind_batch_groups_by_kind(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x", "y"))
        x_sink = ApplicationSink("xs", ("x",))
        y_sink = ApplicationSink("ys", ("y",))
        graph.add(source)
        graph.add(x_sink)
        graph.add(y_sink)
        graph.connect("s", "xs", "in")
        graph.connect("s", "ys", "in")
        source.inject_batch(
            [
                Datum("x", 1, 0.0),
                Datum("y", 2, 0.0),
                Datum("x", 3, 0.0),
            ]
        )
        assert [d.payload for d in x_sink.received] == [1, 3]
        assert [d.payload for d in y_sink.received] == [2]

    def test_batch_observer_events_per_datum(self):
        events = []

        class Recorder(GraphObserver):
            def data_produced(self, component, datum):
                events.append((component.name, datum.payload))

        graph, source, sink = self.build()
        graph.add_observer(Recorder())
        source.inject_batch([Datum("x", i, 0.0) for i in range(3)])
        assert events.count(("s", 0)) == 1
        assert len([e for e in events if e[0] == "s"]) == 3

    def test_produce_batch_outside_graph_falls_back(self):
        # A component not (or no longer) in a graph must not crash on
        # produce_batch -- mirrors the per-datum remove contract.
        source = SourceComponent("lone", ("x",))
        source.inject_batch([Datum("x", 1, 0.0)])
        graph, source, sink = self.build()
        graph.remove("s")
        source.inject_batch([Datum("x", 2, 0.0)])
        assert sink.received == []

    def test_default_receive_batch_loops_receive(self):
        # A component without a batch-aware override still takes part in
        # batched dispatch via the documented per-datum fallback.
        class Plain(ProcessingComponent):
            def __init__(self):
                super().__init__(
                    "plain",
                    inputs=(InputPort("in", ("x",)),),
                    output=OutputPort(("x",)),
                )
                self.seen = []

            def process(self, port_name, datum):
                self.seen.append(datum.payload)
                self.produce(datum)

        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        plain = Plain()
        sink = ApplicationSink("app", ("x",))
        graph.add(source)
        graph.add(plain)
        graph.add(sink)
        graph.connect("s", "plain", "in")
        graph.connect("plain", "app", "in")
        source.inject_batch([Datum("x", i, 0.0) for i in range(3)])
        assert plain.seen == [0, 1, 2]
        assert [d.payload for d in sink.received] == [0, 1, 2]

    def test_sink_keep_last_trimmed_after_batch(self):
        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        sink = ApplicationSink("app", ("x",), keep_last=3)
        graph.add(source)
        graph.add(sink)
        graph.connect("s", "app", "in")
        source.inject_batch([Datum("x", i, 0.0) for i in range(10)])
        assert [d.payload for d in sink.received] == [7, 8, 9]

    def test_function_component_fan_out_results(self):
        def doubler(datum):
            return [datum, datum.with_payload(datum.payload * 10)]

        graph = ProcessingGraph()
        source = SourceComponent("s", ("x",))
        fan = FunctionComponent("fan", ("x",), ("x",), fn=doubler)
        sink = ApplicationSink("app", ("x",))
        graph.add(source)
        graph.add(fan)
        graph.add(sink)
        graph.connect("s", "fan", "in")
        graph.connect("fan", "app", "in")
        source.inject_batch([Datum("x", 1, 0.0), Datum("x", 2, 0.0)])
        assert [d.payload for d in sink.received] == [1, 10, 2, 20]
