"""Tests for automatic assembly and declarative configurations (§2.1)."""

import json

import pytest

from repro.core import Kind, PerPos
from repro.core.assembly import AutoAssembler
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    InputPort,
    OutputPort,
    ProcessingComponent,
    SourceComponent,
)
from repro.core.config import (
    ComponentTypeRegistry,
    ConfigurationError,
    default_registry,
    load_configuration,
)
from repro.core.data import Datum
from repro.core.features import ComponentFeature
from repro.processing.gps_features import NumberOfSatellitesFeature


def passthrough(name, accepts, capabilities, **kwargs):
    out_kind = capabilities[0]
    return FunctionComponent(
        name,
        accepts,
        capabilities,
        fn=lambda d: Datum(out_kind, d.payload, d.timestamp),
        **kwargs,
    )


class TestAutoAssembler:
    def test_chain_assembles_in_order(self):
        assembler = AutoAssembler()
        source = SourceComponent("src", ("raw",))
        stage = passthrough("stage", ("raw",), ("cooked",))
        sink = ApplicationSink("app", ("cooked",))
        assembler.add(source)
        assembler.add(stage)
        assembler.add(sink)
        source.inject(Datum("raw", 1, 0.0))
        assert sink.last().payload == 1

    def test_chain_assembles_out_of_order(self):
        assembler = AutoAssembler()
        sink = ApplicationSink("app", ("cooked",))
        stage = passthrough("stage", ("raw",), ("cooked",))
        assembler.add(sink)
        assembler.add(stage)
        assert assembler.unresolved() == [("stage", "in")]
        source = SourceComponent("src", ("raw",))
        assembler.add(source)
        assert assembler.unresolved() == []
        source.inject(Datum("raw", 2, 0.0))
        assert sink.last().payload == 2

    def test_single_port_binds_one_producer(self):
        assembler = AutoAssembler()
        a = SourceComponent("a", ("x",))
        b = SourceComponent("b", ("x",))
        sink = ApplicationSink("app", ("x",))
        assembler.add(a)
        assembler.add(b)
        assembler.add(sink)
        feeders = [
            c.producer
            for c in assembler.graph.connections()
            if c.consumer == "app"
        ]
        assert len(feeders) == 1

    def test_multiple_port_binds_all_producers(self):
        class Merge(ProcessingComponent):
            def __init__(self):
                super().__init__(
                    "merge",
                    inputs=(InputPort("in", ("x",), multiple=True),),
                    output=OutputPort(("x",)),
                )

            def process(self, port_name, datum):
                self.produce(datum.from_producer(self.name))

        assembler = AutoAssembler()
        assembler.add(SourceComponent("a", ("x",)))
        assembler.add(SourceComponent("b", ("x",)))
        assembler.add(Merge())
        feeders = sorted(
            c.producer
            for c in assembler.graph.connections()
            if c.consumer == "merge"
        )
        assert feeders == ["a", "b"]

    def test_required_feature_gates_binding(self):
        assembler = AutoAssembler()
        source = SourceComponent("src", (Kind.NMEA_SENTENCE,))
        consumer = passthrough(
            "consumer",
            (Kind.NMEA_SENTENCE,),
            (Kind.NMEA_SENTENCE,),
            required_features=("NumberOfSatellites",),
        )
        assembler.add(source)
        assembler.add(consumer)
        assert ("consumer", "in") in assembler.unresolved()
        source.attach_feature(NumberOfSatellitesFeature())
        assembler.resolve()
        assert assembler.unresolved() == []

    def test_optional_port_not_reported_unresolved(self):
        assembler = AutoAssembler()
        consumer = FunctionComponent(
            "c", ("never",), ("never",), fn=lambda d: d
        )
        consumer._inputs["in"].optional = True
        assembler.add(consumer)
        assert assembler.unresolved() == []

    def test_no_cycles_created(self):
        assembler = AutoAssembler()
        a = passthrough("a", ("x",), ("x",))
        b = passthrough("b", ("x",), ("x",))
        assembler.add(a)
        assembler.add(b)
        connections = assembler.graph.connections()
        # One direction only; the reverse edge would be a cycle.
        assert len(connections) == 1

    def test_remove_component(self):
        assembler = AutoAssembler()
        assembler.add(SourceComponent("src", ("x",)))
        assembler.add(ApplicationSink("app", ("x",)))
        assembler.remove("src")
        assert "src" not in assembler.graph
        assert assembler.describe()["managed"] == ["app"]

    def test_describe(self):
        assembler = AutoAssembler()
        assembler.add(passthrough("stage", ("raw",), ("cooked",)))
        info = assembler.describe()
        assert info["managed"] == ["stage"]
        assert info["unresolved"] == ["stage.in"]


class TestTypeRegistry:
    def test_default_registry_contents(self):
        registry = default_registry()
        assert "nmea-parser" in registry.component_types()
        assert "hdop" in registry.feature_types()

    def test_create_component_with_params(self):
        registry = default_registry()
        component = registry.create_component(
            "satellite-filter", min_satellites=6, name="filt"
        )
        assert component.name == "filt"
        assert component.min_satellites == 6

    def test_unknown_types(self):
        registry = default_registry()
        with pytest.raises(ConfigurationError):
            registry.create_component("warp-drive")
        with pytest.raises(ConfigurationError):
            registry.create_feature("warp-feature")

    def test_duplicate_registration_rejected(self):
        registry = ComponentTypeRegistry()
        registry.register_component("x", lambda: None)
        with pytest.raises(ConfigurationError):
            registry.register_component("x", lambda: None)


class TestLoadConfiguration:
    def config(self):
        return {
            "components": [
                {"type": "nmea-parser", "name": "parser"},
                {"type": "nmea-interpreter", "name": "interpreter"},
            ],
            "features": [
                {"component": "parser", "type": "number-of-satellites"},
            ],
            "connections": [
                {"from": "parser", "to": "interpreter"},
            ],
            "providers": [
                {
                    "name": "app",
                    "accepts": [Kind.POSITION_WGS84],
                    "technologies": ["gps"],
                    "connect_from": ["interpreter"],
                }
            ],
        }

    def test_loads_full_configuration(self):
        middleware = PerPos()
        summary = load_configuration(middleware, self.config())
        assert summary["components"] == ["parser", "interpreter"]
        assert summary["features"] == ["parser#NumberOfSatellites"]
        assert summary["connections"] == ["parser->interpreter"]
        assert summary["providers"] == ["app"]
        assert middleware.graph.component("parser").has_feature(
            "NumberOfSatellites"
        )
        assert middleware.positioning.provider("app") is not None

    def test_loads_from_json_string(self):
        middleware = PerPos()
        summary = load_configuration(middleware, json.dumps(self.config()))
        assert summary["components"] == ["parser", "interpreter"]

    def test_loads_from_file(self, tmp_path):
        path = tmp_path / "system.json"
        path.write_text(json.dumps(self.config()))
        middleware = PerPos()
        summary = load_configuration(middleware, path)
        assert summary["providers"] == ["app"]

    def test_auto_connections(self):
        middleware = PerPos()
        config = {
            "components": [
                {"type": "nmea-parser", "name": "parser"},
                {"type": "nmea-interpreter", "name": "interpreter"},
            ],
            "connections": "auto",
        }
        load_configuration(middleware, config)
        assert middleware.graph.downstream("parser") == ["interpreter"]

    def test_missing_type_rejected(self):
        with pytest.raises(ConfigurationError):
            load_configuration(
                PerPos(), {"components": [{"name": "x"}]}
            )

    def test_missing_connection_fields_rejected(self):
        with pytest.raises(ConfigurationError):
            load_configuration(
                PerPos(), {"connections": [{"from": "a"}]}
            )

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError):
            load_configuration(PerPos(), "{not json")

    def test_feature_entry_validation(self):
        with pytest.raises(ConfigurationError):
            load_configuration(
                PerPos(), {"features": [{"type": "hdop"}]}
            )
