"""Tests for durable state: snapshot/restore, crash-recovery replay,
warm lane handoff, and the per-device gateway rate limiter.

Covers the :mod:`repro.durability` package bottom-up -- the value codec
(:mod:`~repro.durability.codec`), the three stdlib store backends
(:mod:`~repro.durability.store`), the mutation journal
(:mod:`~repro.durability.journal`), and the manager's capture/restore
(:mod:`~repro.durability.manager`) -- then the seams it rides on
(queue/sink/supervisor/DLQ state snapshots), the engine's replay and
lane export/install, :meth:`ShardedEngine.migrate_target`, the
middleware/PSL/report/hub surfaces, DLQ survival across gateway
disable/enable cycles, and the token-bucket rate limiter at the
ingestion edge.
"""

import json

import pytest

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum, Kind
from repro.core.graph import GraphError, ProcessingGraph
from repro.core.middleware import PerPos
from repro.core.report import infrastructure_snapshot, render_report
from repro.durability import (
    DurabilityError,
    DurabilityJournal,
    DurabilityManager,
    JsonLinesStateStore,
    MemoryStateStore,
    SqliteStateStore,
    capture_state,
    decode_value,
    encode_value,
    restore_from_store,
    restore_state,
)
from repro.gateway import (
    RATE_LIMITED,
    REJECTED,
    IngestionGateway,
    RateLimitError,
    RateLimiter,
    TokenBucket,
)
from repro.robustness.supervision import SupervisionPolicy, Supervisor
from repro.runtime import PositioningEngine, ShardedEngine, ShardingError
from repro.runtime.placement import PinnedPlacement
from repro.runtime.queues import COALESCE, DROP_OLDEST, IngestionQueue

POS = Kind.POSITION_WGS84


def datum(value, kind="x", t=0.0):
    return Datum(kind, value, t)


def build_graph():
    """src -> f -> sink, all on kind 'x'."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", ("x",)))
    graph.add(FunctionComponent("f", ("x",), ("x",), fn=lambda d: d))
    graph.add(ApplicationSink("sink", ("x",)))
    graph.connect("src", "f", "in")
    graph.connect("f", "sink", "in")
    return graph


def recipe():
    """Module-level shard recipe: src -> app on kind 'x'."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", ("x",)))
    graph.add(ApplicationSink("app", ("x",)))
    graph.connect("src", "app")
    return graph


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def advance(self, seconds):
        self.now += seconds


def gw_payload(device="d1", t=1000.0, **over):
    out = {
        "source_format": "phone_tracker_v1",
        "device_id": device,
        "timestamp": t,
        "lat": 55.676,
        "lon": 12.568,
        "accuracy_m": 5.0,
        "battery_pct": 0.8,
    }
    out.update(over)
    return out


# -- codec --------------------------------------------------------------------


class TestCodec:
    def test_datum_round_trips_through_json(self):
        d = Datum("x", {"v": 1}, 2.5, producer="p", attributes={"a": "b"})
        encoded = json.loads(json.dumps(encode_value(d)))
        out = decode_value(encoded)
        assert isinstance(out, Datum)
        assert (out.kind, out.payload, out.timestamp) == ("x", {"v": 1}, 2.5)
        assert out.producer == "p"
        assert out.attributes == {"a": "b"}

    def test_tuple_round_trips_as_tuple(self):
        out = decode_value(json.loads(json.dumps(encode_value((1, "a")))))
        assert out == (1, "a")
        assert isinstance(out, tuple)

    def test_unjsonable_values_fall_back_to_pickle(self):
        value = {1, 2, 3}
        encoded = encode_value(value)
        json.dumps(encoded)  # must be JSON-serialisable
        assert decode_value(encoded) == value

    def test_non_string_dict_keys_survive(self):
        value = {(0, 1): "a"}
        assert decode_value(encode_value(value)) == value

    def test_nested_structures(self):
        value = {"items": [datum(1), (2, datum(3))], "n": 4}
        out = decode_value(json.loads(json.dumps(encode_value(value))))
        assert out["n"] == 4
        assert out["items"][0].payload == 1
        assert out["items"][1][1].payload == 3


# -- stores -------------------------------------------------------------------


def _stores(tmp_path):
    return [
        MemoryStateStore(),
        JsonLinesStateStore(str(tmp_path / "state.jsonl")),
        SqliteStateStore(str(tmp_path / "state.db")),
    ]


class TestStores:
    def test_empty_store_has_no_latest(self, tmp_path):
        for store in _stores(tmp_path):
            assert store.load_latest() is None
            assert store.latest_entry("dlq_state") is None

    def test_entries_after_latest_snapshot_only(self, tmp_path):
        for store in _stores(tmp_path):
            store.append({"type": "a"})  # pre-snapshot: superseded
            store.save_snapshot({"gen": 1})
            store.append({"type": "b"})
            store.save_snapshot({"gen": 2})
            store.append({"type": "c"})
            store.append({"type": "d"})
            snapshot, entries = store.load_latest()
            assert snapshot == {"gen": 2}
            assert [e["type"] for e in entries] == ["c", "d"]

    def test_latest_entry_picks_newest_of_type(self, tmp_path):
        for store in _stores(tmp_path):
            store.append({"type": "dlq_state", "n": 1})
            store.append({"type": "other", "n": 2})
            store.append({"type": "dlq_state", "n": 3})
            assert store.latest_entry("dlq_state")["n"] == 3

    def test_save_snapshot_returns_bytes_written(self, tmp_path):
        for store in _stores(tmp_path):
            assert store.save_snapshot({"k": "v"}) > 0

    def test_jsonl_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "p.jsonl")
        store = JsonLinesStateStore(path)
        store.save_snapshot({"gen": 1})
        store.append({"type": "e"})
        reopened = JsonLinesStateStore(path)
        snapshot, entries = reopened.load_latest()
        assert snapshot == {"gen": 1}
        assert [e["type"] for e in entries] == ["e"]

    def test_jsonl_tolerates_torn_trailing_write(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        store = JsonLinesStateStore(path)
        store.save_snapshot({"gen": 1})
        store.append({"type": "e"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "entry", "se')  # crash mid-write
        snapshot, entries = JsonLinesStateStore(path).load_latest()
        assert snapshot == {"gen": 1}
        assert [e["type"] for e in entries] == ["e"]

    def test_sqlite_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "p.db")
        store = SqliteStateStore(path)
        store.save_snapshot({"gen": 7})
        store.append({"type": "e"})
        store.close()
        snapshot, entries = SqliteStateStore(path).load_latest()
        assert snapshot == {"gen": 7}
        assert len(entries) == 1

    def test_describe_names_backend(self, tmp_path):
        backends = {s.describe()["backend"] for s in _stores(tmp_path)}
        assert backends == {"memory", "jsonl", "sqlite"}


# -- journal ------------------------------------------------------------------


class TestJournal:
    def test_records_land_in_store(self):
        store = MemoryStateStore()
        journal = DurabilityJournal(store)
        journal.record_submit("t1", datum(1))
        journal.record_drain([("t1", 1)])
        journal.record_track("t1", "src", 64, DROP_OLDEST, 1)
        journal.record_untrack("t1")
        journal.record_policy("t1", COALESCE, 8, 2)
        store.save_snapshot({})  # make entries loadable via load_latest
        assert journal.entries_written == 5
        assert store.describe()["entries"] == 5

    def test_suspended_latch_drops_records(self):
        store = MemoryStateStore()
        journal = DurabilityJournal(store)
        journal.suspended = True
        journal.record_submit("t1", datum(1))
        assert journal.entries_written == 0

    def test_auto_snapshot_fires_at_threshold(self):
        calls = []
        store = MemoryStateStore()
        journal = DurabilityJournal(
            store, snapshot_every=3, snapshot_fn=lambda: calls.append(1)
        )
        for i in range(7):
            journal.record_submit("t1", datum(i))
        assert len(calls) == 2

    def test_invalid_snapshot_every_rejected(self):
        with pytest.raises(DurabilityError):
            DurabilityManager(ProcessingGraph(), MemoryStateStore(), snapshot_every=0)


# -- state seams --------------------------------------------------------------


class TestStateSeams:
    def test_queue_snapshot_restore_round_trip(self):
        queue = IngestionQueue("q", capacity=4, policy=DROP_OLDEST)
        for i in range(6):
            queue.offer(datum(i))
        state = queue.state_snapshot()
        twin = IngestionQueue("q", capacity=64, policy=COALESCE)
        twin.state_restore(state)
        assert twin.capacity == 4
        assert twin.policy == DROP_OLDEST
        assert [d.payload for d in twin.drain(10)] == [2, 3, 4, 5]
        assert twin.dropped_oldest == 2

    def test_sink_snapshot_restore_round_trip(self):
        sink = ApplicationSink("sink", ("x",))
        sink.process("in", datum(1))
        sink.process("in", datum(2))
        twin = ApplicationSink("sink", ("x",))
        twin.state_restore(sink.state_snapshot())
        assert [d.payload for d in twin.received] == [1, 2]

    def test_default_component_has_no_state(self):
        f = FunctionComponent("f", ("x",), ("x",), fn=lambda d: d)
        assert f.state_snapshot() is None

    def test_supervisor_snapshot_restore_round_trip(self):
        supervisor = Supervisor(
            SupervisionPolicy(failure_threshold=2), time_fn=lambda: 0.0
        )
        boom = FunctionComponent(
            "boom",
            ("x",),
            ("x",),
            fn=lambda d: (_ for _ in ()).throw(ValueError("x")),
        )
        for i in range(3):
            supervisor.deliver(boom, "in", datum(i), None)
        state = supervisor.state_snapshot()
        twin = Supervisor(
            SupervisionPolicy(failure_threshold=2), time_fn=lambda: 0.0
        )
        twin.state_restore(state)
        assert twin.health("boom") == supervisor.health("boom")
        assert twin.failure_count("boom") == supervisor.failure_count("boom")
        assert len(twin.failure_records()) == len(supervisor.failure_records())


# -- capture / restore --------------------------------------------------------


def tracked_engine(n=10):
    graph = build_graph()
    engine = PositioningEngine(graph)
    engine.track("t1", "src")
    engine.track("t2", "src", capacity=8, policy=COALESCE, weight=2)
    for i in range(n):
        engine.submit("t1" if i % 2 else "t2", datum(i, t=float(i)))
    return graph, engine


class TestCaptureRestore:
    def test_capture_names_every_section(self):
        graph, engine = tracked_engine()
        state = capture_state(graph, engine)
        assert state["version"] == 1
        assert {lane["target"] for lane in state["lanes"]} == {"t1", "t2"}
        assert "sink" in state["components"]
        assert state["topology"]["components"] == ["f", "sink", "src"]

    def test_restore_rebuilds_lanes_and_pending(self):
        graph, engine = tracked_engine()
        state = capture_state(graph, engine)
        graph2 = build_graph()
        engine2 = PositioningEngine(graph2)
        restore_state(graph2, engine2, state, [])
        assert engine2.depth_total() == engine.depth_total()
        lane = engine2.lane("t2")
        assert lane.queue.policy == COALESCE
        assert lane.queue.capacity == 8
        assert lane.weight == 2

    def test_restore_replays_post_snapshot_journal(self):
        graph, engine = tracked_engine(4)
        store = MemoryStateStore()
        manager = DurabilityManager(graph, store)
        manager.attach()
        manager.snapshot()
        # Post-snapshot activity lands in the journal only.
        for i in range(4, 8):
            engine.submit("t1", datum(i, t=float(i)))
        engine.drain_all()
        expected = sorted(
            d.payload for d in graph.component("sink").received
        )
        graph2 = build_graph()
        engine2 = PositioningEngine(graph2)
        replayed = restore_from_store(graph2, engine2, store)
        assert replayed > 0
        engine2.drain_all()
        assert (
            sorted(d.payload for d in graph2.component("sink").received)
            == expected
        )

    def test_restore_from_empty_store_raises(self):
        graph = build_graph()
        engine = PositioningEngine(graph)
        with pytest.raises(DurabilityError):
            restore_from_store(graph, engine, MemoryStateStore())

    def test_restore_rejects_unknown_version(self):
        graph, engine = tracked_engine(2)
        state = capture_state(graph, engine)
        state["version"] = 99
        with pytest.raises(DurabilityError):
            restore_state(graph, engine, state, [])

    def test_restore_rejects_missing_components(self):
        graph, engine = tracked_engine(2)
        state = capture_state(graph, engine)
        graph2 = ProcessingGraph()
        graph2.add(SourceComponent("src", ("x",)))
        engine2 = PositioningEngine(graph2)
        with pytest.raises(DurabilityError):
            restore_state(graph2, engine2, state, [])

    def test_metric_counters_restore_by_delta(self):
        pp = PerPos()
        pp.enable_observability()
        pp.graph.add(SourceComponent("src", ("x",)))
        pp.graph.add(ApplicationSink("sink", ("x",)))
        pp.graph.connect("src", "sink", "in")
        engine = pp.enable_runtime()
        engine.track("t1", "src")
        engine.submit("t1", datum(1))
        engine.drain_all()
        state = capture_state(pp.graph, engine)

        pp2 = PerPos()
        pp2.enable_observability()
        pp2.graph.add(SourceComponent("src", ("x",)))
        pp2.graph.add(ApplicationSink("sink", ("x",)))
        pp2.graph.connect("src", "sink", "in")
        engine2 = pp2.enable_runtime()
        restore_state(pp2.graph, engine2, state, [])
        before = pp.observability.registry.snapshot()["counters"]
        after = pp2.observability.registry.snapshot()["counters"]
        assert after == before


# -- engine replay and lane portability ---------------------------------------


class TestEngineDurabilitySeams:
    def test_replay_round_mirrors_drain_round(self):
        graph, engine = tracked_engine(6)
        # t2 coalesces same-kind datums to depth 1; t1 holds 3.
        counts = [("t2", 1), ("t1", 2)]
        routed = engine.replay_round(list(counts))
        assert routed == 3
        assert engine.rounds == 1
        assert engine.drained_total == 3
        assert len(graph.component("sink").received) == 3

    def test_replay_round_skips_vanished_lanes(self):
        graph, engine = tracked_engine(4)
        assert engine.replay_round([("ghost", 3)]) == 0

    def test_export_lane_removes_and_install_rebuilds(self):
        graph, engine = tracked_engine(6)
        payload = engine.export_lane("t2")
        assert not engine.is_tracked("t2")
        graph2 = build_graph()
        engine2 = PositioningEngine(graph2)
        lane = engine2.install_lane(payload)
        assert lane.queue.policy == COALESCE
        assert engine2.is_tracked("t2")
        engine2.drain_all()
        assert graph2.component("sink").received


# -- warm handoff (migrate_target) --------------------------------------------


class TestMigrateTarget:
    def make(self, shards=3):
        return ShardedEngine(recipe, shards)

    def seed(self, engine, targets=("a", "b", "c", "d"), per=3):
        for t in targets:
            engine.track(t, "src")
            for i in range(per):
                engine.submit(t, datum(f"{t}{i}"))

    def test_zero_datum_loss_and_pin(self):
        engine = self.make()
        self.seed(engine)
        before = engine.pending_total()
        from_shard = engine.shard_of("a")
        to_shard = (from_shard + 1) % 3
        record = engine.migrate_target("a", to_shard)
        assert record["datums"] == 3
        assert engine.pending_total() == before
        assert engine.shard_of("a") == to_shard
        assert isinstance(engine.placement, PinnedPlacement)
        # The lane keeps accepting traffic on its new home.
        engine.submit("a", datum("a-post"))
        drained = engine.drain_all()
        assert drained == before + 1
        assert record["pause_s"] >= 0.0
        assert engine.migrations()[-1]["target"] == "a"
        engine.close()

    def test_same_shard_migration_rejected(self):
        engine = self.make()
        self.seed(engine, targets=("a",))
        with pytest.raises(ShardingError):
            engine.migrate_target("a", engine.shard_of("a"))
        engine.close()

    def test_unknown_destination_rejected(self):
        engine = self.make()
        self.seed(engine, targets=("a",))
        with pytest.raises(ShardingError):
            engine.migrate_target("a", 99)
        engine.close()

    def test_failed_install_rolls_back_to_source(self):
        engine = self.make()
        self.seed(engine, targets=("a",))
        from_shard = engine.shard_of("a")
        to_shard = (from_shard + 1) % 3
        destination = engine._shards[to_shard]
        original = destination.install_lane
        destination.install_lane = lambda payload: (_ for _ in ()).throw(
            RuntimeError("install boom")
        )
        try:
            with pytest.raises(RuntimeError):
                engine.migrate_target("a", to_shard)
        finally:
            destination.install_lane = original
        # Rolled back: still tracked on the source shard, nothing lost.
        assert engine.shard_of("a") == from_shard
        assert engine.pending_total() == 3
        assert engine.migrations() == []
        engine.close()

    def test_durability_bridge_records_migration(self):
        graph = build_graph()
        pos = PositioningEngine(graph)
        manager = DurabilityManager(graph, MemoryStateStore())
        manager.attach()
        engine = self.make()
        engine.durability = manager
        self.seed(engine, targets=("a",))
        to_shard = (engine.shard_of("a") + 1) % 3
        engine.migrate_target("a", to_shard)
        assert len(manager.migrations()) == 1
        assert manager.migrations()[0]["to"] == to_shard
        engine.close()


# -- gateway rate limiting ----------------------------------------------------


class TestTokenBucket:
    def test_burst_then_throttle_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.allow(0.0)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.0)
        assert bucket.allow(1.0)  # one token refilled after 1s
        assert not bucket.allow(1.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket.allow(0.0)
        assert bucket.allow(100.0)
        assert bucket.allow(100.0)
        assert not bucket.allow(100.0)


class TestRateLimiter:
    def test_keys_are_per_adapter_device(self):
        limiter = RateLimiter(1.0)
        assert limiter.allow("a1", "d1", 0.0)
        assert not limiter.allow("a1", "d1", 0.0)
        assert limiter.allow("a1", "d2", 0.0)  # other device unaffected
        assert limiter.allow("a2", "d1", 0.0)  # other adapter unaffected
        assert limiter.allowed == 3
        assert limiter.limited == 1

    def test_key_table_bounded_with_eviction(self):
        limiter = RateLimiter(1.0, max_keys=2)
        for i in range(5):
            limiter.allow("a", f"d{i}", 0.0)
        assert len(limiter) == 2
        assert limiter.evicted_keys == 3

    def test_invalid_configuration_rejected(self):
        with pytest.raises(RateLimitError):
            RateLimiter(0.0)
        with pytest.raises(RateLimitError):
            RateLimiter(1.0, burst=0.5)
        with pytest.raises(RateLimitError):
            RateLimiter(1.0, max_keys=0)


class TestGatewayRateLimiting:
    def make_gateway(self, **kwargs):
        graph = ProcessingGraph()
        graph.add(SourceComponent("src", (POS,)))
        graph.add(ApplicationSink("sink", (POS,), keep_last=100_000))
        graph.connect("src", "sink", "in")
        engine = PositioningEngine(graph)
        clock = kwargs.pop("clock", FakeClock())
        gateway = IngestionGateway(engine, "src", clock=clock, **kwargs)
        return gateway, engine, graph.component("sink"), clock

    def test_excess_is_rate_limited_not_dead_lettered(self):
        gateway, engine, sink, clock = self.make_gateway(rate_limit=2.0)
        verdicts = [
            gateway.submit(gw_payload(t=clock.now)) for _ in range(5)
        ]
        assert verdicts.count(RATE_LIMITED) == 3
        assert gateway.rate_limited == 3
        # DLQ-exempt: well-formed excess must not evict malformed
        # payloads awaiting replay-after-fix.
        assert gateway.dead_letters() == []
        snapshot = gateway.snapshot()
        assert snapshot["rate_limited"] == 3
        assert snapshot["rate_limit"]["limited"] == 3
        # invariant: submitted == accepted+rejected+shed+rate_limited+pending
        assert snapshot["submitted"] == 5
        assert (
            snapshot["accepted"]
            + snapshot["rejected"]
            + snapshot["shed"]
            + snapshot["rate_limited"]
            + snapshot["pending"]
            == 5
        )

    def test_tokens_refill_with_injected_clock(self):
        gateway, engine, sink, clock = self.make_gateway(rate_limit=1.0)
        assert gateway.submit(gw_payload(t=clock.now)) != RATE_LIMITED
        assert gateway.submit(gw_payload(t=clock.now)) == RATE_LIMITED
        clock.advance(1.0)
        assert gateway.submit(gw_payload(t=clock.now)) != RATE_LIMITED

    def test_devices_throttle_independently(self):
        gateway, engine, sink, clock = self.make_gateway(rate_limit=1.0)
        assert gateway.submit(gw_payload("d1", t=clock.now)) != RATE_LIMITED
        assert gateway.submit(gw_payload("d1", t=clock.now)) == RATE_LIMITED
        assert gateway.submit(gw_payload("d2", t=clock.now)) != RATE_LIMITED

    def test_replay_is_exempt_from_rate_limiting(self):
        gateway, engine, sink, clock = self.make_gateway(
            rate_limit=1.0, max_age_s=10.0
        )
        # Dead-letter a stale payload, then fix it: replay must pass
        # even with the device's token bucket empty.
        assert gateway.submit(gw_payload(t=clock.now)) != RATE_LIMITED
        stale = gateway.submit(gw_payload(t=clock.now - 100.0))
        assert stale == REJECTED
        seq = gateway.dead_letters()[0]["seq"]
        gateway.dlq.patch(seq, timestamp=clock.now)
        assert not gateway.rate_limiter.allow(
            "phone_tracker_v1", "d1", clock.now
        )  # bucket drained
        counts = gateway.replay(seq, ignore_backoff=True)
        assert counts["replayed"] == 1

    def test_explicit_limiter_instance_accepted(self):
        limiter = RateLimiter(5.0, burst=10.0)
        gateway, engine, sink, clock = self.make_gateway(rate_limit=limiter)
        assert gateway.rate_limiter is limiter

    def test_hub_counts_rate_limited_outcomes(self):
        pp = PerPos()
        pp.enable_observability()
        pp.graph.add(SourceComponent("src", (POS,)))
        pp.graph.add(ApplicationSink("sink", (POS,)))
        pp.graph.connect("src", "sink", "in")
        pp.enable_runtime()
        gateway = pp.enable_gateway("src", rate_limit=1.0)
        gateway.submit(gw_payload(t=pp.clock.now))
        gateway.submit(gw_payload(t=pp.clock.now))
        counters = pp.observability.registry.snapshot()["counters"]
        limited = {
            name: value
            for name, value in counters.items()
            if name.startswith("gateway_rate_limited")
        }
        assert sum(limited.values()) == 1


# -- middleware / PSL / report surfaces ---------------------------------------


def middleware_with_runtime():
    pp = PerPos()
    pp.enable_observability()
    pp.graph.add(SourceComponent("src", ("x",)))
    pp.graph.add(FunctionComponent("f", ("x",), ("x",), fn=lambda d: d))
    pp.graph.add(ApplicationSink("sink", ("x",)))
    pp.graph.connect("src", "f", "in")
    pp.graph.connect("f", "sink", "in")
    engine = pp.enable_runtime()
    return pp, engine


class TestMiddlewareDurability:
    def test_enable_requires_runtime(self):
        pp = PerPos()
        with pytest.raises(ValueError):
            pp.enable_durability()

    def test_enable_attach_disable_detach(self):
        pp, engine = middleware_with_runtime()
        manager = pp.enable_durability()
        assert pp.durability is manager
        assert engine.journal is manager.journal
        assert (
            pp.framework.registry.find_service("perpos.DurabilityManager")
            is manager
        )
        assert pp.disable_durability() is manager
        assert pp.durability is None
        assert engine.journal is None
        assert (
            pp.framework.registry.find_service("perpos.DurabilityManager")
            is None
        )

    def test_reenable_replaces_manager_and_registration(self):
        pp, engine = middleware_with_runtime()
        first = pp.enable_durability()
        second = pp.enable_durability()
        assert second is not first
        assert first.journal is None  # detached
        assert engine.journal is second.journal
        assert (
            pp.framework.registry.find_service("perpos.DurabilityManager")
            is second
        )

    def test_snapshot_restore_through_psl(self):
        pp, engine = middleware_with_runtime()
        pp.enable_durability()
        engine.track("t1", "src")
        for i in range(5):
            engine.submit("t1", datum(i, t=float(i)))
        summary = pp.psl.snapshot()
        assert summary["lanes"] == 1
        assert summary["pending"] == 5
        # Post-snapshot activity is journaled; restore converges the
        # engine back to the exact current state by replaying it.
        engine.drain_all()
        expected = [d.payload for d in pp.graph.component("sink").received]
        replayed = pp.psl.restore()
        assert replayed > 0
        assert engine.is_tracked("t1")
        assert engine.depth_total() == 0
        assert [
            d.payload for d in pp.graph.component("sink").received
        ] == expected

    def test_psl_surfaces_degrade_or_raise_without_manager(self):
        pp, engine = middleware_with_runtime()
        assert pp.psl.migrations() == []  # inspection degrades
        with pytest.raises(GraphError):
            pp.psl.snapshot()  # adaptation raises
        with pytest.raises(GraphError):
            pp.psl.restore()

    def test_hub_durability_counters(self):
        pp, engine = middleware_with_runtime()
        manager = pp.enable_durability()
        engine.track("t1", "src")
        engine.submit("t1", datum(1))
        manager.snapshot()
        manager.restore()
        counters = pp.observability.registry.snapshot()["counters"]
        gauges = pp.observability.registry.snapshot()["gauges"]
        assert counters["durability_snapshots"] == 1
        assert counters["durability_restores"] == 1
        assert gauges["snapshot_bytes"] > 0

    def test_report_renders_durability_section(self):
        pp, engine = middleware_with_runtime()
        pp.enable_durability(snapshot_every=10)
        snapshot = infrastructure_snapshot(pp)
        assert snapshot["durability"]["store"]["backend"] == "memory"
        text = render_report(pp)
        assert "durability:" in text
        assert "store=memory" in text
        assert "auto_snapshot=every 10 entries" in text

    def test_report_without_durability(self):
        pp, engine = middleware_with_runtime()
        assert infrastructure_snapshot(pp)["durability"] is None
        assert "(durability disabled)" in render_report(pp)

    def test_auto_snapshot_through_engine_traffic(self):
        pp, engine = middleware_with_runtime()
        manager = pp.enable_durability(snapshot_every=4)
        engine.track("t1", "src")
        for i in range(10):
            engine.submit("t1", datum(i, t=float(i)))
        assert manager.snapshots_taken >= 2


class TestDlqSurvivesGatewayCycles:
    def build(self):
        pp = PerPos()
        pp.graph.add(SourceComponent("src", (POS,)))
        pp.graph.add(ApplicationSink("sink", (POS,)))
        pp.graph.connect("src", "sink", "in")
        pp.enable_runtime()
        pp.enable_durability()
        return pp

    def test_dead_letters_survive_disable_enable(self):
        pp = self.build()
        gateway = pp.enable_gateway("src")
        assert gateway.submit(b"\x00garbage") == REJECTED
        assert len(gateway.dead_letters()) == 1
        pp.disable_gateway()
        reborn = pp.enable_gateway("src")
        records = reborn.dead_letters()
        assert len(records) == 1
        assert records[0]["stage"] == "format"

    def test_without_durability_cycle_forfeits_dlq(self):
        pp = PerPos()
        pp.graph.add(SourceComponent("src", (POS,)))
        pp.graph.add(ApplicationSink("sink", (POS,)))
        pp.graph.connect("src", "sink", "in")
        pp.enable_runtime()
        gateway = pp.enable_gateway("src")
        gateway.submit(b"\x00garbage")
        pp.disable_gateway()
        assert pp.enable_gateway("src").dead_letters() == []

    def test_replay_after_fix_across_cycle(self):
        pp = self.build()
        gateway = pp.enable_gateway("src")
        gateway.submit({"source_format": "phone_tracker_v1"})  # schema reject
        pp.disable_gateway()
        reborn = pp.enable_gateway("src")
        seq = reborn.dead_letters()[0]["seq"]
        # The record is replayable through the new gateway instance.
        counts = reborn.replay(seq, ignore_backoff=True)
        assert counts["attempted"] == 1  # still malformed, but it ran
        assert counts["replayed"] == 0
