"""Tests for the GPS receiver simulator."""

import statistics

import pytest

from repro.geo.wgs84 import Wgs84Position
from repro.sensors.gps import (
    GpsReceiver,
    INDOOR,
    OPEN_SKY,
    URBAN_CANYON,
    constant_environment,
)
from repro.sensors.nmea import GgaSentence, NmeaError, parse_sentence
from repro.sensors.trajectory import StationaryTrajectory, WaypointTrajectory, Waypoint

START = Wgs84Position(56.17, 10.19)


def walk_trajectory(duration=600.0):
    end = START.moved(bearing_deg=90.0, distance_m=duration * 1.4)
    return WaypointTrajectory([Waypoint(0.0, START), Waypoint(duration, end)])


def make_receiver(env=OPEN_SKY, **kwargs):
    kwargs.setdefault("chunk_size", None)
    return GpsReceiver(
        "gps0",
        walk_trajectory(),
        constant_environment(env),
        seed=7,
        **kwargs,
    )


class TestEpochProduction:
    def test_one_epoch_per_second_at_1hz(self):
        gps = make_receiver()
        gps.sample(9.5)
        assert len(gps.epochs) == 10  # t = 0..9

    def test_sampling_is_incremental(self):
        gps = make_receiver()
        first = gps.sample(2.0)
        second = gps.sample(2.0)
        assert first and second == []

    def test_all_sentences_parse(self):
        gps = make_receiver()
        for reading in gps.sample(5.0):
            parse_sentence(reading.payload)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            make_receiver(rate_hz=0.0)


class TestErrorModel:
    def test_open_sky_errors_are_small(self):
        gps = make_receiver(OPEN_SKY)
        gps.sample(120.0)
        errors = [
            e.reported_position.distance_to(e.true_position)
            for e in gps.epochs
            if e.reported_position is not None and not e.is_stale
        ]
        assert errors
        assert statistics.mean(errors) < 15.0

    def test_urban_canyon_worse_than_open_sky(self):
        open_sky = make_receiver(OPEN_SKY)
        open_sky.sample(300.0)
        urban = make_receiver(URBAN_CANYON)
        urban.sample(300.0)

        def mean_error(gps):
            errs = [
                e.reported_position.distance_to(e.true_position)
                for e in gps.epochs
                if e.reported_position is not None and not e.is_stale
            ]
            return statistics.mean(errs) if errs else float("inf")

        def fresh_rate(gps):
            fresh = sum(
                1
                for e in gps.epochs
                if e.reported_position is not None and not e.is_stale
            )
            return fresh / len(gps.epochs)

        assert fresh_rate(urban) < fresh_rate(open_sky)
        if mean_error(urban) != float("inf"):
            assert mean_error(urban) > mean_error(open_sky)

    def test_indoor_yields_almost_no_fresh_fixes(self):
        gps = make_receiver(INDOOR)
        gps.sample(120.0)
        fresh = [
            e
            for e in gps.epochs
            if e.reported_position is not None and not e.is_stale
        ]
        assert len(fresh) < len(gps.epochs) * 0.2


class TestStaleFixBehaviour:
    """Paper §3.1: receivers keep reporting positions after losing the sky."""

    def env_flip(self, flip_at):
        def _map(t, _pos):
            return OPEN_SKY if t < flip_at else INDOOR

        return _map

    def test_stale_fixes_reported_after_signal_loss(self):
        gps = GpsReceiver(
            "gps0",
            walk_trajectory(),
            self.env_flip(flip_at=30.0),
            seed=3,
            chunk_size=None,
            stale_hold_s=30.0,
        )
        gps.sample(50.0)
        stale = [e for e in gps.epochs if e.is_stale]
        assert stale, "expected stale epochs after losing the sky"
        # Stale fixes still look like fixes in the NMEA stream.
        assert all(e.reported_position is not None for e in stale)

    def test_stale_fixes_report_low_satellite_count(self):
        gps = GpsReceiver(
            "gps0",
            walk_trajectory(),
            self.env_flip(flip_at=30.0),
            seed=3,
            chunk_size=None,
        )
        gps.sample(50.0)
        fresh_sats = [
            e.satellites_used for e in gps.epochs if not e.is_stale
            and e.reported_position is not None
        ]
        stale_sats = [e.satellites_used for e in gps.epochs if e.is_stale]
        assert stale_sats
        assert max(stale_sats) < min(fresh_sats)

    def test_stale_hold_expires(self):
        gps = GpsReceiver(
            "gps0",
            walk_trajectory(),
            self.env_flip(flip_at=10.0),
            seed=3,
            chunk_size=None,
            stale_hold_s=5.0,
        )
        gps.sample(60.0)
        tail = [e for e in gps.epochs if e.time_s > 20.0]
        assert all(e.reported_position is None for e in tail if not e.is_stale)
        assert not any(e.is_stale for e in tail)

    def test_stale_error_grows_while_target_moves(self):
        gps = GpsReceiver(
            "gps0",
            walk_trajectory(),
            self.env_flip(flip_at=30.0),
            seed=3,
            chunk_size=None,
            stale_hold_s=30.0,
        )
        gps.sample(55.0)
        stale = [e for e in gps.epochs if e.is_stale]
        assert len(stale) >= 5
        first_error = stale[0].reported_position.distance_to(
            stale[0].true_position
        )
        last_error = stale[-1].reported_position.distance_to(
            stale[-1].true_position
        )
        assert last_error > first_error


class TestFragmentation:
    def test_fragments_reassemble_to_sentences(self):
        gps = GpsReceiver(
            "gps0",
            walk_trajectory(),
            constant_environment(OPEN_SKY),
            seed=7,
            chunk_size=16,
        )
        readings = gps.sample(3.0)
        assert all(len(r.payload) <= 16 for r in readings)
        stream = "".join(r.payload for r in readings)
        lines = [l for l in stream.split("\r\n") if l]
        for line in lines:
            parse_sentence(line)

    def test_multiple_fragments_per_sentence(self):
        gps = GpsReceiver(
            "gps0",
            walk_trajectory(),
            constant_environment(OPEN_SKY),
            seed=7,
            chunk_size=16,
        )
        readings = gps.sample(0.0)
        stream = "".join(r.payload for r in readings)
        sentences = [l for l in stream.split("\r\n") if l]
        assert len(readings) > len(sentences)


class TestCorruption:
    def test_corrupted_sentences_fail_checksum(self):
        gps = GpsReceiver(
            "gps0",
            walk_trajectory(),
            constant_environment(OPEN_SKY),
            seed=11,
            chunk_size=None,
            corruption_probability=0.5,
        )
        readings = gps.sample(30.0)
        failures = 0
        for r in readings:
            try:
                parse_sentence(r.payload)
            except NmeaError:
                failures += 1
        assert failures > 0

    def test_determinism_per_seed(self):
        def run(seed):
            gps = GpsReceiver(
                "gps0",
                walk_trajectory(),
                constant_environment(URBAN_CANYON),
                seed=seed,
                chunk_size=None,
            )
            return [r.payload for r in gps.sample(20.0)]

        assert run(5) == run(5)
        assert run(5) != run(6)
