"""Tests for ECEF, ENU and building-grid conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo.ellipsoid import EcefPosition, WGS84_ELLIPSOID
from repro.geo.enu import EnuFrame, EnuPosition
from repro.geo.grid import GridPosition, LocalGrid
from repro.geo.wgs84 import Wgs84Position

ORIGIN = Wgs84Position(56.1718, 10.1903)


class TestEcef:
    def test_equator_prime_meridian(self):
        ecef = EcefPosition.from_geodetic(Wgs84Position(0.0, 0.0, 0.0))
        assert ecef.x_m == pytest.approx(WGS84_ELLIPSOID.semi_major_m)
        assert ecef.y_m == pytest.approx(0.0, abs=1e-6)
        assert ecef.z_m == pytest.approx(0.0, abs=1e-6)

    def test_north_pole_on_minor_axis(self):
        ecef = EcefPosition.from_geodetic(Wgs84Position(90.0, 0.0, 0.0))
        assert ecef.z_m == pytest.approx(
            WGS84_ELLIPSOID.semi_minor_m, rel=1e-9
        )
        assert math.hypot(ecef.x_m, ecef.y_m) < 1e-6

    def test_polar_axis_inverse(self):
        pos = EcefPosition(0.0, 0.0, WGS84_ELLIPSOID.semi_minor_m + 100.0)
        geo = pos.to_geodetic()
        assert geo.latitude_deg == pytest.approx(90.0)
        assert geo.altitude_m == pytest.approx(100.0, abs=1e-6)

    @given(
        st.floats(min_value=-89.0, max_value=89.0),
        st.floats(min_value=-179.0, max_value=179.0),
        st.floats(min_value=-100.0, max_value=9000.0),
    )
    def test_geodetic_roundtrip(self, lat, lon, alt):
        original = Wgs84Position(lat, lon, alt)
        back = EcefPosition.from_geodetic(original).to_geodetic()
        assert back.latitude_deg == pytest.approx(lat, abs=1e-9)
        assert back.longitude_deg == pytest.approx(lon, abs=1e-9)
        assert back.altitude_m == pytest.approx(alt, abs=1e-6)

    def test_chord_distance(self):
        a = EcefPosition(0.0, 0.0, 0.0)
        b = EcefPosition(3.0, 4.0, 0.0)
        assert a.distance_to(b) == 5.0


class TestEnuFrame:
    def test_origin_maps_to_zero(self):
        frame = EnuFrame(ORIGIN)
        enu = frame.to_enu(ORIGIN)
        assert abs(enu.east_m) < 1e-9
        assert abs(enu.north_m) < 1e-9
        assert abs(enu.up_m) < 1e-9

    def test_point_north_has_positive_north(self):
        # `moved` uses the spherical Earth, the frame the ellipsoid, so
        # agreement is only to ~0.3% at this latitude.
        frame = EnuFrame(ORIGIN)
        north = ORIGIN.moved(bearing_deg=0.0, distance_m=100.0)
        enu = frame.to_enu(north)
        assert enu.north_m == pytest.approx(100.0, rel=5e-3)
        assert abs(enu.east_m) < 0.5

    def test_point_east_has_positive_east(self):
        frame = EnuFrame(ORIGIN)
        east = ORIGIN.moved(bearing_deg=90.0, distance_m=50.0)
        enu = frame.to_enu(east)
        assert enu.east_m == pytest.approx(50.0, rel=5e-3)
        assert abs(enu.north_m) < 0.5

    def test_altitude_maps_to_up(self):
        frame = EnuFrame(ORIGIN)
        above = Wgs84Position(
            ORIGIN.latitude_deg, ORIGIN.longitude_deg, 30.0
        )
        assert frame.to_enu(above).up_m == pytest.approx(30.0, abs=1e-6)

    @given(
        st.floats(min_value=-500.0, max_value=500.0),
        st.floats(min_value=-500.0, max_value=500.0),
        st.floats(min_value=-50.0, max_value=50.0),
    )
    def test_enu_roundtrip(self, east, north, up):
        frame = EnuFrame(ORIGIN)
        geo = frame.to_wgs84(EnuPosition(east, north, up))
        back = frame.to_enu(geo)
        assert back.east_m == pytest.approx(east, abs=1e-6)
        assert back.north_m == pytest.approx(north, abs=1e-6)
        assert back.up_m == pytest.approx(up, abs=1e-6)

    def test_enu_distance_helpers(self):
        a = EnuPosition(0.0, 0.0, 0.0)
        b = EnuPosition(3.0, 4.0, 12.0)
        assert a.horizontal_distance_to(b) == 5.0
        assert a.distance_to(b) == 13.0


class TestLocalGrid:
    def test_unrotated_grid_matches_enu(self):
        grid = LocalGrid(ORIGIN, rotation_deg=0.0)
        north = ORIGIN.moved(0.0, 20.0)
        pos = grid.to_grid(north)
        assert pos.y_m == pytest.approx(20.0, rel=5e-3)
        assert abs(pos.x_m) < 0.2

    def test_rotation_rotates_axes(self):
        # With a 90 degree rotation, north maps onto the grid x axis.
        grid = LocalGrid(ORIGIN, rotation_deg=90.0)
        north = ORIGIN.moved(0.0, 20.0)
        pos = grid.to_grid(north)
        assert pos.x_m == pytest.approx(-20.0, abs=0.2)
        assert abs(pos.y_m) < 0.2

    @given(
        st.floats(min_value=-200.0, max_value=200.0),
        st.floats(min_value=-200.0, max_value=200.0),
        st.integers(min_value=-2, max_value=5),
        st.floats(min_value=0.0, max_value=359.0),
    )
    def test_grid_roundtrip_any_rotation(self, x, y, floor, rotation):
        grid = LocalGrid(ORIGIN, rotation_deg=rotation)
        back = grid.to_grid(grid.to_wgs84(GridPosition(x, y, floor)))
        assert back.x_m == pytest.approx(x, abs=1e-5)
        assert back.y_m == pytest.approx(y, abs=1e-5)
        assert back.floor == floor

    def test_floor_from_altitude(self):
        grid = LocalGrid(ORIGIN, floor_height_m=3.0)
        second_floor = Wgs84Position(
            ORIGIN.latitude_deg, ORIGIN.longitude_deg, 6.1
        )
        assert grid.to_grid(second_floor).floor == 2

    def test_rejects_nonpositive_floor_height(self):
        with pytest.raises(ValueError):
            LocalGrid(ORIGIN, floor_height_m=0.0)
