"""Property tests: sharding redistributes work without changing it
(hypothesis).

Two pinned contracts:

* **Drain equivalence** -- for any randomly generated DAG recipe and any
  workload, draining through an in-process :class:`ShardedEngine` (any
  shard count) delivers exactly the same *multiset* of sink outputs as
  draining the same workload through a single
  :class:`PositioningEngine`, and the merged per-component hub counters
  agree with the single engine's.  Lanes are per target with identical
  queue semantics on both sides, so the property must hold even under
  backpressure (small capacities, drop policies) and odd quanta.
* **Placement stability** -- growing N shards to N+1 under consistent
  hashing relocates only a minority of K targets (~K/(N+1) in
  expectation; the test allows generous slack), where modulo placement
  relocates almost everything.  This is the property that makes live
  resharding affordable at all.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import GraphError, ProcessingGraph
from repro.runtime import (
    ConsistentHashPlacement,
    PositioningEngine,
    ShardedEngine,
)
from repro.runtime.sharding import build_scheduler

STAGE_NAMES = ("s0", "s1", "s2", "s3")
KINDS = ("x", "y")

kind_sets = st.lists(
    st.sampled_from(KINDS), min_size=1, max_size=2, unique=True
).map(tuple)

# A recipe description: which stages exist (with their kinds) and which
# edges to attempt.  Edges that violate DAG/port rules are skipped, so
# any description yields *some* valid graph -- and the same description
# always yields the same graph, which is what lets the single engine
# and every shard be built as exact structural twins.
stage_defs = st.lists(
    st.tuples(st.sampled_from(STAGE_NAMES), kind_sets),
    min_size=0,
    max_size=4,
    unique_by=lambda d: d[0],
)
edge_defs = st.lists(
    st.tuples(
        st.sampled_from(("src",) + STAGE_NAMES),
        st.sampled_from(STAGE_NAMES + ("app",)),
    ),
    min_size=0,
    max_size=10,
)

# A workload: per-target lane configs plus a submission sequence.
lane_configs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),  # capacity
        st.sampled_from(("drop_oldest", "drop_newest", "coalesce")),
    ),
    min_size=1,
    max_size=5,
)
submissions = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),  # target index
        st.sampled_from(KINDS),
        st.integers(min_value=0, max_value=99),  # payload
    ),
    min_size=0,
    max_size=40,
)


def make_recipe(stages, edges):
    """A picklable-in-spirit recipe closed over one graph description."""

    def recipe():
        graph = ProcessingGraph()
        graph.add(SourceComponent("src", KINDS))
        graph.add(ApplicationSink("app", KINDS))
        for name, kinds in stages:
            graph.add(
                FunctionComponent(name, kinds, kinds, fn=lambda d: d)
            )
        for producer, consumer in edges:
            try:
                graph.connect(producer, consumer)
            except GraphError:
                continue
        try:
            graph.connect("src", "app")
        except GraphError:
            pass
        return graph

    return recipe


def run_workload(engine, lanes, subs):
    """Track lanes, submit the sequence, drain; same calls either side."""
    for index, (capacity, policy) in enumerate(lanes):
        engine.track(
            f"t{index}", "src", capacity=capacity, policy=policy
        )
    for target_index, kind, payload in subs:
        target_id = f"t{target_index % len(lanes)}"
        engine.submit(target_id, Datum(kind, payload, float(payload)))
    engine.drain_all()


def single_outputs(recipe, lanes, subs, quantum):
    graph = recipe()
    engine = PositioningEngine(
        graph, scheduler=build_scheduler(("round_robin", quantum))
    )
    run_workload(engine, lanes, subs)
    return Counter(
        (d.kind, d.payload, d.attributes.get("target"))
        for d in graph.component("app").received
    ), engine


@settings(max_examples=50, deadline=None)
@given(
    stages=stage_defs,
    edges=edge_defs,
    lanes=lane_configs,
    subs=submissions,
    shards=st.integers(min_value=1, max_value=4),
    quantum=st.integers(min_value=1, max_value=8),
)
def test_sharded_drain_equivalent_to_single_engine(
    stages, edges, lanes, subs, shards, quantum
):
    recipe = make_recipe(stages, edges)
    expected, _ = single_outputs(recipe, lanes, subs, quantum)
    with ShardedEngine(
        recipe, shards, scheduler=("round_robin", quantum)
    ) as engine:
        run_workload(engine, lanes, subs)
        actual = Counter(
            (kind, payload, target)
            for _sink, kind, payload, target in engine.sink_outputs()
        )
    assert actual == expected


@settings(max_examples=25, deadline=None)
@given(
    stages=stage_defs,
    edges=edge_defs,
    lanes=lane_configs,
    subs=submissions,
    shards=st.integers(min_value=2, max_value=4),
)
def test_merged_hub_counters_equal_single_engine(
    stages, edges, lanes, subs, shards
):
    from repro.observability.instrumentation import ObservabilityHub
    from repro.observability.metrics import MetricsRegistry

    recipe = make_recipe(stages, edges)
    graph = recipe()
    hub = ObservabilityHub(MetricsRegistry(), tracing=False)
    graph.set_instrumentation(hub)
    engine = PositioningEngine(graph)
    run_workload(engine, lanes, subs)

    with ShardedEngine(recipe, shards, observability=True) as sharded:
        run_workload(sharded, lanes, subs)
        merged = sharded.merged_component_stats()

    for component in graph.components():
        expected = hub.component_stats(component.name)
        actual = merged.get(component.name, {})
        assert actual.get("items_in", 0) == expected.get("items_in", 0)
        assert actual.get("items_out", 0) == expected.get(
            "items_out", 0
        )


@settings(max_examples=20, deadline=None)
@given(
    n_shards=st.integers(min_value=1, max_value=8),
    n_targets=st.integers(min_value=50, max_value=400),
    salt=st.integers(min_value=0, max_value=1000),
)
def test_consistent_hash_resize_relocates_a_minority(
    n_shards, n_targets, salt
):
    policy = ConsistentHashPlacement()
    targets = [f"t{salt}:{i}" for i in range(n_targets)]
    before = {t: policy.place(t, n_shards) for t in targets}
    moved = sum(
        1 for t in targets if policy.place(t, n_shards + 1) != before[t]
    )
    # Expectation is K/(N+1); virtual-node variance means individual
    # draws overshoot, so allow 3x slack -- still far below the ~K(1 -
    # 1/N) a modulo scheme relocates.
    bound = 3.0 * n_targets / (n_shards + 1)
    assert moved <= bound
