"""Tier-1 suite configuration: global observability-state hygiene.

The observability layer keeps one piece of process-global state -- the
default metrics registry (``repro.observability.metrics``).  A test that
swaps it in, or records into a swapped-in registry, and exits without
restoring it silently contaminates every test that runs after it.  The
autouse guard below snapshots the global state token around each test
and *fails the offending test* (after repairing the state so the rest of
the run stays clean).

Tests that intentionally leave global state mutated -- there should be
almost none -- can opt out with ``@pytest.mark.mutates_observability``;
the guard then restores silently instead of failing.
"""

from __future__ import annotations

import pytest

from repro.observability import metrics


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "mutates_observability: test may leave global observability state"
        " mutated; the guard restores it silently instead of failing",
    )


@pytest.fixture(autouse=True)
def observability_state_guard(request):
    """Fail any test leaking global observability state."""
    before = metrics.global_state_token()
    yield
    after = metrics.global_state_token()
    if after == before:
        return
    metrics.reset_global_state()
    if request.node.get_closest_marker("mutates_observability") is None:
        pytest.fail(
            "test mutated global observability state (default metrics"
            " registry) without resetting it; restore via"
            " set_default_registry(previous) / reset_global_state(), or"
            " mark the test with @pytest.mark.mutates_observability"
        )
