"""Tests for the WiFi radio environment and scanner."""

import random
import statistics

import pytest

from repro.geo.grid import GridPosition
from repro.geo.wgs84 import Wgs84Position
from repro.model.demo import demo_building, demo_radio_environment
from repro.sensors.trajectory import StationaryTrajectory
from repro.sensors.wifi import (
    AccessPoint,
    RadioEnvironment,
    WifiObservation,
    WifiScan,
    WifiScanner,
    build_radio_map,
)

AP = AccessPoint("ap:test", GridPosition(0.0, 0.0))


def open_environment(**kwargs):
    kwargs.setdefault("shadowing_sigma_db", 0.0)
    return RadioEnvironment([AP], **kwargs)


class TestPathLoss:
    def test_rssi_decreases_with_distance(self):
        env = open_environment()
        near = env.expected_rssi(AP, GridPosition(2.0, 0.0))
        far = env.expected_rssi(AP, GridPosition(20.0, 0.0))
        assert near > far

    def test_below_one_metre_clamped(self):
        env = open_environment()
        at_ap = env.expected_rssi(AP, GridPosition(0.0, 0.0))
        nearby = env.expected_rssi(AP, GridPosition(0.5, 0.0))
        assert at_ap == nearby == AP.tx_power_dbm

    def test_path_loss_exponent_controls_slope(self):
        gentle = open_environment(path_loss_exponent=2.0)
        steep = open_environment(path_loss_exponent=4.0)
        p = GridPosition(30.0, 0.0)
        assert steep.expected_rssi(AP, p) < gentle.expected_rssi(AP, p)

    def test_walls_attenuate(self):
        env = RadioEnvironment(
            [AP],
            shadowing_sigma_db=0.0,
            wall_loss_db=6.0,
            wall_counter=lambda a, b: 2,
        )
        free = open_environment()
        p = GridPosition(10.0, 0.0)
        assert env.expected_rssi(AP, p) == pytest.approx(
            free.expected_rssi(AP, p) - 12.0
        )

    def test_requires_access_points(self):
        with pytest.raises(ValueError):
            RadioEnvironment([])


class TestObservation:
    def test_weak_aps_fall_below_noise_floor(self):
        env = open_environment(noise_floor_dbm=-60.0)
        rng = random.Random(0)
        far = env.observe(GridPosition(500.0, 0.0), rng)
        assert far == []

    def test_observations_sorted_strongest_first(self):
        aps = [
            AccessPoint("a", GridPosition(0.0, 0.0)),
            AccessPoint("b", GridPosition(50.0, 0.0)),
        ]
        env = RadioEnvironment(aps, shadowing_sigma_db=0.0)
        obs = env.observe(GridPosition(5.0, 0.0), random.Random(0))
        assert [o.bssid for o in obs] == ["a", "b"]

    def test_shadowing_adds_noise(self):
        env = RadioEnvironment([AP], shadowing_sigma_db=4.0)
        rng = random.Random(1)
        p = GridPosition(10.0, 0.0)
        samples = [env.observe(p, rng)[0].rssi_dbm for _ in range(50)]
        assert statistics.stdev(samples) > 1.0


class TestWifiScan:
    def test_rssi_of_lookup(self):
        scan = WifiScan(0.0, (WifiObservation("x", -50.0),))
        assert scan.rssi_of("x") == -50.0
        assert scan.rssi_of("y") is None

    def test_as_dict(self):
        scan = WifiScan(
            0.0,
            (WifiObservation("x", -50.0), WifiObservation("y", -60.0)),
        )
        assert scan.as_dict() == {"x": -50.0, "y": -60.0}


class TestScanner:
    def test_scan_period_respected(self):
        building = demo_building()
        env = demo_radio_environment(building)
        inside = building.grid.to_wgs84(GridPosition(20.0, 7.5))
        scanner = WifiScanner(
            "wifi0",
            StationaryTrajectory(inside, 100.0),
            env,
            building.grid,
            scan_period_s=2.0,
        )
        readings = scanner.sample(10.0)
        assert len(readings) == 6  # t = 0, 2, 4, 6, 8, 10
        assert all(isinstance(r.payload, WifiScan) for r in readings)

    def test_indoor_scan_sees_aps(self):
        building = demo_building()
        env = demo_radio_environment(building)
        inside = building.grid.to_wgs84(GridPosition(20.0, 7.5))
        scanner = WifiScanner(
            "wifi0",
            StationaryTrajectory(inside, 10.0),
            env,
            building.grid,
            seed=1,
        )
        scan = scanner.sample(0.0)[0].payload
        assert len(scan.observations) >= 2

    def test_far_away_scan_is_empty(self):
        building = demo_building()
        env = demo_radio_environment(building)
        far = building.grid.to_wgs84(GridPosition(5000.0, 5000.0))
        scanner = WifiScanner(
            "wifi0",
            StationaryTrajectory(far, 10.0),
            env,
            building.grid,
            seed=1,
        )
        scan = scanner.sample(0.0)[0].payload
        assert scan.observations == ()

    def test_rejects_nonpositive_period(self):
        building = demo_building()
        with pytest.raises(ValueError):
            WifiScanner(
                "wifi0",
                StationaryTrajectory(Wgs84Position(0, 0), 1.0),
                demo_radio_environment(building),
                building.grid,
                scan_period_s=0.0,
            )


class TestRadioMap:
    def test_map_covers_positions_in_range(self):
        env = open_environment()
        positions = [GridPosition(x, 0.0) for x in (1.0, 10.0, 30.0)]
        radio_map = build_radio_map(env, positions)
        assert len(radio_map) == 3
        for _pos, vector in radio_map:
            assert "ap:test" in vector

    def test_map_drops_out_of_range_entries(self):
        env = open_environment(noise_floor_dbm=-50.0)
        radio_map = build_radio_map(env, [GridPosition(1000.0, 0.0)])
        assert radio_map[0][1] == {}
