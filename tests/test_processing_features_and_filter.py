"""Tests for the §3.1 adaptation: GPS features and the satellite filter."""

import pytest

from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum, Kind
from repro.core.graph import GraphError, ProcessingGraph
from repro.processing.filters import SatelliteFilterComponent
from repro.processing.gps_features import HdopFeature, NumberOfSatellitesFeature
from repro.processing.parser import NmeaParserComponent
from repro.sensors.nmea import GgaSentence, GsaSentence, VtgSentence


def gga(t=0.0, sats=8, hdop=1.2, quality=1):
    lat, lon = (56.17, 10.19) if quality else (None, None)
    return GgaSentence(t, lat, lon, quality, sats, hdop, 40.0)


def build_parser_pipeline(sink_accepts):
    graph = ProcessingGraph()
    source = SourceComponent("gps", (Kind.NMEA_RAW,))
    parser = NmeaParserComponent()
    sink = ApplicationSink("app", sink_accepts)
    for c in (source, parser, sink):
        graph.add(c)
    graph.connect("gps", "parser")
    graph.connect("parser", "app")
    return graph, source, parser, sink


def inject(source, sentence, t=0.0):
    source.inject(Datum(Kind.NMEA_RAW, sentence.encode() + "\r\n", t))


class TestNumberOfSatellitesFeature:
    def test_count_emitted_in_band(self):
        _g, source, parser, sink = build_parser_pipeline(
            (Kind.NMEA_SENTENCE, Kind.NUM_SATELLITES)
        )
        parser.attach_feature(NumberOfSatellitesFeature())
        inject(source, gga(sats=7))
        kinds = [d.kind for d in sink.received]
        assert Kind.NUM_SATELLITES in kinds
        count = sink.last(Kind.NUM_SATELLITES)
        assert count.payload == 7

    def test_count_exposed_as_state(self):
        _g, source, parser, _sink = build_parser_pipeline(
            (Kind.NMEA_SENTENCE,)
        )
        feature = NumberOfSatellitesFeature()
        parser.attach_feature(feature)
        assert feature.get_number_of_satellites() is None
        inject(source, gga(sats=5))
        assert feature.get_number_of_satellites() == 5

    def test_non_gga_sentences_do_not_update(self):
        _g, source, parser, _sink = build_parser_pipeline(
            (Kind.NMEA_SENTENCE,)
        )
        feature = NumberOfSatellitesFeature()
        parser.attach_feature(feature)
        inject(source, VtgSentence(0.0, 1.0))
        assert feature.get_number_of_satellites() is None


class TestHdopFeature:
    def test_hdop_collected_from_gga_and_gsa(self):
        _g, source, parser, _sink = build_parser_pipeline(
            (Kind.NMEA_SENTENCE,)
        )
        feature = HdopFeature()
        parser.attach_feature(feature)
        inject(source, gga(hdop=1.5))
        inject(source, GsaSentence(3, (1, 2, 3, 4), 2.5, 2.0, 1.0))
        assert feature.get_hdop() == pytest.approx(2.0)
        assert feature.recent_hdops() == [1.5, 2.0]

    def test_history_bounded(self):
        _g, source, parser, _sink = build_parser_pipeline(
            (Kind.NMEA_SENTENCE,)
        )
        feature = HdopFeature(history=3)
        parser.attach_feature(feature)
        for i in range(6):
            inject(source, gga(t=float(i), hdop=float(i + 1)), t=float(i))
        assert feature.recent_hdops() == [4.0, 5.0, 6.0]

    def test_hdop_emitted_in_band(self):
        _g, source, parser, sink = build_parser_pipeline(
            (Kind.NMEA_SENTENCE, Kind.HDOP)
        )
        parser.attach_feature(HdopFeature())
        inject(source, gga(hdop=1.7))
        hdop = sink.last(Kind.HDOP)
        assert hdop.payload == pytest.approx(1.7)


class TestSatelliteFilter:
    """The §3.1 scenario: insert a filter after the Parser."""

    def build(self, min_satellites=4):
        graph, source, parser, sink = build_parser_pipeline(
            (Kind.NMEA_SENTENCE,)
        )
        parser.attach_feature(NumberOfSatellitesFeature())
        filter_ = SatelliteFilterComponent(min_satellites=min_satellites)
        graph.insert_between("parser", "app", filter_)
        return graph, source, filter_, sink

    def test_connection_requires_feature(self):
        graph, _source, parser, _sink = build_parser_pipeline(
            (Kind.NMEA_SENTENCE,)
        )
        filter_ = SatelliteFilterComponent()
        graph.add(filter_)
        with pytest.raises(GraphError):
            graph.connect("parser", filter_.name)

    def test_low_satellite_fixes_dropped(self):
        _g, source, filter_, sink = self.build(min_satellites=4)
        inject(source, gga(t=0.0, sats=2), t=0.0)
        inject(source, gga(t=1.0, sats=8), t=1.0)
        fixes = [
            d
            for d in sink.received
            if isinstance(d.payload, GgaSentence) and d.payload.has_fix
        ]
        assert len(fixes) == 1
        assert fixes[0].payload.num_satellites == 8
        assert filter_.rejected == 1
        assert filter_.passed == 1

    def test_non_position_sentences_pass(self):
        _g, source, _filter, sink = self.build(min_satellites=12)
        inject(source, VtgSentence(0.0, 1.0))
        assert len(sink.received) == 1

    def test_threshold_adjustable_at_runtime(self):
        _g, source, filter_, sink = self.build(min_satellites=10)
        inject(source, gga(t=0.0, sats=8), t=0.0)
        assert filter_.rejected == 1
        filter_.set_threshold(4)
        inject(source, gga(t=1.0, sats=8), t=1.0)
        assert filter_.passed == 1

    def test_rejection_rate(self):
        _g, source, filter_, _sink = self.build(min_satellites=4)
        assert filter_.rejection_rate() == 0.0
        inject(source, gga(t=0.0, sats=2), t=0.0)
        inject(source, gga(t=1.0, sats=8), t=1.0)
        assert filter_.rejection_rate() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SatelliteFilterComponent(min_satellites=-1)
        with pytest.raises(ValueError):
            SatelliteFilterComponent().set_threshold(-2)
