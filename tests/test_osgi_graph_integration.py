"""Integration: bundles contribute processing components to the graph.

Exercises the paper's §3 realisation story: components are OSGi-style
service components; bundle lifecycle drives graph membership; dynamic
composition (auto-assembly) wires them.
"""

import pytest

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum, Kind
from repro.core.pcl import ProcessChannelLayer
from repro.sensors.nmea import GgaSentence
from repro.processing.interpreter import NmeaInterpreterComponent
from repro.processing.parser import NmeaParserComponent
from repro.services.bundle import Framework
from repro.services.graph_binding import COMPONENT_INTERFACE, GraphBinder


class GpsBundle:
    """Contributes the GPS strand: source + parser + interpreter."""

    def __init__(self):
        self.source = SourceComponent("gps", (Kind.NMEA_RAW,))

    def start(self, context):
        context.register_service(COMPONENT_INTERFACE, self.source)
        context.register_service(
            COMPONENT_INTERFACE, NmeaParserComponent(name="parser")
        )
        context.register_service(
            COMPONENT_INTERFACE,
            NmeaInterpreterComponent(name="interpreter"),
        )

    def stop(self, context):
        pass


class AppBundle:
    def __init__(self):
        self.sink = ApplicationSink("app", (Kind.POSITION_WGS84,))

    def start(self, context):
        context.register_service(COMPONENT_INTERFACE, self.sink)

    def stop(self, context):
        pass


@pytest.fixture()
def platform():
    framework = Framework()
    binder = GraphBinder(framework.registry)
    return framework, binder


class TestBundleContribution:
    def test_bundles_assemble_a_working_pipeline(self, platform):
        framework, binder = platform
        gps_bundle = GpsBundle()
        app_bundle = AppBundle()
        framework.install("gps-bundle", gps_bundle)
        framework.install("app-bundle", app_bundle)
        framework.start("gps-bundle")
        framework.start("app-bundle")

        assert set(binder.graph.components()) >= set()
        names = {c.name for c in binder.graph.components()}
        assert names == {"gps", "parser", "interpreter", "app"}
        # Auto-assembly wired the strand; data flows end to end.
        sentence = GgaSentence(0.0, 56.17, 10.19, 1, 8, 1.1, 40.0)
        gps_bundle.source.inject(
            Datum(Kind.NMEA_RAW, sentence.encode() + "\r\n", 0.0)
        )
        assert app_bundle.sink.last(Kind.POSITION_WGS84) is not None

    def test_stopping_a_bundle_removes_its_components(self, platform):
        framework, binder = platform
        gps_bundle = GpsBundle()
        app_bundle = AppBundle()
        framework.install("gps-bundle", gps_bundle)
        framework.install("app-bundle", app_bundle)
        framework.start("gps-bundle")
        framework.start("app-bundle")
        framework.stop("gps-bundle")
        names = {c.name for c in binder.graph.components()}
        assert names == {"app"}
        assert binder.graph.connections() == []

    def test_restart_rewires(self, platform):
        framework, binder = platform
        framework.install("app-bundle", AppBundle())
        framework.start("app-bundle")
        first = GpsBundle()
        framework.install("gps-1", first)
        framework.start("gps-1")
        framework.stop("gps-1")
        framework.uninstall("gps-1")
        second = GpsBundle()
        framework.install("gps-2", second)
        framework.start("gps-2")
        names = {c.name for c in binder.graph.components()}
        assert names == {"gps", "parser", "interpreter", "app"}

    def test_pre_registered_components_adopted(self):
        framework = Framework()
        source = SourceComponent("early", ("x",))
        framework.registry.register(COMPONENT_INTERFACE, source)
        binder = GraphBinder(framework.registry)
        assert "early" in binder.graph

    def test_non_component_services_ignored(self, platform):
        framework, binder = platform
        framework.registry.register(COMPONENT_INTERFACE, "not-a-component")
        framework.registry.register("other.Interface", object())
        assert binder.graph.components() == []

    def test_close_stops_mirroring(self, platform):
        framework, binder = platform
        binder.close()
        framework.registry.register(
            COMPONENT_INTERFACE, SourceComponent("late", ("x",))
        )
        assert "late" not in binder.graph

    def test_pcl_follows_bundle_lifecycle(self, platform):
        framework, binder = platform
        pcl = ProcessChannelLayer(binder.graph)
        gps_bundle = GpsBundle()
        app_bundle = AppBundle()
        framework.install("gps-bundle", gps_bundle)
        framework.install("app-bundle", app_bundle)
        framework.start("gps-bundle")
        framework.start("app-bundle")
        assert [c.id for c in pcl.channels()] == ["gps->app"]
        framework.stop("gps-bundle")
        assert pcl.channels() == []
