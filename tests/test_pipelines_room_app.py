"""Integration test: the Fig. 1 Room Number Application end to end."""

import pytest

from repro.core import Criteria, Kind, PerPos
from repro.geo.grid import GridPosition
from repro.model.demo import demo_building, demo_radio_environment
from repro.processing.pipelines import (
    build_gps_pipeline,
    build_room_app,
    build_wifi_pipeline,
)
from repro.sensors.gps import GpsReceiver, INDOOR, OPEN_SKY
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.sensors.wifi import WifiScanner


@pytest.fixture(scope="module")
def room_app_run():
    """Walk from outside through the corridor into office N2."""
    building = demo_building()
    grid = building.grid
    waypoints = [
        Waypoint(0.0, grid.to_wgs84(GridPosition(-30.0, 7.5))),
        Waypoint(30.0, grid.to_wgs84(GridPosition(-2.0, 7.5))),
        Waypoint(50.0, grid.to_wgs84(GridPosition(15.0, 7.5))),
        Waypoint(70.0, grid.to_wgs84(GridPosition(15.0, 12.0))),
        Waypoint(120.0, grid.to_wgs84(GridPosition(15.0, 12.0))),
    ]
    trajectory = WaypointTrajectory(waypoints)

    def environment(t, position):
        return (
            INDOOR
            if building.contains(grid.to_grid(position))
            else OPEN_SKY
        )

    gps = GpsReceiver("gps-dev", trajectory, environment, seed=11)
    wifi = WifiScanner(
        "wifi-dev",
        trajectory,
        demo_radio_environment(building),
        grid,
        seed=12,
    )
    middleware = PerPos()
    app = build_room_app(middleware, gps, wifi, building)
    middleware.run_until(120.0)
    return building, trajectory, middleware, app


class TestRoomApp:
    def test_structure_matches_fig1(self, room_app_run):
        _b, _t, middleware, app = room_app_run
        structure = middleware.psl.structure()
        for name in ("gps-parser", "gps-interpreter", "wifi-positioning",
                     "fusion", "resolver"):
            assert name in structure

    def test_channels_match_fig2(self, room_app_run):
        _b, _t, middleware, _app = room_app_run
        ids = [c.id for c in middleware.pcl.channels()]
        assert "gps->fusion" in ids
        assert "wifi->fusion" in ids

    def test_positions_and_rooms_delivered(self, room_app_run):
        _b, _t, _mw, app = room_app_run
        kinds = {d.kind for d in app.provider.sink.received}
        assert Kind.POSITION_WGS84 in kinds
        assert Kind.ROOM_ID in kinds

    def test_final_room_is_n2(self, room_app_run):
        _b, _t, _mw, app = room_app_run
        room = app.provider.last_known(Kind.ROOM_ID)
        assert room.payload.room_id == "N2"

    def test_final_position_close_to_truth(self, room_app_run):
        _b, trajectory, _mw, app = room_app_run
        truth = trajectory.position_at(120.0)
        reported = app.provider.last_position()
        assert truth.distance_to(reported) < 10.0

    def test_provider_discoverable_by_criteria(self, room_app_run):
        _b, _t, middleware, app = room_app_run
        chosen = middleware.get_provider(
            Criteria(kind=Kind.ROOM_ID, technology="wifi")
        )
        assert chosen is app.provider

    def test_indoor_positions_come_from_wifi(self, room_app_run):
        """While indoors the GPS is stale/absent; fusion must have chosen
        the WiFi engine for the late (indoor) part of the walk."""
        _b, _t, _mw, app = room_app_run
        late_positions = [
            d
            for d in app.provider.sink.received
            if d.kind == Kind.POSITION_WGS84 and d.timestamp > 90.0
        ]
        assert late_positions
        sources = {
            d.attributes.get("selected_source") for d in late_positions
        }
        assert "wifi-positioning" in sources


class TestPipelineBuilders:
    def test_gps_pipeline_names(self):
        building = demo_building()
        grid = building.grid
        trajectory = WaypointTrajectory(
            [
                Waypoint(0.0, grid.to_wgs84(GridPosition(0.0, 0.0))),
                Waypoint(10.0, grid.to_wgs84(GridPosition(5.0, 0.0))),
            ]
        )
        middleware = PerPos()
        gps = GpsReceiver("g", trajectory, seed=0)
        pipeline = build_gps_pipeline(middleware, gps, prefix="g")
        assert pipeline.source == "g"
        assert middleware.graph.downstream("g") == [pipeline.parser]

    def test_wifi_pipeline_names(self):
        building = demo_building()
        grid = building.grid
        trajectory = WaypointTrajectory(
            [
                Waypoint(0.0, grid.to_wgs84(GridPosition(0.0, 0.0))),
                Waypoint(10.0, grid.to_wgs84(GridPosition(5.0, 0.0))),
            ]
        )
        middleware = PerPos()
        wifi = WifiScanner(
            "w", trajectory, demo_radio_environment(building), grid
        )
        pipeline = build_wifi_pipeline(middleware, wifi, building, prefix="w")
        assert middleware.graph.downstream("w") == [pipeline.engine]
