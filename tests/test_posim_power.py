"""Tests for the PoSIM-style power-policy scenario (§3.3 comparison)."""

import pytest

from repro.baselines.posim_power import PosimPowerScenario
from repro.geo.wgs84 import Wgs84Position
from repro.sensors.trajectory import (
    RandomWalkTrajectory,
    StationaryTrajectory,
)

START = Wgs84Position(56.17, 10.19)


class TestPosimPowerScenario:
    def test_moving_target_runs_high_rate(self):
        walk = RandomWalkTrajectory(
            START, 300.0, seed=7, pause_probability=0.0
        )
        result = PosimPowerScenario(walk, seed=1).run(300.0)
        assert result.positions_reported > 100
        assert result.gps_on_fraction > 0.8
        assert result.mean_error_m < 20.0

    def test_stationary_target_switches_to_low(self):
        still = StationaryTrajectory(START, 600.0)
        result = PosimPowerScenario(still, seed=1).run(600.0)
        # The low-rate policy kicks in: far fewer fixes than seconds.
        assert result.positions_reported < 100
        assert result.gps_on_fraction < 0.6

    def test_policy_fires_are_recorded(self):
        still = StationaryTrajectory(START, 300.0)
        scenario = PosimPowerScenario(still, seed=1)
        scenario.run(300.0)
        names = {name for name, _v in scenario.middleware.policy_firings}
        assert "slow-to-low" in names

    def test_energy_breakdown_populated(self):
        walk = RandomWalkTrajectory(START, 120.0, seed=7)
        result = PosimPowerScenario(walk, seed=1).run(120.0)
        assert result.energy_breakdown["gps"] > 0
        assert result.energy_breakdown["radio"] > 0
        assert result.energy_j == pytest.approx(
            sum(result.energy_breakdown.values())
        )

    def test_two_rate_costs_more_than_entracked_dynamic(self):
        """The §3.3 architectural claim, quantified on a short run."""
        from repro.energy.entracked import EnTrackedSystem

        walk = RandomWalkTrajectory(
            START, 600.0, seed=4, pause_probability=0.3, pause_s=40.0
        )
        posim = PosimPowerScenario(walk, seed=1).run(600.0)
        entracked = EnTrackedSystem(
            walk, threshold_m=10.0, mode="entracked", seed=1
        ).run(600.0)
        assert entracked.energy_j < posim.energy_j
