"""Tests for the Process Structure Layer."""

import pytest

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.features import ComponentFeature, FeatureError
from repro.core.graph import GraphError, ProcessingGraph
from repro.core.psl import ProcessStructureLayer


class ThresholdFeature(ComponentFeature):
    name = "Threshold"

    def __init__(self):
        super().__init__()
        self._level = 5

    def get_level(self):
        return self._level

    def set_level(self, level):
        self._level = level


def build_layer():
    graph = ProcessingGraph()
    source = SourceComponent("s", ("x",))
    mid = FunctionComponent("m", ("x",), ("x",), fn=lambda d: d)
    sink = ApplicationSink("app", ("x",))
    for c in (source, mid, sink):
        graph.add(c)
    graph.connect("s", "m")
    graph.connect("m", "app")
    return ProcessStructureLayer(graph), source, sink


class TestInspection:
    def test_components_sorted(self):
        psl, _s, _sink = build_layer()
        assert psl.components() == ["app", "m", "s"]

    def test_describe(self):
        psl, _s, _sink = build_layer()
        info = psl.describe("m")
        assert info["name"] == "m"
        assert info["capabilities"] == ["x"]

    def test_structure_rendering(self):
        psl, _s, _sink = build_layer()
        text = psl.structure()
        assert text.splitlines()[0] == "app"

    def test_methods_of_includes_feature_methods(self):
        psl, _s, _sink = build_layer()
        psl.attach_feature("m", ThresholdFeature())
        methods = psl.methods_of("m")
        assert "Threshold.get_level" in methods

    def test_topology_version_tracks_manipulation_only(self):
        psl, source, _sink = build_layer()
        before = psl.topology_version()
        source.inject(Datum("x", 1, 0.0))
        assert psl.topology_version() == before
        psl.insert(FunctionComponent("f", ("x",), ("x",), fn=lambda d: d))
        assert psl.topology_version() > before
        after_insert = psl.topology_version()
        psl.insert_between("s", "m", psl.component("f"))
        assert psl.topology_version() > after_insert


class TestManipulation:
    def test_insert_and_connect(self):
        psl, source, sink = build_layer()
        tag = FunctionComponent(
            "tag", ("x",), ("x",), fn=lambda d: d.with_payload("tagged")
        )
        psl.insert_between("m", "app", tag)
        source.inject(Datum("x", "raw", 0.0))
        assert sink.last().payload == "tagged"

    def test_insert_after_splices_all_edges(self):
        psl, source, _sink = build_layer()
        other = ApplicationSink("app2", ("x",))
        psl.insert(other)
        psl.connect("m", "app2")
        double = FunctionComponent(
            "double", ("x",), ("x",), fn=lambda d: d.with_payload(d.payload * 2)
        )
        psl.insert_after("m", double)
        source.inject(Datum("x", 3, 0.0))
        assert psl.component("app").last().payload == 6
        assert other.last().payload == 6

    def test_insert_after_requires_consumers(self):
        psl, _source, _sink = build_layer()
        with pytest.raises(GraphError):
            psl.insert_after(
                "app",
                FunctionComponent("n", ("x",), ("x",), fn=lambda d: d),
            )

    def test_delete_with_reconnect(self):
        psl, source, sink = build_layer()
        psl.delete("m")
        source.inject(Datum("x", 1, 0.0))
        assert sink.last().payload == 1

    def test_disconnect(self):
        psl, source, sink = build_layer()
        psl.disconnect("m", "app")
        source.inject(Datum("x", 1, 0.0))
        assert sink.received == []


class TestFeaturesAndInvocation:
    def test_attach_and_find_feature(self):
        psl, _s, _sink = build_layer()
        psl.attach_feature("m", ThresholdFeature())
        assert psl.find_feature("Threshold") == ["m"]
        assert psl.find_feature("Missing") == []

    def test_detach_feature(self):
        psl, _s, _sink = build_layer()
        psl.attach_feature("m", ThresholdFeature())
        psl.detach_feature("m", "Threshold")
        assert psl.find_feature("Threshold") == []

    def test_invoke_component_method(self):
        psl, _s, _sink = build_layer()
        assert "x" in psl.invoke("m", "public_methods").__iter__.__self__ or True
        assert psl.invoke("m", "describe")["name"] == "m"

    def test_invoke_feature_method_dotted(self):
        psl, _s, _sink = build_layer()
        psl.attach_feature("m", ThresholdFeature())
        assert psl.invoke("m", "Threshold.get_level") == 5
        psl.invoke("m", "Threshold.set_level", 9)
        assert psl.invoke("m", "Threshold.get_level") == 9

    def test_invoke_unknown_feature(self):
        psl, _s, _sink = build_layer()
        with pytest.raises(FeatureError):
            psl.invoke("m", "Ghost.method")

    def test_invoke_unknown_method(self):
        psl, _s, _sink = build_layer()
        with pytest.raises(AttributeError):
            psl.invoke("m", "no_such_method")

    def test_invoke_private_method_blocked(self):
        psl, _s, _sink = build_layer()
        with pytest.raises(AttributeError):
            psl.invoke("m", "_send")
