"""Capstone integration: every subsystem composing in one scenario.

One middleware instance runs GPS + WiFi + BLE through their pipelines
into a particle filter, with the §3.1/§3.2 adaptations attached, the
resolver and a mode-detection chain downstream, the track-history and
report services watching, and criteria-based provider selection on top.
If the paper's architecture holds, all of this composes without any
component knowing about the others.
"""

import pytest

from repro.core import Criteria, Kind, PerPos, PositioningError
from repro.core.history import TrackHistoryService
from repro.core.report import render_report
from repro.geo.grid import GridPosition
from repro.model.demo import (
    demo_beacons,
    demo_building,
    demo_radio_environment,
)
from repro.processing.beacon_positioning import BeaconPositioningComponent
from repro.processing.gps_features import HdopFeature, NumberOfSatellitesFeature
from repro.processing.filters import SatelliteFilterComponent
from repro.processing.pipelines import build_gps_pipeline, build_wifi_pipeline
from repro.processing.resolver import RoomResolverComponent
from repro.sensors.ble import BleScanner
from repro.sensors.gps import GpsReceiver, INDOOR, OPEN_SKY
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.sensors.wifi import WifiScanner
from repro.tracking.likelihood import LikelihoodFeature
from repro.tracking.particle_filter import ParticleFilterComponent


@pytest.fixture(scope="module")
def system():
    building = demo_building()
    grid = building.grid
    trajectory = WaypointTrajectory(
        [
            Waypoint(0.0, grid.to_wgs84(GridPosition(-30.0, 7.5))),
            Waypoint(30.0, grid.to_wgs84(GridPosition(-2.0, 7.5))),
            Waypoint(55.0, grid.to_wgs84(GridPosition(15.0, 7.5))),
            Waypoint(75.0, grid.to_wgs84(GridPosition(15.0, 12.0))),
            Waypoint(150.0, grid.to_wgs84(GridPosition(15.0, 12.0))),
        ]
    )

    def sky(t, position):
        inside = building.contains(grid.to_grid(position))
        return INDOOR if inside else OPEN_SKY

    middleware = PerPos()
    gps = GpsReceiver("gps-dev", trajectory, sky, seed=31)
    wifi = WifiScanner(
        "wifi-dev", trajectory, demo_radio_environment(building), grid,
        seed=32,
    )
    ble = BleScanner(
        "ble-dev", trajectory, demo_beacons(), grid, seed=33,
        wall_counter=building.walls_between,
    )

    gps_pipe = build_gps_pipeline(middleware, gps, prefix="gps-dev")
    wifi_pipe = build_wifi_pipeline(middleware, wifi, building, prefix="wifi-dev")
    middleware.attach_sensor(ble, (Kind.BEACON_SCAN,))
    ble_engine = BeaconPositioningComponent(demo_beacons(), grid)
    middleware.graph.add(ble_engine)
    middleware.graph.connect("ble-dev", ble_engine.name)

    # §3.1: satellite filtering on the GPS strand.
    parser = middleware.graph.component(gps_pipe.parser)
    parser.attach_feature(NumberOfSatellitesFeature())
    parser.attach_feature(HdopFeature())
    middleware.psl.insert_between(
        gps_pipe.parser,
        gps_pipe.interpreter,
        SatelliteFilterComponent(min_satellites=5),
    )

    # §3.2: particle filter as the fusion node, likelihood-driven.
    pf = ParticleFilterComponent(
        building, pcl=middleware.pcl, num_particles=400, seed=34
    )
    middleware.graph.add(pf)
    middleware.graph.connect(gps_pipe.interpreter, pf.name)
    middleware.graph.connect(wifi_pipe.engine, pf.name)
    middleware.graph.connect(ble_engine.name, pf.name)
    gps_channel = middleware.pcl.channel_delivering(
        pf.name, gps_pipe.interpreter
    )
    gps_channel.attach_feature(LikelihoodFeature())

    resolver = RoomResolverComponent(building, name="resolver")
    middleware.graph.add(resolver)
    middleware.graph.connect(pf.name, resolver.name)

    provider = middleware.create_provider(
        "grand-app",
        accepts=(Kind.POSITION_WGS84, Kind.ROOM_ID),
        technologies=("gps", "wifi", "ble"),
    )
    middleware.graph.connect(pf.name, provider.sink.name)
    middleware.graph.connect(resolver.name, provider.sink.name)

    history = TrackHistoryService()
    history.follow_provider(provider)

    middleware.run_until(150.0)
    return building, trajectory, middleware, provider, history, pf


class TestGrandIntegration:
    def test_final_room_and_error(self, system):
        building, trajectory, _mw, provider, _history, _pf = system
        assert provider.last_known(Kind.ROOM_ID).payload.room_id == "N2"
        truth = trajectory.position_at(150.0)
        assert truth.distance_to(provider.last_position()) < 8.0

    def test_all_three_technologies_contributed(self, system):
        _b, _t, middleware, _provider, _history, pf = system
        channel_ids = {c.id for c in middleware.pcl.channels()}
        assert {"gps-dev->particle-filter", "wifi-dev->particle-filter",
                "ble-dev->particle-filter"} <= channel_ids
        assert pf.updates > 50

    def test_adaptations_visible_from_top_layer(self, system):
        _b, _t, _mw, provider, _history, _pf = system
        features = provider.available_features()
        assert "Likelihood" in features
        assert "NumberOfSatellites" in features
        assert "HDOP" in features

    def test_criteria_selection_with_accuracy(self, system):
        _b, _t, middleware, provider, _history, _pf = system
        chosen = middleware.get_provider(
            Criteria(technology="ble", horizontal_accuracy_m=50.0)
        )
        assert chosen is provider
        with pytest.raises(PositioningError):
            middleware.get_provider(
                Criteria(horizontal_accuracy_m=0.001)
            )

    def test_history_service_tracked_the_walk(self, system):
        _b, _t, _mw, _provider, history, _pf = system
        assert history.size("grand-app") > 100
        distance = history.distance_travelled("grand-app")
        # The walk covers ~50 m of ground truth; estimates jitter more.
        assert 30.0 < distance < 400.0
        geojson = history.export_geojson("grand-app")
        assert len(geojson["geometry"]["coordinates"]) == history.size(
            "grand-app"
        )

    def test_infrastructure_report_covers_everything(self, system):
        _b, _t, middleware, _provider, _history, _pf = system
        report = render_report(middleware)
        for fragment in (
            "particle-filter",
            "satellite-filter",
            "ble-positioning",
            "resolver",
            "seam indicators",
        ):
            assert fragment in report

    def test_satellite_filter_actually_filtered(self, system):
        _b, _t, middleware, _provider, _history, _pf = system
        filt = middleware.graph.component("satellite-filter")
        # Indoors the receiver holds stale low-satellite fixes; the
        # filter must have rejected some.
        assert filt.rejected > 0
        assert filt.passed > 0
