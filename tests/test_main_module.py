"""Tests for the ``python -m repro`` demo entry point."""

from repro.__main__ import main


def test_main_runs_and_reports(capsys):
    exit_code = main(["--duration", "60", "--seed", "7"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "Room Number Application" in out
    assert "[Process Structure Layer]" in out
    assert "final error:" in out
    assert "POSITIONING INFRASTRUCTURE" in out


def test_main_seed_changes_run(capsys):
    main(["--duration", "40", "--seed", "1"])
    first = capsys.readouterr().out
    main(["--duration", "40", "--seed", "2"])
    second = capsys.readouterr().out
    assert first != second
