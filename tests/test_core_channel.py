"""Tests for channels, logical time, and data trees (paper §2.2, Fig. 4)."""

import pytest

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum, Kind
from repro.core.datatree import DataTree, DataTreeElement
from repro.core.features import ComponentFeature, FeatureError
from repro.core.channel import Channel, ChannelFeature
from repro.core.graph import ProcessingGraph
from repro.core.pcl import ProcessChannelLayer


def build_linear_graph():
    """source -> batcher -> sink; batcher emits one output per 2 inputs."""
    graph = ProcessingGraph()
    source = SourceComponent("src", ("x",))

    state = {"buffer": []}

    def batch(d):
        state["buffer"].append(d.payload)
        if len(state["buffer"]) == 2:
            merged = d.with_payload(tuple(state["buffer"]))
            state["buffer"] = []
            return merged
        return None

    batcher = FunctionComponent("batcher", ("x",), ("x",), fn=batch)
    sink = ApplicationSink("app", ("x",))
    for c in (source, batcher, sink):
        graph.add(c)
    graph.connect("src", "batcher")
    graph.connect("batcher", "app")
    return graph, source


class RecordingChannelFeature(ChannelFeature):
    name = "Recorder"

    def __init__(self):
        super().__init__()
        self.trees = []

    def apply(self, data_tree):
        self.trees.append(data_tree)


class TestLogicalTime:
    def test_one_output_per_two_inputs_has_correct_range(self):
        graph, source = build_linear_graph()
        pcl = ProcessChannelLayer(graph)
        channel = pcl.channel("src->app")
        feature = RecordingChannelFeature()
        channel.attach_feature(feature)
        for i in range(4):
            source.inject(Datum("x", i, float(i)))
        assert len(feature.trees) == 2
        first, second = feature.trees
        assert first.root.logical_time == 1
        assert first.root.time_range == (1, 2)
        assert second.root.logical_time == 2
        assert second.root.time_range == (3, 4)

    def test_tree_contains_contributing_source_elements(self):
        graph, source = build_linear_graph()
        pcl = ProcessChannelLayer(graph)
        channel = pcl.channel("src->app")
        feature = RecordingChannelFeature()
        channel.attach_feature(feature)
        for i in range(2):
            source.inject(Datum("x", f"s{i}", float(i)))
        tree = feature.trees[0]
        assert tree.depth == 2
        source_payloads = [e.datum.payload for e in tree.layer(0)]
        assert source_payloads == ["s0", "s1"]
        assert tree.root.datum.payload == ("s0", "s1")

    def test_source_layer_has_no_time_range(self):
        graph, source = build_linear_graph()
        pcl = ProcessChannelLayer(graph)
        channel = pcl.channel("src->app")
        feature = RecordingChannelFeature()
        channel.attach_feature(feature)
        source.inject(Datum("x", 1, 0.0))
        source.inject(Datum("x", 2, 1.0))
        for element in feature.trees[0].layer(0):
            assert element.time_range is None

    def test_latest_output(self):
        graph, source = build_linear_graph()
        pcl = ProcessChannelLayer(graph)
        channel = pcl.channel("src->app")
        assert channel.latest_output() is None
        source.inject(Datum("x", 1, 0.0))
        source.inject(Datum("x", 2, 1.0))
        assert channel.latest_output().datum.payload == (1, 2)

    def test_history_bounded(self):
        graph, source = build_linear_graph()
        channel = Channel(
            graph,
            [graph.component("src"), graph.component("batcher")],
            "app",
            history_limit=4,
        )
        for i in range(20):
            source.inject(Datum("x", i, float(i)))
        assert len(channel._history[0]) == 4


class TestChannelFeatures:
    def test_apply_called_per_output(self):
        graph, source = build_linear_graph()
        pcl = ProcessChannelLayer(graph)
        feature = RecordingChannelFeature()
        pcl.attach_feature("src->app", feature)
        for i in range(6):
            source.inject(Datum("x", i, float(i)))
        assert len(feature.trees) == 3

    def test_requires_component_features_enforced(self):
        class Demanding(ChannelFeature):
            name = "Demanding"
            requires_component_features = ("HDOP",)

            def apply(self, tree):
                pass

        graph, _source = build_linear_graph()
        pcl = ProcessChannelLayer(graph)
        with pytest.raises(FeatureError):
            pcl.attach_feature("src->app", Demanding())

    def test_requirement_satisfied_by_member_feature(self):
        class Provider(ComponentFeature):
            name = "HDOP"

        class Demanding(ChannelFeature):
            name = "Demanding"
            requires_component_features = ("HDOP",)

            def apply(self, tree):
                pass

        graph, _source = build_linear_graph()
        graph.component("batcher").attach_feature(Provider())
        pcl = ProcessChannelLayer(graph)
        pcl.attach_feature("src->app", Demanding())
        assert pcl.channel("src->app").get_feature("Demanding") is not None

    def test_get_feature_by_class_and_name(self):
        graph, _source = build_linear_graph()
        pcl = ProcessChannelLayer(graph)
        feature = RecordingChannelFeature()
        pcl.attach_feature("src->app", feature)
        channel = pcl.channel("src->app")
        assert channel.get_feature("Recorder") is feature
        assert channel.get_feature(RecordingChannelFeature) is feature
        assert channel.get_feature("Nope") is None

    def test_duplicate_feature_name_rejected(self):
        graph, _source = build_linear_graph()
        pcl = ProcessChannelLayer(graph)
        pcl.attach_feature("src->app", RecordingChannelFeature())
        with pytest.raises(FeatureError):
            pcl.attach_feature("src->app", RecordingChannelFeature())

    def test_detach_feature(self):
        graph, source = build_linear_graph()
        pcl = ProcessChannelLayer(graph)
        feature = RecordingChannelFeature()
        pcl.attach_feature("src->app", feature)
        pcl.detach_feature("src->app", "Recorder")
        source.inject(Datum("x", 1, 0.0))
        source.inject(Datum("x", 2, 1.0))
        assert feature.trees == []

    def test_describe(self):
        graph, _source = build_linear_graph()
        pcl = ProcessChannelLayer(graph)
        pcl.attach_feature("src->app", RecordingChannelFeature())
        info = pcl.channel("src->app").describe()
        assert info["id"] == "src->app"
        assert info["members"] == ["src", "batcher"]
        assert info["features"] == ["Recorder"]


class TestMergeIsolation:
    def test_channels_do_not_cross_merge_boundaries(self):
        """A merge consumes from two channels; each channel only counts
        elements from its own strand."""
        graph = ProcessingGraph()
        left = SourceComponent("left", ("x",))
        right = SourceComponent("right", ("x",))
        merge = FunctionComponent("merge", ("x",), ("x",), fn=lambda d: d)
        sink = ApplicationSink("app", ("x",))
        for c in (left, right, merge, sink):
            graph.add(c)
        graph.connect("left", "merge")
        graph.connect("right", "merge")
        graph.connect("merge", "app")
        pcl = ProcessChannelLayer(graph)
        ids = [c.id for c in pcl.channels()]
        assert "left->merge" in ids
        assert "right->merge" in ids
        assert "merge->app" in ids

        left_feature = RecordingChannelFeature()
        pcl.attach_feature("left->merge", left_feature)
        left.inject(Datum("x", "fromleft", 0.0))
        right.inject(Datum("x", "fromright", 0.0))
        # Only the left strand's output lands in the left channel trees.
        assert len(left_feature.trees) == 1
        assert left_feature.trees[0].root.datum.payload == "fromleft"
