"""Tests for WGS84 positions and spherical geometry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo.wgs84 import (
    Wgs84Position,
    destination_point,
    haversine_m,
    initial_bearing_deg,
)

AARHUS = Wgs84Position(56.1629, 10.2039)
COPENHAGEN = Wgs84Position(55.6761, 12.5683)

latitudes = st.floats(min_value=-85.0, max_value=85.0)
longitudes = st.floats(min_value=-179.0, max_value=179.0)


def test_latitude_out_of_range_rejected():
    with pytest.raises(ValueError):
        Wgs84Position(91.0, 0.0)
    with pytest.raises(ValueError):
        Wgs84Position(-90.5, 0.0)


def test_longitude_normalised_into_half_open_interval():
    assert Wgs84Position(0.0, 190.0).longitude_deg == pytest.approx(-170.0)
    assert Wgs84Position(0.0, -190.0).longitude_deg == pytest.approx(170.0)
    assert Wgs84Position(0.0, 540.0).longitude_deg == pytest.approx(180.0)


def test_negative_accuracy_rejected():
    with pytest.raises(ValueError):
        Wgs84Position(0.0, 0.0, accuracy_m=-1.0)


def test_known_distance_aarhus_copenhagen():
    # Roughly 157 km between the two city centres.
    distance = AARHUS.distance_to(COPENHAGEN)
    assert 150_000 < distance < 165_000


def test_distance_is_symmetric():
    assert AARHUS.distance_to(COPENHAGEN) == pytest.approx(
        COPENHAGEN.distance_to(AARHUS)
    )


def test_zero_distance_to_self():
    assert AARHUS.distance_to(AARHUS) == 0.0


def test_bearing_due_north_and_east():
    origin = Wgs84Position(0.0, 0.0)
    north = Wgs84Position(1.0, 0.0)
    east = Wgs84Position(0.0, 1.0)
    assert origin.bearing_to(north) == pytest.approx(0.0, abs=1e-9)
    assert origin.bearing_to(east) == pytest.approx(90.0, abs=1e-9)


def test_moved_preserves_altitude():
    start = Wgs84Position(56.0, 10.0, altitude_m=25.0)
    moved = start.moved(bearing_deg=45.0, distance_m=100.0)
    assert moved.altitude_m == 25.0


@given(latitudes, longitudes, st.floats(min_value=0, max_value=359.99),
       st.floats(min_value=0.1, max_value=5000.0))
def test_destination_distance_roundtrip(lat, lon, bearing, distance):
    """Travelling d metres lands d metres away (spherical consistency)."""
    lat2, lon2 = destination_point(lat, lon, bearing, distance)
    measured = haversine_m(lat, lon, lat2, lon2)
    assert measured == pytest.approx(distance, rel=1e-6, abs=1e-6)


@given(latitudes, longitudes, st.floats(min_value=10.0, max_value=5000.0),
       st.floats(min_value=0, max_value=359.99))
def test_bearing_matches_direction_of_travel(lat, lon, distance, bearing):
    lat2, lon2 = destination_point(lat, lon, bearing, distance)
    measured = initial_bearing_deg(lat, lon, lat2, lon2)
    delta = (measured - bearing + 180.0) % 360.0 - 180.0
    assert abs(delta) < 0.1


@given(latitudes, longitudes, latitudes, longitudes)
def test_haversine_triangle_inequality_via_midpoint(lat1, lon1, lat2, lon2):
    mid_lat = (lat1 + lat2) / 2.0
    mid_lon = (lon1 + lon2) / 2.0
    direct = haversine_m(lat1, lon1, lat2, lon2)
    via = haversine_m(lat1, lon1, mid_lat, mid_lon) + haversine_m(
        mid_lat, mid_lon, lat2, lon2
    )
    assert direct <= via + 1e-6
