"""Tests for the WiFi fingerprint positioning engine."""

import pytest

from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum, Kind
from repro.core.graph import ProcessingGraph
from repro.geo.grid import GridPosition
from repro.model.demo import (
    demo_building,
    demo_radio_environment,
    demo_survey_positions,
)
from repro.processing.wifi_positioning import (
    FingerprintPositioningComponent,
    signal_distance,
)
from repro.sensors.wifi import WifiObservation, WifiScan, build_radio_map


class TestSignalDistance:
    def test_identical_vectors(self):
        assert signal_distance({"a": -50.0}, {"a": -50.0}) == 0.0

    def test_disjoint_coverage_penalised(self):
        near = signal_distance({"a": -50.0}, {"a": -55.0})
        disjoint = signal_distance({"a": -50.0}, {"b": -50.0})
        assert disjoint > near

    def test_empty_vectors(self):
        assert signal_distance({}, {}) == float("inf")

    def test_symmetry(self):
        a = {"x": -40.0, "y": -70.0}
        b = {"x": -45.0, "z": -60.0}
        assert signal_distance(a, b) == signal_distance(b, a)


@pytest.fixture(scope="module")
def engine_setup():
    building = demo_building()
    environment = demo_radio_environment(building)
    radio_map = build_radio_map(environment, demo_survey_positions(2.0))
    engine = FingerprintPositioningComponent(
        radio_map, building.grid, k=3
    )
    graph = ProcessingGraph()
    source = SourceComponent("wifi", (Kind.WIFI_SCAN,))
    sink = ApplicationSink(
        "app", (Kind.POSITION_WGS84, Kind.POSITION_GRID)
    )
    graph.add(source)
    graph.add(engine)
    graph.add(sink)
    graph.connect("wifi", engine.name)
    graph.connect(engine.name, "app")
    return building, environment, engine, source, sink


class TestEngine:
    def test_validation(self):
        building = demo_building()
        with pytest.raises(ValueError):
            FingerprintPositioningComponent([], building.grid)
        radio_map = [(GridPosition(0, 0), {"a": -50.0})]
        with pytest.raises(ValueError):
            FingerprintPositioningComponent(
                radio_map, building.grid, k=0
            )

    def test_noise_free_scan_located_accurately(self, engine_setup):
        building, environment, engine, source, sink = engine_setup
        truth = GridPosition(15.0, 7.5)
        observations = tuple(
            WifiObservation(
                ap.bssid, environment.expected_rssi(ap, truth)
            )
            for ap in environment.access_points
            if environment.expected_rssi(ap, truth)
            >= environment.noise_floor_dbm
        )
        source.inject(
            Datum(Kind.WIFI_SCAN, WifiScan(0.0, observations), 0.0)
        )
        grid_estimate = sink.last(Kind.POSITION_GRID).payload
        assert truth.distance_to(grid_estimate) < 3.0

    def test_produces_both_grid_and_wgs84(self, engine_setup):
        _b, environment, _e, source, sink = engine_setup
        truth = GridPosition(5.0, 3.0)
        observations = tuple(
            WifiObservation(ap.bssid, environment.expected_rssi(ap, truth))
            for ap in environment.access_points
        )
        before = len(sink.received)
        source.inject(
            Datum(Kind.WIFI_SCAN, WifiScan(1.0, observations), 1.0)
        )
        new = sink.received[before:]
        assert {d.kind for d in new} == {
            Kind.POSITION_GRID,
            Kind.POSITION_WGS84,
        }
        wgs = [d for d in new if d.kind == Kind.POSITION_WGS84][0]
        assert wgs.payload.accuracy_m >= 1.0

    def test_empty_scan_produces_nothing(self, engine_setup):
        _b, _env, _e, source, sink = engine_setup
        before = len(sink.received)
        source.inject(Datum(Kind.WIFI_SCAN, WifiScan(2.0, ()), 2.0))
        assert len(sink.received) == before

    def test_non_scan_payload_ignored(self, engine_setup):
        _b, _env, _e, source, sink = engine_setup
        before = len(sink.received)
        source.inject(Datum(Kind.WIFI_SCAN, "not-a-scan", 3.0))
        assert len(sink.received) == before

    def test_map_size_inspection(self, engine_setup):
        _b, _env, engine, _s, _sink = engine_setup
        assert engine.map_size() > 100
