"""Tests for the reference-system transform registry."""

import pytest

from repro.geo.transforms import ReferenceSystem, TransformError, TransformRegistry

WGS84 = ReferenceSystem("wgs84", "geodetic")
ENU = ReferenceSystem("enu", "local")
GRID = ReferenceSystem("grid", "local")
ROOM = ReferenceSystem("room", "symbolic")


def registry_chain():
    """wgs84 <-> enu <-> grid -> room (room has no inverse)."""
    reg = TransformRegistry()
    reg.register(WGS84, ENU, lambda v: ("enu", v), lambda v: v[1])
    reg.register(ENU, GRID, lambda v: ("grid", v), lambda v: v[1])
    reg.register(GRID, ROOM, lambda v: ("room", v))
    return reg


def test_identity_path():
    reg = registry_chain()
    assert reg.path("wgs84", "wgs84") == ["wgs84"]
    assert reg.convert(42, "wgs84", "wgs84") == 42


def test_direct_conversion():
    reg = registry_chain()
    assert reg.convert("x", "wgs84", "enu") == ("enu", "x")


def test_composed_conversion_via_path():
    reg = registry_chain()
    assert reg.path("wgs84", "room") == ["wgs84", "enu", "grid", "room"]
    assert reg.convert("x", "wgs84", "room") == (
        "room",
        ("grid", ("enu", "x")),
    )


def test_inverse_edges_registered():
    reg = registry_chain()
    assert reg.convert(("grid", ("enu", "x")), "grid", "wgs84") == "x"


def test_one_way_edge_has_no_inverse():
    reg = registry_chain()
    with pytest.raises(TransformError):
        reg.path("room", "grid")


def test_unknown_system_raises():
    reg = registry_chain()
    with pytest.raises(TransformError):
        reg.convert(1, "wgs84", "mars")


def test_shortest_path_preferred():
    reg = registry_chain()
    # Add a direct shortcut; the path should now use it.
    reg.register(WGS84, ROOM, lambda v: ("direct-room", v))
    assert reg.path("wgs84", "room") == ["wgs84", "room"]
    assert reg.convert("x", "wgs84", "room") == ("direct-room", "x")


def test_converter_is_reusable():
    reg = registry_chain()
    convert = reg.converter("wgs84", "grid")
    assert convert("a") == ("grid", ("enu", "a"))
    assert convert("b") == ("grid", ("enu", "b"))


def test_systems_listing():
    reg = registry_chain()
    assert reg.systems() == ["enu", "grid", "room", "wgs84"]


def test_reference_system_equality_by_name():
    assert ReferenceSystem("wgs84", "geodetic") == ReferenceSystem(
        "wgs84", "geodetic"
    )
    assert str(WGS84) == "wgs84"
