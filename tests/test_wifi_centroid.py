"""Tests for the weighted-centroid WiFi positioning baseline."""

import random

import pytest

from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum, Kind
from repro.core.graph import ProcessingGraph
from repro.geo.grid import GridPosition
from repro.model.demo import demo_access_points, demo_building, demo_radio_environment
from repro.processing.wifi_centroid import CentroidPositioningComponent
from repro.sensors.wifi import AccessPoint, WifiObservation, WifiScan


def scan(*observations):
    return WifiScan(0.0, tuple(WifiObservation(b, r) for b, r in observations))


class TestEstimate:
    def two_ap_engine(self, exponent=1.5):
        building = demo_building()
        aps = [
            AccessPoint("west", GridPosition(0.0, 0.0)),
            AccessPoint("east", GridPosition(10.0, 0.0)),
        ]
        return CentroidPositioningComponent(
            aps, building.grid, exponent=exponent
        )

    def test_equal_rssi_yields_midpoint(self):
        engine = self.two_ap_engine()
        estimate, _spread = engine.estimate(
            scan(("west", -50.0), ("east", -50.0))
        )
        assert estimate.x_m == pytest.approx(5.0)

    def test_stronger_ap_pulls_estimate(self):
        engine = self.two_ap_engine()
        estimate, _spread = engine.estimate(
            scan(("west", -40.0), ("east", -70.0))
        )
        assert estimate.x_m < 2.0

    def test_unknown_bssids_ignored(self):
        engine = self.two_ap_engine()
        estimate, _ = engine.estimate(
            scan(("west", -50.0), ("rogue", -30.0))
        )
        assert estimate.x_m == pytest.approx(0.0)

    def test_no_known_aps_returns_none(self):
        engine = self.two_ap_engine()
        assert engine.estimate(scan(("rogue", -30.0))) is None

    def test_exponent_sharpens_snapping(self):
        soft = self.two_ap_engine(exponent=1.0)
        sharp = self.two_ap_engine(exponent=3.0)
        readings = scan(("west", -45.0), ("east", -60.0))
        soft_x = soft.estimate(readings)[0].x_m
        sharp_x = sharp.estimate(readings)[0].x_m
        assert sharp_x < soft_x

    def test_requires_access_points(self):
        building = demo_building()
        with pytest.raises(ValueError):
            CentroidPositioningComponent([], building.grid)


class TestComponentIntegration:
    def test_produces_both_kinds_in_graph(self):
        building = demo_building()
        environment = demo_radio_environment(building)
        engine = CentroidPositioningComponent(
            demo_access_points(), building.grid
        )
        graph = ProcessingGraph()
        source = SourceComponent("wifi", (Kind.WIFI_SCAN,))
        sink = ApplicationSink(
            "app", (Kind.POSITION_WGS84, Kind.POSITION_GRID)
        )
        for c in (source, engine, sink):
            graph.add(c)
        graph.connect("wifi", engine.name)
        graph.connect(engine.name, "app")
        observations = environment.observe(
            GridPosition(15.0, 7.5), random.Random(1)
        )
        source.inject(
            Datum(Kind.WIFI_SCAN, WifiScan(0.0, tuple(observations)), 0.0)
        )
        kinds = {d.kind for d in sink.received}
        assert kinds == {Kind.POSITION_GRID, Kind.POSITION_WGS84}
        grid_estimate = sink.last(Kind.POSITION_GRID).payload
        assert GridPosition(15.0, 7.5).distance_to(grid_estimate) < 15.0

    def test_empty_scan_ignored(self):
        building = demo_building()
        engine = CentroidPositioningComponent(
            demo_access_points(), building.grid
        )
        graph = ProcessingGraph()
        source = SourceComponent("wifi", (Kind.WIFI_SCAN,))
        sink = ApplicationSink("app", (Kind.POSITION_GRID,))
        for c in (source, engine, sink):
            graph.add(c)
        graph.connect("wifi", engine.name)
        graph.connect(engine.name, "app")
        source.inject(Datum(Kind.WIFI_SCAN, WifiScan(0.0, ()), 0.0))
        assert sink.received == []

    def test_known_ap_count(self):
        building = demo_building()
        engine = CentroidPositioningComponent(
            demo_access_points(), building.grid
        )
        assert engine.known_ap_count() == 6
