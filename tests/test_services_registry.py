"""Tests for the service registry."""

import pytest

from repro.services.registry import (
    ServiceEventType,
    ServiceRegistry,
)


class TestRegistration:
    def test_register_and_find(self):
        registry = ServiceRegistry()
        service = object()
        registry.register("positioning.Provider", service)
        assert registry.find_service("positioning.Provider") is service

    def test_register_under_multiple_interfaces(self):
        registry = ServiceRegistry()
        service = object()
        registry.register(["a.A", "b.B"], service)
        assert registry.find_service("a.A") is service
        assert registry.find_service("b.B") is service

    def test_register_requires_interface(self):
        registry = ServiceRegistry()
        with pytest.raises(ValueError):
            registry.register([], object())

    def test_unregister_removes_service(self):
        registry = ServiceRegistry()
        registration = registry.register("x", object())
        registration.unregister()
        assert registry.find_service("x") is None
        assert len(registry) == 0

    def test_unregister_is_idempotent(self):
        registry = ServiceRegistry()
        registration = registry.register("x", object())
        registration.unregister()
        registration.unregister()

    def test_get_service_after_unregister_raises(self):
        registry = ServiceRegistry()
        registration = registry.register("x", object())
        reference = registration.reference
        registration.unregister()
        with pytest.raises(LookupError):
            registry.get_service(reference)


class TestLookup:
    def test_filter_by_property_dict(self):
        registry = ServiceRegistry()
        registry.register("sensor", "gps", {"technology": "gps"})
        registry.register("sensor", "wifi", {"technology": "wifi"})
        assert registry.find_service(
            "sensor", {"technology": "wifi"}
        ) == "wifi"

    def test_filter_by_predicate(self):
        registry = ServiceRegistry()
        registry.register("sensor", "a", {"rate": 1})
        registry.register("sensor", "b", {"rate": 10})
        result = registry.find_service(
            "sensor", lambda props: props.get("rate", 0) > 5
        )
        assert result == "b"

    def test_ranking_orders_references(self):
        registry = ServiceRegistry()
        registry.register("x", "low", {"service.ranking": 0})
        registry.register("x", "high", {"service.ranking": 10})
        assert registry.find_service("x") == "high"

    def test_tie_breaks_toward_older_service(self):
        registry = ServiceRegistry()
        registry.register("x", "older")
        registry.register("x", "newer")
        assert registry.find_service("x") == "older"

    def test_lookup_without_interface_lists_everything(self):
        registry = ServiceRegistry()
        registry.register("a", 1)
        registry.register("b", 2)
        assert len(registry.get_references()) == 2

    def test_missing_service_returns_none(self):
        registry = ServiceRegistry()
        assert registry.find_service("nothing") is None
        assert registry.get_reference("nothing") is None


class TestProperties:
    def test_service_id_assigned(self):
        registry = ServiceRegistry()
        reg = registry.register("x", object())
        assert reg.reference.property("service.id") == reg.reference.service_id

    def test_set_properties_fires_modified(self):
        registry = ServiceRegistry()
        events = []
        registry.add_listener(lambda e: events.append(e.event_type))
        reg = registry.register("x", object())
        reg.set_properties({"mode": "fast"})
        assert events == [
            ServiceEventType.REGISTERED,
            ServiceEventType.MODIFIED,
        ]
        assert reg.reference.property("mode") == "fast"

    def test_set_properties_after_unregister_raises(self):
        registry = ServiceRegistry()
        reg = registry.register("x", object())
        reg.unregister()
        with pytest.raises(RuntimeError):
            reg.set_properties({"a": 1})


class TestEvents:
    def test_lifecycle_events_in_order(self):
        registry = ServiceRegistry()
        events = []
        registry.add_listener(
            lambda e: events.append((e.event_type, e.reference.service_id))
        )
        reg = registry.register("x", object())
        reg.unregister()
        sid = reg.reference.service_id
        assert events == [
            (ServiceEventType.REGISTERED, sid),
            (ServiceEventType.UNREGISTERING, sid),
        ]

    def test_unregistering_listener_can_still_resolve_service(self):
        registry = ServiceRegistry()
        seen = []

        def listener(event):
            if event.event_type is ServiceEventType.UNREGISTERING:
                seen.append(registry.get_service(event.reference))

        registry.add_listener(listener)
        reg = registry.register("x", "value")
        reg.unregister()
        assert seen == ["value"]

    def test_listener_removal(self):
        registry = ServiceRegistry()
        events = []
        remove = registry.add_listener(lambda e: events.append(e))
        remove()
        registry.register("x", object())
        assert events == []
