"""Smoke tests: every example script runs to completion.

Examples are public API documentation; a refactor that breaks one must
fail the suite.  Each main() runs in-process with stdout captured, and a
couple of headline output lines are sanity-checked.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "final position:" in out
    assert "fixes delivered:" in out
    assert "quickstart-app" in out


def test_room_number_app(capsys):
    out = run_example("room_number_app", capsys)
    assert "final room: N2" in out
    assert "[Process Channel Layer]" in out
    assert "now in: CORR" in out


def test_particle_filter_tracking(capsys):
    out = run_example("particle_filter_tracking", capsys)
    assert "Fig. 6 reproduction" in out
    assert "particle filter" in out
    assert "legend:" in out


def test_entracked_power(capsys):
    out = run_example("entracked_power", capsys)
    assert "periodic baseline" in out
    assert "energy saving" in out
    assert "EnTracked, error threshold 50 m:" in out


def test_chaos_demo(capsys):
    out = run_example("chaos_demo", capsys)
    assert "[supervision] gps-stage: open" in out
    assert "selected provider: wifi-app" in out
    assert "gps-stage health: closed" in out
    assert "selected provider after recovery: gps-app" in out
    assert "FaultInjected" in out


def test_shard_demo(capsys):
    out = run_example("shard_demo", capsys)
    assert "placement: 30 badges over 3 shards" in out
    assert "badge-00 pinned to shard 0" in out
    assert "after fault injection: degraded=[2] (FaultInjected)" in out
    assert "shard 2: degraded" in out
    assert "restored shard 2:" in out
    assert "degraded=[]" in out
    assert "merged metrics: floor-app received" in out


def test_seamful_inspection(capsys):
    out = run_example("seamful_inspection", capsys)
    assert "STRUCTURAL REFLECTION" in out
    assert "satellite-filter" in out
    assert "data tree behind delivered position" in out


def test_transport_mode(capsys):
    out = run_example("transport_mode", capsys)
    assert "mode timeline" in out
    assert "accuracy:" in out
    assert "POSITIONING INFRASTRUCTURE" in out


def test_scale_demo(capsys):
    out = run_example("scale_demo", capsys)
    assert "submitted: 2880 readings from 24 badges" in out
    assert "scheduler rounds:" in out
    assert "adapted badge-02 -> policy=block" in out
    assert "report excerpt:" in out


def test_gateway_demo(capsys):
    out = run_example("gateway_demo", capsys)
    assert "clean fleet: 40 fixes accepted" in out
    assert "after firmware update: rejected=20, dlq depth=20" in out
    assert "stage=schema adapter=phone_tracker_v1" in out
    assert "crosswalk installed, replay: 20 recovered, 0 failed" in out
    assert "fleet-app delivered: 60 positions" in out
    assert "parked as" in out and "'exhausted' after 2 attempts" in out
    assert "dlq: depth=21/256" in out


def test_city_demo(capsys):
    out = run_example("city_demo", capsys)
    assert "city workload: 60 devices, 120 ticks, seed 23" in out
    assert "open loop:   submitted=6769, dropped=1411" in out
    assert "closed loop: submitted=6609, dropped=231" in out
    assert "adaptation: 84% fewer drops on the identical seed" in out
    assert "t=31 backpressure: grow_capacity" in out
    assert "psl.scenario(): closed_loop=True, seed=23" in out
    assert "controllers=[backpressure, sampling, quarantine]" in out
