"""Tests for the plane-geometry helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.model.geometry import (
    bounding_box,
    point_in_polygon,
    polygon_area,
    polygon_centroid,
    segments_intersect,
)

SQUARE = [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)]
L_SHAPE = [(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)]


class TestPointInPolygon:
    def test_interior_point(self):
        assert point_in_polygon(5.0, 5.0, SQUARE)

    def test_exterior_point(self):
        assert not point_in_polygon(15.0, 5.0, SQUARE)
        assert not point_in_polygon(-1.0, 5.0, SQUARE)

    def test_boundary_counts_as_inside(self):
        assert point_in_polygon(0.0, 5.0, SQUARE)
        assert point_in_polygon(10.0, 10.0, SQUARE)

    def test_concave_polygon(self):
        assert point_in_polygon(1.0, 3.0, L_SHAPE)
        assert not point_in_polygon(3.0, 3.0, L_SHAPE)

    def test_degenerate_polygon(self):
        assert not point_in_polygon(0.0, 0.0, [(0, 0), (1, 1)])

    @given(
        st.floats(min_value=0.1, max_value=9.9),
        st.floats(min_value=0.1, max_value=9.9),
    )
    def test_square_interior_property(self, x, y):
        assert point_in_polygon(x, y, SQUARE)

    @given(st.floats(min_value=10.01, max_value=100.0),
           st.floats(min_value=-100.0, max_value=100.0))
    def test_square_exterior_property(self, x, y):
        assert not point_in_polygon(x, y, SQUARE)


class TestSegmentsIntersect:
    def test_crossing_segments(self):
        assert segments_intersect((0, 0), (10, 10), (0, 10), (10, 0))

    def test_parallel_segments(self):
        assert not segments_intersect((0, 0), (10, 0), (0, 1), (10, 1))

    def test_touching_at_endpoint(self):
        assert segments_intersect((0, 0), (5, 5), (5, 5), (10, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (10, 0), (5, 0), (15, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_t_junction(self):
        assert segments_intersect((0, 0), (10, 0), (5, -5), (5, 0))

    def test_near_miss(self):
        assert not segments_intersect((0, 0), (10, 0), (5, 0.01), (5, 5))


class TestAreaAndCentroid:
    def test_square_area(self):
        assert polygon_area(SQUARE) == pytest.approx(100.0)

    def test_winding_sign(self):
        assert polygon_area(list(reversed(SQUARE))) == pytest.approx(-100.0)

    def test_l_shape_area(self):
        assert abs(polygon_area(L_SHAPE)) == pytest.approx(12.0)

    def test_square_centroid(self):
        assert polygon_centroid(SQUARE) == pytest.approx((5.0, 5.0))

    def test_centroid_inside_convex_polygon(self):
        cx, cy = polygon_centroid(SQUARE)
        assert point_in_polygon(cx, cy, SQUARE)

    def test_degenerate_centroid_falls_back_to_mean(self):
        cx, cy = polygon_centroid([(0, 0), (2, 0), (4, 0)])
        assert (cx, cy) == pytest.approx((2.0, 0.0))

    def test_bounding_box(self):
        assert bounding_box(L_SHAPE) == (0, 0, 4, 4)
