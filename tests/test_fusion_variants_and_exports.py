"""Variance-weighted fusion, configuration export, GeoJSON export."""

import math

import pytest

from repro.core import Kind, PerPos
from repro.core.component import ApplicationSink, SourceComponent
from repro.core.config import (
    DEFAULT_TYPE_NAMES,
    load_configuration,
    save_configuration,
)
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.core.history import TrackHistoryService
from repro.geo.wgs84 import Wgs84Position
from repro.processing.fusion import VarianceWeightedFusionComponent

HOME = Wgs84Position(56.17, 10.19)


class TestVarianceWeightedFusion:
    def wire(self):
        fusion = VarianceWeightedFusionComponent()
        graph = ProcessingGraph()
        a = SourceComponent("a", (Kind.POSITION_WGS84,))
        b = SourceComponent("b", (Kind.POSITION_WGS84,))
        sink = ApplicationSink("app", (Kind.POSITION_WGS84,))
        for c in (a, b, fusion, sink):
            graph.add(c)
        graph.connect("a", fusion.name)
        graph.connect("b", fusion.name)
        graph.connect(fusion.name, "app")
        return a, b, sink

    def position(self, lat, accuracy, t):
        return Wgs84Position(lat, 10.19, accuracy_m=accuracy, timestamp=t)

    def test_equal_accuracy_yields_midpoint(self):
        a, b, sink = self.wire()
        a.inject(Datum(Kind.POSITION_WGS84, self.position(56.0, 5.0, 0.0), 0.0))
        b.inject(Datum(Kind.POSITION_WGS84, self.position(56.2, 5.0, 0.5), 0.5))
        fused = sink.last().payload
        assert fused.latitude_deg == pytest.approx(56.1)

    def test_better_accuracy_dominates(self):
        a, b, sink = self.wire()
        a.inject(Datum(Kind.POSITION_WGS84, self.position(56.0, 1.0, 0.0), 0.0))
        b.inject(Datum(Kind.POSITION_WGS84, self.position(56.2, 10.0, 0.5), 0.5))
        fused = sink.last().payload
        assert abs(fused.latitude_deg - 56.0) < 0.01

    def test_combined_accuracy_improves(self):
        a, b, sink = self.wire()
        a.inject(Datum(Kind.POSITION_WGS84, self.position(56.0, 4.0, 0.0), 0.0))
        b.inject(Datum(Kind.POSITION_WGS84, self.position(56.0, 4.0, 0.5), 0.5))
        fused = sink.last().payload
        assert fused.accuracy_m == pytest.approx(4.0 / math.sqrt(2.0))

    def test_stale_sources_excluded(self):
        a, b, sink = self.wire()
        a.inject(Datum(Kind.POSITION_WGS84, self.position(56.0, 5.0, 0.0), 0.0))
        b.inject(
            Datum(Kind.POSITION_WGS84, self.position(56.2, 5.0, 100.0), 100.0)
        )
        fused = sink.last().payload
        assert fused.latitude_deg == pytest.approx(56.2)
        assert sink.last().attributes["contributors"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            VarianceWeightedFusionComponent(freshness_window_s=0.0)


class TestConfigurationExport:
    def configured_middleware(self):
        middleware = PerPos()
        config = {
            "components": [
                {"type": "nmea-parser", "name": "parser"},
                {"type": "nmea-interpreter", "name": "interpreter"},
                {"type": "satellite-filter", "name": "filt"},
            ],
            "features": [
                {"component": "parser", "type": "number-of-satellites"},
                {"component": "parser", "type": "hdop"},
            ],
            "connections": [
                {"from": "parser", "to": "filt"},
                {"from": "filt", "to": "interpreter"},
            ],
            "providers": [
                {
                    "name": "app",
                    "accepts": [Kind.POSITION_WGS84],
                    "technologies": ["gps"],
                    "connect_from": ["interpreter"],
                }
            ],
        }
        load_configuration(middleware, config)
        return middleware

    def test_export_structure(self):
        middleware = self.configured_middleware()
        exported = save_configuration(middleware)
        component_names = {c["name"] for c in exported["components"]}
        assert component_names == {"parser", "interpreter", "filt"}
        feature_types = {f["type"] for f in exported["features"]}
        assert feature_types == {"number-of-satellites", "hdop"}
        assert exported["providers"][0]["connect_from"] == ["interpreter"]

    def test_roundtrip_reproduces_topology(self):
        original = self.configured_middleware()
        exported = save_configuration(original)
        clone = PerPos()
        load_configuration(clone, exported)
        assert set(clone.psl.components()) == set(
            original.psl.components()
        )
        original_edges = {
            (c.producer, c.consumer) for c in original.graph.connections()
        }
        clone_edges = {
            (c.producer, c.consumer) for c in clone.graph.connections()
        }
        assert clone_edges == original_edges
        assert clone.graph.component("parser").has_feature("HDOP")

    def test_unknown_component_classes_skipped(self):
        middleware = PerPos()
        middleware.graph.add(SourceComponent("custom", ("x",)))
        exported = save_configuration(middleware)
        assert exported["components"] == []

    def test_default_type_names_cover_registry(self):
        from repro.core.config import default_registry

        registry = default_registry()
        assert set(DEFAULT_TYPE_NAMES.values()) == set(
            registry.component_types()
        ) | set(registry.feature_types())


class TestGeoJsonExport:
    def test_linestring_structure(self):
        service = TrackHistoryService()
        here = HOME
        for i in range(4):
            service.append("walk", float(i), here)
            here = here.moved(90.0, 10.0)
        feature = service.export_geojson("walk")
        assert feature["type"] == "Feature"
        geometry = feature["geometry"]
        assert geometry["type"] == "LineString"
        assert len(geometry["coordinates"]) == 4
        lon, lat = geometry["coordinates"][0]
        assert lat == pytest.approx(HOME.latitude_deg)
        assert lon == pytest.approx(HOME.longitude_deg)
        assert feature["properties"]["timestamps"] == [0.0, 1.0, 2.0, 3.0]

    def test_geojson_serialisable(self):
        import json

        service = TrackHistoryService()
        service.append("t", 0.0, HOME)
        json.dumps(service.export_geojson("t"))

    def test_unknown_track(self):
        with pytest.raises(KeyError):
            TrackHistoryService().export_geojson("ghost")
