"""Multi-floor building model, extended channel requirements, hot-swap."""

import pytest

from repro.core import Kind, PerPos
from repro.core.channel import ChannelFeature
from repro.core.component import ApplicationSink, FunctionComponent, SourceComponent
from repro.core.data import Datum
from repro.core.features import ComponentFeature, FeatureError
from repro.core.graph import ProcessingGraph
from repro.core.pcl import ProcessChannelLayer
from repro.geo.grid import GridPosition
from repro.geo.wgs84 import Wgs84Position
from repro.model.demo import demo_two_floor_building
from repro.processing.pipelines import build_gps_pipeline
from repro.sensors.emulator import EmulatorSensor
from repro.sensors.gps import GpsReceiver
from repro.sensors.trajectory import Waypoint, WaypointTrajectory


class TestTwoFloorBuilding:
    @pytest.fixture(scope="class")
    def building(self):
        return demo_two_floor_building()

    def test_floor_inventory(self, building):
        assert [f.level for f in building.floors] == [0, 1]
        assert len(building.floor(0).rooms) == 9
        assert len(building.floor(1).rooms) == 5

    def test_room_resolution_per_floor(self, building):
        ground = GridPosition(5.0, 12.0, floor=0)
        upper = GridPosition(5.0, 12.0, floor=1)
        assert building.room_at(ground).room_id == "N1"
        assert building.room_at(upper).room_id == "1N1"

    def test_altitude_selects_floor(self, building):
        over_n1 = building.grid.to_wgs84(GridPosition(5.0, 12.0, floor=1))
        assert over_n1.altitude_m == pytest.approx(3.0, abs=0.01)
        assert building.room_at_wgs84(over_n1).room_id == "1N1"

    def test_walls_are_per_floor(self, building):
        # x=10 partition exists on floor 0 but not on floor 1.
        a0 = GridPosition(9.0, 12.0, floor=0)
        b0 = GridPosition(11.0, 12.0, floor=0)
        a1 = GridPosition(9.0, 12.0, floor=1)
        b1 = GridPosition(11.0, 12.0, floor=1)
        assert building.crosses_wall(a0, b0)
        assert not building.crosses_wall(a1, b1)

    def test_cross_floor_move_blocked(self, building):
        a = GridPosition(5.0, 12.0, floor=0)
        b = GridPosition(5.0, 12.0, floor=1)
        assert building.crosses_wall(a, b)

    def test_room_centroids_resolve(self, building):
        for room in building.rooms():
            assert building.room_at(room.centroid).room_id == room.room_id


class ProvidingChannelFeature(ChannelFeature):
    name = "Base"

    def apply(self, tree):
        pass


class DependentChannelFeature(ChannelFeature):
    name = "Dependent"
    requires_channel_features = ("Base",)

    def apply(self, tree):
        pass


class NeedsParser(ChannelFeature):
    name = "NeedsParser"
    requires_components = ("middle",)

    def apply(self, tree):
        pass


class NeedsTypeName(ChannelFeature):
    name = "NeedsTypeName"
    requires_components = ("FunctionComponent",)

    def apply(self, tree):
        pass


class TestChannelFeatureRequirements:
    def build(self):
        graph = ProcessingGraph()
        source = SourceComponent("src", ("x",))
        middle = FunctionComponent("middle", ("x",), ("x",), fn=lambda d: d)
        sink = ApplicationSink("app", ("x",))
        for c in (source, middle, sink):
            graph.add(c)
        graph.connect("src", "middle")
        graph.connect("middle", "app")
        pcl = ProcessChannelLayer(graph)
        return pcl.channel("src->app")

    def test_channel_feature_dependency_enforced(self):
        channel = self.build()
        with pytest.raises(FeatureError):
            channel.attach_feature(DependentChannelFeature())
        channel.attach_feature(ProvidingChannelFeature())
        channel.attach_feature(DependentChannelFeature())
        assert channel.get_feature("Dependent") is not None

    def test_component_requirement_by_name(self):
        channel = self.build()
        channel.attach_feature(NeedsParser())

    def test_component_requirement_by_type_name(self):
        channel = self.build()
        channel.attach_feature(NeedsTypeName())

    def test_missing_component_requirement(self):
        class NeedsGhost(ChannelFeature):
            name = "NeedsGhost"
            requires_components = ("ghost",)

            def apply(self, tree):
                pass

        channel = self.build()
        with pytest.raises(FeatureError):
            channel.attach_feature(NeedsGhost())


class TestSensorHotSwap:
    """§3.2's deployment move: the emulator 'was plugged into the
    processing graph, taking the place of the sensors' -- here performed
    live on a running middleware."""

    def test_replace_live_gps_with_emulator(self):
        start = Wgs84Position(56.17, 10.19)
        trajectory = WaypointTrajectory(
            [Waypoint(0.0, start), Waypoint(120.0, start.moved(90.0, 150.0))]
        )
        middleware = PerPos()
        live = GpsReceiver("gps", trajectory, seed=1)
        pipeline = build_gps_pipeline(middleware, live, prefix="gps")
        provider = middleware.create_provider(
            "app", accepts=(Kind.POSITION_WGS84,)
        )
        middleware.graph.connect(pipeline.interpreter, provider.sink.name)
        middleware.run_until(30.0)
        live_positions = len(provider.sink.received)
        assert live_positions > 0

        # Record a replacement trace from a second device, then hot-swap.
        recorder = GpsReceiver("gps-recorded", trajectory, seed=2)
        recorded = recorder.sample(120.0)
        middleware.detach_sensor("gps")
        emulator = EmulatorSensor(recorded, sensor_id="gps")
        source = middleware.attach_sensor(emulator, (Kind.NMEA_RAW,))
        middleware.graph.connect(source.name, pipeline.parser)

        middleware.run_until(60.0)
        assert len(provider.sink.received) > live_positions
        # The downstream pipeline object identity never changed.
        assert middleware.graph.component(pipeline.parser) is not None
        assert middleware.graph.upstream(pipeline.parser) == ["gps"]

    def test_channels_rebuilt_after_swap(self):
        start = Wgs84Position(56.17, 10.19)
        trajectory = WaypointTrajectory(
            [Waypoint(0.0, start), Waypoint(60.0, start.moved(90.0, 80.0))]
        )
        middleware = PerPos()
        live = GpsReceiver("gps", trajectory, seed=1)
        pipeline = build_gps_pipeline(middleware, live, prefix="gps")
        provider = middleware.create_provider(
            "app", accepts=(Kind.POSITION_WGS84,)
        )
        middleware.graph.connect(pipeline.interpreter, provider.sink.name)
        assert [c.id for c in middleware.pcl.channels()] == ["gps->app"]
        middleware.detach_sensor("gps")
        # With the source gone the parser is temporarily the strand head.
        assert [c.id for c in middleware.pcl.channels()] == [
            "gps-parser->app"
        ]
        emulator = EmulatorSensor(
            GpsReceiver("gps-rec", trajectory, seed=2).sample(60.0),
            sensor_id="gps",
        )
        source = middleware.attach_sensor(emulator, (Kind.NMEA_RAW,))
        middleware.graph.connect(source.name, pipeline.parser)
        assert [c.id for c in middleware.pcl.channels()] == ["gps->app"]
