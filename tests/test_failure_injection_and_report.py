"""Failure injection, target proximity, and the infrastructure report."""

import pytest

from repro.core import Kind, PerPos
from repro.core.channel import ChannelFeature
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.features import ComponentFeature
from repro.core.graph import ProcessingGraph
from repro.core.pcl import ProcessChannelLayer
from repro.core.positioning import (
    LocationProvider,
    PositioningError,
    PositioningLayer,
)
from repro.core.report import (
    component_seams,
    infrastructure_snapshot,
    render_report,
)
from repro.geo.wgs84 import Wgs84Position
from repro.processing.parser import NmeaParserComponent

HOME = Wgs84Position(56.17, 10.19)


def build_chain():
    graph = ProcessingGraph()
    source = SourceComponent("src", ("x",))
    stage = FunctionComponent("stage", ("x",), ("x",), fn=lambda d: d)
    sink = ApplicationSink("app", ("x",))
    for c in (source, stage, sink):
        graph.add(c)
    graph.connect("src", "stage")
    graph.connect("stage", "app")
    return graph, source, stage, sink


class ExplodingChannelFeature(ChannelFeature):
    name = "Exploding"

    def apply(self, tree):
        raise RuntimeError("observer bug")


class ExplodingComponentFeature(ComponentFeature):
    name = "ExplodingComponent"

    def produce(self, datum):
        raise RuntimeError("interceptor bug")


class TestFailureIsolation:
    def test_channel_feature_failure_does_not_break_pipeline(self):
        graph, source, _stage, sink = build_chain()
        pcl = ProcessChannelLayer(graph)
        channel = pcl.channel("src->app")
        channel.attach_feature(ExplodingChannelFeature())
        source.inject(Datum("x", 1, 0.0))
        source.inject(Datum("x", 2, 1.0))
        # Data still flows; failures are recorded as a seam.
        assert [d.payload for d in sink.received] == [1, 2]
        assert len(channel.feature_errors) == 2
        assert channel.feature_errors[0][0] == "Exploding"

    def test_failing_feature_does_not_starve_other_features(self):
        class Counting(ChannelFeature):
            name = "Counting"

            def __init__(self):
                super().__init__()
                self.count = 0

            def apply(self, tree):
                self.count += 1

        graph, source, _stage, _sink = build_chain()
        pcl = ProcessChannelLayer(graph)
        channel = pcl.channel("src->app")
        channel.attach_feature(ExplodingChannelFeature())
        counting = Counting()
        channel.attach_feature(counting)
        source.inject(Datum("x", 1, 0.0))
        assert counting.count == 1

    def test_component_feature_failure_propagates(self):
        """Interceptors are in the data path: their failure is the
        pipeline's failure, not silently swallowed."""
        graph, source, stage, _sink = build_chain()
        stage.attach_feature(ExplodingComponentFeature())
        with pytest.raises(RuntimeError):
            source.inject(Datum("x", 1, 0.0))

    def test_component_exception_reaches_injector(self):
        def bomb(datum):
            raise ValueError("component defect")

        graph = ProcessingGraph()
        source = SourceComponent("src", ("x",))
        broken = FunctionComponent("broken", ("x",), ("x",), fn=bomb)
        graph.add(source)
        graph.add(broken)
        graph.connect("src", "broken")
        with pytest.raises(ValueError):
            source.inject(Datum("x", 1, 0.0))

    def test_parser_survives_garbage_flood(self):
        graph = ProcessingGraph()
        source = SourceComponent("gps", (Kind.NMEA_RAW,))
        parser = NmeaParserComponent()
        sink = ApplicationSink("app", (Kind.NMEA_SENTENCE,))
        for c in (source, parser, sink):
            graph.add(c)
        graph.connect("gps", "parser")
        graph.connect("parser", "app")
        for i in range(50):
            source.inject(
                Datum(Kind.NMEA_RAW, f"$GARBAGE,{i}*ZZ\r\n", float(i))
            )
        assert sink.received == []
        assert parser.dropped_lines == 50


def provider_with_source(name):
    graph = ProcessingGraph()
    source = SourceComponent("src", (Kind.POSITION_WGS84,))
    sink = ApplicationSink(name, (Kind.POSITION_WGS84,))
    graph.add(source)
    graph.add(sink)
    graph.connect("src", name)
    pcl = ProcessChannelLayer(graph)
    return LocationProvider(name, sink, pcl), source


class TestTargetProximity:
    def inject(self, source, position, t):
        source.inject(Datum(Kind.POSITION_WGS84, position, t, "src"))

    def test_entered_and_left_relative_to_moving_target(self):
        layer = PositioningLayer()
        observer, observer_src = provider_with_source("observer")
        anchor_provider, anchor_src = provider_with_source("anchor")
        target = layer.define_target("anchor-target")
        target.attach_provider(anchor_provider)
        events = []
        layer.watch_target_proximity(
            observer, target, 50.0, lambda kind, d: events.append(kind)
        )
        # Target at HOME; observer approaches, then the TARGET moves away.
        self.inject(anchor_src, HOME, 0.0)
        self.inject(observer_src, HOME.moved(0.0, 500.0), 1.0)
        self.inject(observer_src, HOME.moved(0.0, 10.0), 2.0)
        assert events == ["entered"]
        self.inject(
            anchor_src,
            HOME.moved(0.0, 1000.0),
            3.0,
        )
        self.inject(observer_src, HOME.moved(0.0, 10.0), 4.0)
        assert events == ["entered", "left"]

    def test_no_events_before_target_has_position(self):
        layer = PositioningLayer()
        observer, observer_src = provider_with_source("observer")
        target = layer.define_target("silent")
        events = []
        layer.watch_target_proximity(
            observer, target, 50.0, lambda kind, d: events.append(kind)
        )
        self.inject(observer_src, HOME, 0.0)
        assert events == []

    def test_radius_validation(self):
        layer = PositioningLayer()
        observer, _src = provider_with_source("observer")
        target = layer.define_target("t")
        with pytest.raises(PositioningError):
            layer.watch_target_proximity(
                observer, target, 0.0, lambda k, d: None
            )

    def test_unsubscribe(self):
        layer = PositioningLayer()
        observer, observer_src = provider_with_source("observer")
        anchor_provider, anchor_src = provider_with_source("anchor")
        target = layer.define_target("t")
        target.attach_provider(anchor_provider)
        events = []
        remove = layer.watch_target_proximity(
            observer, target, 50.0, lambda kind, d: events.append(kind)
        )
        remove()
        self.inject(anchor_src, HOME, 0.0)
        self.inject(observer_src, HOME, 1.0)
        assert events == []


class TestInfrastructureReport:
    def middleware_with_pipeline(self):
        middleware = PerPos()
        graph = middleware.graph
        source = SourceComponent("gps", (Kind.NMEA_RAW,))
        parser = NmeaParserComponent()
        graph.add(source)
        graph.add(parser)
        graph.connect("gps", "parser")
        provider = middleware.create_provider(
            "app", accepts=(Kind.NMEA_SENTENCE,)
        )
        graph.connect("parser", provider.sink.name)
        return middleware, source, parser

    def test_component_seams_collects_probes_and_counters(self):
        parser = NmeaParserComponent()
        seams = component_seams(parser)
        assert seams["dropped_lines"] == 0
        assert seams["pending_bytes"] == 0

    def test_failing_probe_reports_error_type_and_message(self):
        class BrokenProbe:
            dropped_lines = 3

            def rejection_rate(self):
                raise ZeroDivisionError("no samples yet")

        seams = component_seams(BrokenProbe())
        assert seams["rejection_rate"] == {
            "error": "ZeroDivisionError",
            "message": "no samples yet",
        }
        # Healthy indicators on the same component still collect.
        assert seams["dropped_lines"] == 3

    def test_snapshot_structure(self):
        middleware, source, _parser = self.middleware_with_pipeline()
        source.inject(Datum(Kind.NMEA_RAW, "$BAD*00\r\n", 0.0))
        snapshot = infrastructure_snapshot(middleware)
        names = {c["name"] for c in snapshot["components"]}
        assert {"gps", "parser", "app"} <= names
        assert any("gps -> parser" in c for c in snapshot["connections"])
        assert snapshot["providers"][0]["name"] == "app"
        parser_info = next(
            c for c in snapshot["components"] if c["name"] == "parser"
        )
        assert parser_info["seams"]["dropped_lines"] == 1

    def test_render_report_mentions_seams_and_errors(self):
        middleware, source, _parser = self.middleware_with_pipeline()
        channel = middleware.pcl.channels()[0]
        channel.attach_feature(ExplodingChannelFeature())
        source.inject(Datum(Kind.NMEA_RAW, "$GPGGA,bad*11\r\n", 0.0))
        text = render_report(middleware)
        assert "POSITIONING INFRASTRUCTURE" in text
        assert "dropped_lines=1" in text
        assert "seam indicators" in text
        # The parser produced nothing, so apply never ran; force one
        # output through to surface the feature error.
        from repro.sensors.nmea import GgaSentence

        good = GgaSentence(0.0, 56.0, 10.0, 1, 8, 1.0, 0.0).encode()
        source.inject(Datum(Kind.NMEA_RAW, good + "\r\n", 1.0))
        text = render_report(middleware)
        assert "feature error" in text
