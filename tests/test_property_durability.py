"""Property tests: crash recovery is observationally equivalent to an
uninterrupted run (hypothesis).

The pinned contract of the durability seam: for any schedule of
submits, drains, and policy changes, snapshotting at an arbitrary
point, "crashing" (discarding the live engine), and restoring into a
fresh graph must converge to the same observable state as the twin run
that never crashed -- the sink's delivered multiset, the pending lane
depths, and the engine's drain counters all agree.  Scheduler cursor
position is deliberately *not* pinned (replay re-plans rounds), which
is why the sink contract is a multiset, not a sequence.

A chaos-marked case crashes mid-stream with the journal carrying
partially drained rounds, and a migration case interleaves warm
handoffs with concurrent submits to pin the zero-datum-loss guarantee.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.durability import MemoryStateStore, restore_from_store
from repro.durability.manager import DurabilityManager
from repro.runtime import PositioningEngine, ShardedEngine
from repro.runtime.queues import COALESCE, DROP_NEWEST, DROP_OLDEST

TARGETS = ("t1", "t2", "t3")

#: One run is a schedule of journaled operations.
operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.sampled_from(TARGETS),
            st.integers(min_value=0, max_value=99),
        ),
        st.tuples(st.just("drain"), st.just(None), st.just(None)),
        st.tuples(
            st.just("policy"),
            st.sampled_from(TARGETS),
            st.sampled_from((DROP_OLDEST, DROP_NEWEST, 2, 5)),
        ),
        st.tuples(st.just("untrack"), st.sampled_from(TARGETS), st.just(None)),
        st.tuples(st.just("track"), st.sampled_from(TARGETS), st.just(None)),
    ),
    min_size=1,
    max_size=40,
)


def build_graph():
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", ("x",)))
    graph.add(FunctionComponent("f", ("x",), ("x",), fn=lambda d: d))
    graph.add(ApplicationSink("sink", ("x",), keep_last=10_000))
    graph.connect("src", "f", "in")
    graph.connect("f", "sink", "in")
    return graph


def fresh_engine():
    graph = build_graph()
    engine = PositioningEngine(graph)
    for target in TARGETS:
        engine.track(target, "src", capacity=4)
    return graph, engine


def apply(engine, op, tick):
    """Apply one schedule operation; invalid ones are skipped.

    Deterministic given (op, tick), which is what lets the crashed and
    uninterrupted runs be exact twins.
    """
    kind, target, arg = op
    try:
        if kind == "submit":
            engine.submit(target, Datum("x", arg, float(tick)))
        elif kind == "drain":
            engine.drain_round()
        elif kind == "policy":
            if isinstance(arg, int):
                engine.set_policy(target, capacity=arg)
            else:
                engine.set_policy(target, policy=arg)
        elif kind == "untrack":
            engine.untrack(target)
        else:
            engine.track(target, "src", capacity=4)
    except Exception:
        return


def observable(graph, engine):
    """The pinned observable state of one engine."""
    return {
        "sink": Counter(
            d.payload for d in graph.component("sink").received
        ),
        "depths": {
            lane.target_id: lane.queue.depth for lane in engine.lanes()
        },
        "tracked": sorted(lane.target_id for lane in engine.lanes()),
        "drained_total": engine.drained_total,
    }


@given(ops=operations, cut=st.integers(min_value=0, max_value=40))
@settings(max_examples=60, deadline=None)
def test_snapshot_crash_restore_equals_uninterrupted(ops, cut):
    cut = min(cut, len(ops))
    # Uninterrupted twin.
    graph_a, engine_a = fresh_engine()
    for tick, op in enumerate(ops):
        apply(engine_a, op, tick)
    engine_a.drain_all()

    # Crashed twin: journal everything, snapshot at the cut point,
    # crash (discard the live engine), restore into a fresh graph.
    graph_b, engine_b = fresh_engine()
    store = MemoryStateStore()
    manager = DurabilityManager(graph_b, store)
    manager.attach()
    for tick, op in enumerate(ops):
        if tick == cut:
            manager.snapshot()
        apply(engine_b, op, tick)
    if cut == len(ops):
        manager.snapshot()
    del graph_b, engine_b  # the crash

    graph_c = build_graph()
    engine_c = PositioningEngine(graph_c)
    restore_from_store(graph_c, engine_c, store)
    engine_c.drain_all()

    assert observable(graph_c, engine_c) == observable(graph_a, engine_a)


@given(ops=operations)
@settings(max_examples=30, deadline=None)
def test_hub_counters_survive_crash(ops):
    from repro.core.middleware import PerPos

    def middleware():
        pp = PerPos()
        pp.enable_observability(tracing=False)
        pp.graph.add(SourceComponent("src", ("x",)))
        pp.graph.add(ApplicationSink("sink", ("x",), keep_last=10_000))
        pp.graph.connect("src", "sink", "in")
        engine = pp.enable_runtime()
        for target in TARGETS:
            engine.track(target, "src", capacity=4)
        return pp, engine

    pp_a, engine_a = middleware()
    for tick, op in enumerate(ops):
        apply(engine_a, op, tick)

    pp_b, engine_b = middleware()
    manager = DurabilityManager(pp_b.graph, MemoryStateStore())
    manager.attach()
    for tick, op in enumerate(ops):
        apply(engine_b, op, tick)
    manager.snapshot()

    pp_c, engine_c = middleware()
    restore_from_store(
        pp_c.graph, engine_c, manager.store, gateway=None
    )
    counters_a = pp_a.observability.registry.snapshot()["counters"]
    counters_c = pp_c.observability.registry.snapshot()["counters"]
    assert counters_c == counters_a


@pytest.mark.chaos
def test_mid_stream_crash_recovers_partial_rounds():
    """Crash with the journal holding post-snapshot submits AND drains:
    replay must reproduce the interleaving, not just the queue tails."""
    graph, engine = fresh_engine()
    store = MemoryStateStore()
    manager = DurabilityManager(graph, store)
    manager.attach()
    for i in range(6):
        engine.submit(TARGETS[i % 3], Datum("x", i, float(i)))
    manager.snapshot()
    # Post-snapshot: more submits interleaved with partial drains.
    engine.submit("t1", Datum("x", 100, 6.0))
    engine.drain_round()
    engine.submit("t2", Datum("x", 101, 7.0))
    engine.drain_round()
    expected_sink = Counter(
        d.payload for d in graph.component("sink").received
    )
    expected_pending = engine.depth_total()
    del graph, engine  # the crash

    graph2 = build_graph()
    engine2 = PositioningEngine(graph2)
    replayed = restore_from_store(graph2, engine2, store)
    assert replayed == 4  # 2 submits + 2 drain rounds
    assert (
        Counter(d.payload for d in graph2.component("sink").received)
        == expected_sink
    )
    assert engine2.depth_total() == expected_pending


def shard_recipe():
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", ("x",)))
    graph.add(ApplicationSink("app", ("x",), keep_last=10_000))
    graph.connect("src", "app")
    return graph


@given(
    moves=st.lists(
        st.tuples(
            st.sampled_from(("a", "b", "c", "d")),
            st.integers(min_value=0, max_value=2),
        ),
        min_size=1,
        max_size=12,
    ),
    interleaved=st.lists(
        st.sampled_from(("a", "b", "c", "d")), min_size=0, max_size=20
    ),
)
@settings(max_examples=30, deadline=None)
def test_migration_under_concurrent_submits_loses_nothing(moves, interleaved):
    """Warm handoffs interleaved with live submits: every datum that a
    lane accepted is eventually delivered, wherever the lane ends up."""
    engine = ShardedEngine(shard_recipe, 3)
    accepted = 0
    for target in ("a", "b", "c", "d"):
        engine.track(target, "src")
        engine.submit(target, Datum("x", f"seed-{target}", 0.0))
        accepted += 1
    feed = iter(interleaved)
    for target, destination in moves:
        try:
            engine.migrate_target(target, destination)
        except Exception:
            pass  # same-shard / degraded moves are rejected cleanly
        extra = next(feed, None)
        if extra is not None:
            engine.submit(extra, Datum("x", f"live-{extra}", 1.0))
            accepted += 1
    assert engine.pending_total() == accepted
    assert engine.drain_all() == accepted
    delivered = sum(
        len(shard.engine.graph.component("app").received)
        for shard in engine._shards
    )
    assert delivered == accepted
    engine.close()
