"""Tests for the Positioning Layer: providers, criteria, notifications."""

import pytest

from repro.core.channel import ChannelFeature
from repro.core.component import ApplicationSink, FunctionComponent, SourceComponent
from repro.core.data import Datum, Kind
from repro.core.features import ComponentFeature
from repro.core.graph import ProcessingGraph
from repro.core.pcl import ProcessChannelLayer
from repro.core.positioning import (
    Criteria,
    LocationProvider,
    PositioningError,
    PositioningLayer,
    Target,
)
from repro.geo.wgs84 import Wgs84Position

HOME = Wgs84Position(56.17, 10.19)


def position_datum(lat, lon, t, producer="src"):
    return Datum(
        Kind.POSITION_WGS84, Wgs84Position(lat, lon, timestamp=t), t, producer
    )


def build_provider(name="app", technologies=("gps",)):
    graph = ProcessingGraph()
    source = SourceComponent("src", (Kind.POSITION_WGS84,))
    sink = ApplicationSink(name, (Kind.POSITION_WGS84,))
    graph.add(source)
    graph.add(sink)
    graph.connect("src", name)
    pcl = ProcessChannelLayer(graph)
    provider = LocationProvider(name, sink, pcl, technologies)
    return provider, source


class TestPullAndPush:
    def test_last_known_empty(self):
        provider, _source = build_provider()
        assert provider.last_known() is None
        assert provider.last_position() is None

    def test_pull_latest(self):
        provider, source = build_provider()
        source.inject(position_datum(56.0, 10.0, 0.0))
        source.inject(position_datum(56.1, 10.1, 1.0))
        assert provider.last_position().latitude_deg == pytest.approx(56.1)

    def test_push_listener_with_kind_filter(self):
        provider, source = build_provider()
        seen = []
        provider.add_listener(
            lambda d: seen.append(d.payload.latitude_deg),
            kind=Kind.POSITION_WGS84,
        )
        source.inject(position_datum(56.0, 10.0, 0.0))
        assert seen == [56.0]

    def test_kinds_reflect_sink_port(self):
        provider, _source = build_provider()
        assert provider.kinds == (Kind.POSITION_WGS84,)


class TestProximity:
    def test_entered_and_left_events(self):
        provider, source = build_provider()
        events = []
        provider.add_proximity_listener(
            HOME, 50.0, lambda kind, d: events.append(kind)
        )
        far = HOME.moved(0.0, 500.0)
        near = HOME.moved(0.0, 10.0)
        source.inject(
            Datum(Kind.POSITION_WGS84, far, 0.0, "src")
        )
        source.inject(Datum(Kind.POSITION_WGS84, near, 1.0, "src"))
        source.inject(Datum(Kind.POSITION_WGS84, far, 2.0, "src"))
        assert events == ["entered", "left"]

    def test_initial_position_inside_fires_entered(self):
        provider, source = build_provider()
        events = []
        provider.add_proximity_listener(
            HOME, 50.0, lambda kind, d: events.append(kind)
        )
        source.inject(Datum(Kind.POSITION_WGS84, HOME, 0.0, "src"))
        assert events == ["entered"]

    def test_listener_removal(self):
        provider, source = build_provider()
        events = []
        remove = provider.add_proximity_listener(
            HOME, 50.0, lambda kind, d: events.append(kind)
        )
        remove()
        source.inject(Datum(Kind.POSITION_WGS84, HOME, 0.0, "src"))
        assert events == []

    def test_radius_validation(self):
        provider, _source = build_provider()
        with pytest.raises(PositioningError):
            provider.add_proximity_listener(HOME, 0.0, lambda k, d: None)


class StubChannelFeature(ChannelFeature):
    name = "StubChannel"

    def apply(self, tree):
        pass


class StubComponentFeature(ComponentFeature):
    name = "StubComponent"


class TestFeatureSurface:
    def test_channel_feature_reachable_from_provider(self):
        provider, _source = build_provider()
        channel = provider.channels()[0]
        feature = StubChannelFeature()
        channel.attach_feature(feature)
        assert provider.get_feature("StubChannel") is feature
        assert "StubChannel" in provider.available_features()

    def test_component_feature_reachable_from_provider(self):
        provider, _source = build_provider()
        channel = provider.channels()[0]
        feature = StubComponentFeature()
        channel.members[0].attach_feature(feature)
        assert provider.get_feature("StubComponent") is feature

    def test_missing_feature_returns_none(self):
        provider, _source = build_provider()
        assert provider.get_feature("Nothing") is None

    def test_describe(self):
        provider, _source = build_provider()
        info = provider.describe()
        assert info["name"] == "app"
        assert info["technologies"] == ["gps"]


class TestPositioningLayerRegistry:
    def test_register_and_lookup_by_criteria(self):
        layer = PositioningLayer()
        gps_provider, _ = build_provider("gps-app", ("gps",))
        wifi_provider, _ = build_provider("wifi-app", ("wifi",))
        layer.register_provider(gps_provider)
        layer.register_provider(wifi_provider)
        chosen = layer.get_provider(Criteria(technology="wifi"))
        assert chosen is wifi_provider

    def test_duplicate_provider_rejected(self):
        layer = PositioningLayer()
        provider, _ = build_provider()
        layer.register_provider(provider)
        with pytest.raises(PositioningError):
            layer.register_provider(provider)

    def test_unsatisfiable_criteria_raises(self):
        layer = PositioningLayer()
        provider, _ = build_provider()
        layer.register_provider(provider)
        with pytest.raises(PositioningError):
            layer.get_provider(Criteria(technology="uwb"))

    def test_criteria_with_required_feature(self):
        layer = PositioningLayer()
        provider, _source = build_provider()
        provider.channels()[0].attach_feature(StubChannelFeature())
        layer.register_provider(provider)
        chosen = layer.get_provider(
            Criteria(required_features=("StubChannel",))
        )
        assert chosen is provider
        with pytest.raises(PositioningError):
            layer.get_provider(Criteria(required_features=("Ghost",)))

    def test_unknown_provider_lookup(self):
        with pytest.raises(PositioningError):
            PositioningLayer().provider("nope")


class TestTargets:
    def test_define_and_duplicate(self):
        layer = PositioningLayer()
        layer.define_target("t1")
        with pytest.raises(PositioningError):
            layer.define_target("t1")

    def test_target_freshest_across_providers(self):
        layer = PositioningLayer()
        p1, s1 = build_provider("p1")
        p2, s2 = build_provider("p2")
        target = layer.define_target("t1")
        target.attach_provider(p1)
        target.attach_provider(p2)
        s1.inject(position_datum(56.0, 10.0, 5.0))
        s2.inject(position_datum(56.5, 10.5, 9.0))
        assert target.last_position().latitude_deg == pytest.approx(56.5)

    def test_target_without_positions(self):
        layer = PositioningLayer()
        target = layer.define_target("t1")
        assert target.last_position() is None

    def test_k_nearest_targets(self):
        layer = PositioningLayer()
        positions = {
            "near": HOME.moved(0.0, 10.0),
            "mid": HOME.moved(0.0, 100.0),
            "far": HOME.moved(0.0, 1000.0),
        }
        for name, pos in positions.items():
            provider, source = build_provider(name)
            target = layer.define_target(name)
            target.attach_provider(provider)
            source.inject(Datum(Kind.POSITION_WGS84, pos, 0.0, "src"))
        # A target with no position is excluded.
        layer.define_target("silent")
        nearest = layer.k_nearest_targets(HOME, 2)
        assert [t.target_id for t, _d in nearest] == ["near", "mid"]
        assert nearest[0][1] == pytest.approx(10.0, rel=0.01)

    def test_k_nearest_validation(self):
        with pytest.raises(PositioningError):
            PositioningLayer().k_nearest_targets(HOME, 0)
