"""Tests for the Process Channel Layer: derivation and maintenance."""

import pytest

from repro.core.channel import ChannelFeature
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import GraphError, ProcessingGraph
from repro.core.pcl import ProcessChannelLayer


def passthrough(name):
    return FunctionComponent(name, ("x",), ("x",), fn=lambda d: d)


def build_fig2_like_graph():
    """Two sources -> per-source chains -> merge -> app (Fig. 2 shape)."""
    graph = ProcessingGraph()
    gps = SourceComponent("gps", ("x",))
    wifi = SourceComponent("wifi", ("x",))
    parser = passthrough("parser")
    interpreter = passthrough("interpreter")
    merge = passthrough("filter")  # will have two upstreams
    app = ApplicationSink("app", ("x",))
    for c in (gps, wifi, parser, interpreter, merge, app):
        graph.add(c)
    graph.connect("gps", "parser")
    graph.connect("parser", "interpreter")
    graph.connect("interpreter", "filter")
    graph.connect("wifi", "filter")
    graph.connect("filter", "app")
    return graph


class Recorder(ChannelFeature):
    name = "Recorder"

    def __init__(self):
        super().__init__()
        self.count = 0

    def apply(self, tree):
        self.count += 1


class TestDerivation:
    def test_channels_of_fig2_graph(self):
        pcl = ProcessChannelLayer(build_fig2_like_graph())
        ids = [c.id for c in pcl.channels()]
        assert ids == ["filter->app", "gps->filter", "wifi->filter"]

    def test_channel_members(self):
        pcl = ProcessChannelLayer(build_fig2_like_graph())
        gps_channel = pcl.channel("gps->filter")
        assert [m.name for m in gps_channel.members] == [
            "gps",
            "parser",
            "interpreter",
        ]
        assert gps_channel.endpoint == "filter"

    def test_merge_channel_single_member(self):
        pcl = ProcessChannelLayer(build_fig2_like_graph())
        merged = pcl.channel("filter->app")
        assert [m.name for m in merged.members] == ["filter"]

    def test_channels_into(self):
        pcl = ProcessChannelLayer(build_fig2_like_graph())
        into_filter = pcl.channels_into("filter")
        assert [c.id for c in into_filter] == ["gps->filter", "wifi->filter"]

    def test_channel_delivering(self):
        pcl = ProcessChannelLayer(build_fig2_like_graph())
        channel = pcl.channel_delivering("filter", "interpreter")
        assert channel is not None and channel.id == "gps->filter"
        assert pcl.channel_delivering("filter", "parser") is None

    def test_unknown_channel(self):
        pcl = ProcessChannelLayer(build_fig2_like_graph())
        with pytest.raises(GraphError):
            pcl.channel("ghost->app")

    def test_describe_and_render(self):
        pcl = ProcessChannelLayer(build_fig2_like_graph())
        descriptions = pcl.describe()
        assert len(descriptions) == 3
        text = pcl.render()
        assert "gps -> parser -> interpreter ==> filter" in text


class TestTopologyMaintenance:
    def test_new_component_updates_channels(self):
        graph = build_fig2_like_graph()
        pcl = ProcessChannelLayer(graph)
        stage = passthrough("extra")
        graph.insert_between("parser", "interpreter", stage)
        gps_channel = pcl.channel("gps->filter")
        assert [m.name for m in gps_channel.members] == [
            "gps",
            "parser",
            "extra",
            "interpreter",
        ]

    def test_unchanged_channels_preserve_features(self):
        graph = build_fig2_like_graph()
        pcl = ProcessChannelLayer(graph)
        feature = Recorder()
        pcl.attach_feature("wifi->filter", feature)
        # Modify the *other* strand; the wifi channel object must survive.
        graph.insert_between("parser", "interpreter", passthrough("extra"))
        assert pcl.channel("wifi->filter").get_feature("Recorder") is feature

    def test_changed_channel_is_replaced(self):
        graph = build_fig2_like_graph()
        pcl = ProcessChannelLayer(graph)
        feature = Recorder()
        pcl.attach_feature("gps->filter", feature)
        graph.insert_between("parser", "interpreter", passthrough("extra"))
        # The gps channel was rebuilt; the feature is gone with the old one.
        assert pcl.channel("gps->filter").get_feature("Recorder") is None

    def test_removed_strand_drops_channel(self):
        graph = build_fig2_like_graph()
        pcl = ProcessChannelLayer(graph)
        graph.disconnect("wifi", "filter")
        graph.remove("wifi")
        ids = [c.id for c in pcl.channels()]
        assert "wifi->filter" not in ids

    def test_close_stops_updates(self):
        graph = build_fig2_like_graph()
        pcl = ProcessChannelLayer(graph)
        pcl.close()
        assert pcl.channels() == []


class TestDataFlowThroughChannels:
    def test_feature_sees_only_its_strand(self):
        graph = build_fig2_like_graph()
        pcl = ProcessChannelLayer(graph)
        gps_recorder = Recorder()
        wifi_recorder = Recorder()
        pcl.attach_feature("gps->filter", gps_recorder)
        pcl.attach_feature("wifi->filter", wifi_recorder)
        graph.component("gps").inject(Datum("x", 1, 0.0))
        graph.component("gps").inject(Datum("x", 2, 1.0))
        graph.component("wifi").inject(Datum("x", 3, 2.0))
        assert gps_recorder.count == 2
        assert wifi_recorder.count == 1
