"""Unit tests for plan compilation (repro.core.compile) and its seams.

Covers the fusion eligibility rules and fallback reasons, the reflective
surface (``plan_snapshot`` / ``psl.describe`` / ``psl.compiled_plans`` /
the infrastructure report / engine snapshots), the hub's plan
instruments, and the regression cases of mid-delivery structural
mutation -- including the error paths of ``remove(reconnect=True)`` and
``insert_between`` that short-circuit before a version bump.
"""

from __future__ import annotations

from typing import Any, List, Optional

import pytest

from repro.core import PerPos
from repro.core.compile import MIN_CHAIN_LENGTH, compile_plan
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    ProcessingComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.features import ComponentFeature
from repro.core.graph import GraphError, GraphObserver, ProcessingGraph
from repro.core.psl import ProcessStructureLayer
from repro.core.report import render_report
from repro.observability.instrumentation import ObservabilityHub
from repro.observability.metrics import MetricsRegistry
from repro.robustness.supervision import Supervisor
from repro.runtime.engine import PositioningEngine

KINDS = ("x",)


def identity(datum: Datum) -> Datum:
    return datum


def linear_graph(depth: int = 3, **graph_kwargs: Any) -> ProcessingGraph:
    """src -> s0 -> ... -> s{depth-1} -> app, all stock components."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", KINDS))
    graph.add(ApplicationSink("app", KINDS))
    prev = "src"
    for i in range(depth):
        graph.add(FunctionComponent(f"s{i}", KINDS, KINDS, identity))
        graph.connect(prev, f"s{i}")
        prev = f"s{i}"
    graph.connect(prev, "app")
    return graph


class PassFeature(ComponentFeature):
    name = "Pass"


class TestPlanCompilation:
    def test_linear_chain_is_fused(self):
        graph = linear_graph(3)
        snapshot = graph.plan_snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["fallback_reason"] is None
        assert snapshot["chains"] == [
            {"head": "s0", "members": ["s0", "s1", "s2"], "length": 3}
        ]
        assert snapshot["fused_components"] == 3
        assert snapshot["version"] == graph.topology_version

    def test_fused_dispatch_counter_advances(self):
        graph = linear_graph(3)
        src = graph.component("src")
        sink = graph.component("app")
        assert graph.plan_snapshot()["fused_dispatches"] == 0
        src.inject(Datum("x", 1, 0.0))
        src.inject_batch([Datum("x", 2, 0.0), Datum("x", 3, 0.0)])
        assert graph.plan_snapshot()["fused_dispatches"] == 2
        assert [d.payload for d in sink.received] == [1, 2, 3]

    def test_single_node_chain_too_short(self):
        graph = linear_graph(1)
        snapshot = graph.plan_snapshot()
        assert snapshot["chains"] == []
        assert snapshot["excluded"]["s0"] == "chain-too-short"
        assert MIN_CHAIN_LENGTH == 2

    def test_fan_out_and_fan_in_break_chains(self):
        graph = linear_graph(4)
        # s1 fans out to a side sink; s2 keeps a single inbound edge
        # from s1 so the tail pair (s2, s3) stays fusable.
        graph.add(ApplicationSink("side", KINDS))
        graph.connect("s1", "side")
        snapshot = graph.plan_snapshot()
        assert snapshot["excluded"]["s1"] == "fan-out"
        assert [c["members"] for c in snapshot["chains"]] == [["s2", "s3"]]
        assert snapshot["excluded"]["s0"] == "chain-too-short"
        # A second producer into s2 makes it a fan-in merge point.
        graph.add(SourceComponent("src2", KINDS))
        graph.connect("src2", "s2")
        assert graph.plan_snapshot()["excluded"]["s2"] == "fan-in"

    def test_features_exclude_a_member(self):
        graph = linear_graph(3)
        graph.component("s1").attach_feature(PassFeature())
        snapshot = graph.plan_snapshot()
        assert snapshot["excluded"]["s1"] == "features-attached"
        assert snapshot["chains"] == []
        # Detaching restores the full chain.
        graph.component("s1").detach_feature("Pass")
        assert [c["members"] for c in graph.plan_snapshot()["chains"]] == [
            ["s0", "s1", "s2"]
        ]

    def test_opaque_component_excluded(self):
        class Custom(FunctionComponent):
            def process(self, port_name: str, datum: Datum) -> None:
                super().process(port_name, datum)

        graph = linear_graph(3)
        graph.remove("s1")
        graph.add(Custom("s1", KINDS, KINDS, identity))
        graph.connect("s0", "s1")
        graph.connect("s1", "s2")
        assert Custom("probe", KINDS, KINDS, identity).fused_fn() is None
        assert graph.plan_snapshot()["excluded"]["s1"] == "no-fused-step"

    def test_global_gates(self):
        graph = linear_graph(3)
        assert graph.set_compilation(False) is True
        assert (
            graph.plan_snapshot()["fallback_reason"]
            == "compilation-disabled"
        )
        assert graph.set_compilation(True) is False

        supervisor = Supervisor()
        graph.set_supervisor(supervisor)
        assert (
            graph.plan_snapshot()["fallback_reason"]
            == "supervisor-installed"
        )
        graph.set_supervisor(None)

        hub = ObservabilityHub(MetricsRegistry(), tracing=True)
        graph.set_instrumentation(hub)
        assert (
            graph.plan_snapshot()["fallback_reason"]
            == "tracing-hub-installed"
        )
        graph.set_instrumentation(
            ObservabilityHub(MetricsRegistry(), tracing=False)
        )
        # A metrics-only hub does not gate fusion.
        assert graph.plan_snapshot()["fallback_reason"] is None
        graph.set_instrumentation(None)

        unsubscribe = graph.add_observer(GraphObserver())
        assert (
            graph.plan_snapshot()["fallback_reason"]
            == "graph-observers-subscribed"
        )
        unsubscribe()
        assert graph.plan_snapshot()["fallback_reason"] is None
        assert len(graph.plan_snapshot()["chains"]) == 1

    def test_compile_plan_is_pure_of_counters(self):
        graph = linear_graph(2)
        plan = compile_plan(graph)
        assert plan.epoch == graph._plan_epoch
        assert plan.version == graph.topology_version
        assert repr(plan) == "CompiledPlan(chains=1)"
        graph.set_compilation(False)
        assert "fallback" in repr(compile_plan(graph))

    def test_chain_repr(self):
        graph = linear_graph(2)
        (chain,) = graph._compiled_plan().chains.values()
        assert repr(chain) == "FusedChain(s0 -> s1)"


class TestInvalidation:
    def test_structural_mutation_invalidates(self):
        graph = linear_graph(3)
        before = graph.plan_snapshot()["invalidations"]
        graph.add(FunctionComponent("extra", KINDS, KINDS, identity))
        assert graph.plan_snapshot()["invalidations"] > before

    def test_tracing_flipped_in_place_bails_per_datum_and_batch(self):
        # Flipping ``hub.tracing`` without re-installing the hub cannot
        # bump the epoch; the chain must detect it at entry and fall
        # back to interpreted (traced) delivery.
        graph = linear_graph(3)
        hub = ObservabilityHub(MetricsRegistry(), tracing=False)
        graph.set_instrumentation(hub)
        src = graph.component("src")
        src.inject(Datum("x", 1, 0.0))  # compiles + warms the memo
        hub.tracing = True
        src.inject(Datum("x", 2, 0.0))
        src.inject_batch([Datum("x", 3, 0.0)])
        sink = graph.component("app")
        assert [d.payload for d in sink.received] == [1, 2, 3]
        # The traced datums carry flow traces through every member.
        from repro.observability import trace_of

        trace = trace_of(sink.received[-1])
        assert trace is not None
        assert trace.path == ["src", "s0", "s1", "s2"]

    def test_feature_attach_mid_delivery_decompiles_in_flight(self):
        # The epoch seam, not just the version seam: attaching a feature
        # from inside a fused member must hand the datum back to
        # interpreted dispatch so the new feature is honoured downstream.
        graph = linear_graph(0)
        graph.disconnect("src", "app")

        class Veto(ComponentFeature):
            name = "Veto"

            def consume(self, datum: Datum) -> Optional[Datum]:
                return None

        def attach(datum: Datum) -> Datum:
            if not graph.component("b").has_feature("Veto"):
                graph.component("b").attach_feature(Veto())
            return datum

        graph.add(FunctionComponent("a", KINDS, KINDS, attach))
        graph.add(FunctionComponent("b", KINDS, KINDS, identity))
        graph.connect("src", "a")
        graph.connect("a", "b")
        graph.connect("b", "app")
        assert [c["members"] for c in graph.plan_snapshot()["chains"]] == [
            ["a", "b"]
        ]
        graph.component("src").inject(Datum("x", 1, 0.0))
        # The very datum that triggered the attach was vetoed by the
        # feature it installed: b's Veto ran, so no stale fused step
        # bypassed it.
        assert graph.component("app").received == []
        assert graph.plan_snapshot()["excluded"]["b"] == "features-attached"


class TestMidDeliveryMutationRegression:
    """Satellite regression: remove(reconnect=True) / insert_between
    fired mid-delivery must always decompile, even via error paths."""

    def test_remove_reconnect_mid_delivery_reroutes(self):
        graph = linear_graph(3)
        removed: List[str] = []

        def remove_tail(datum: Datum) -> Datum:
            if not removed:
                removed.append("s2")
                graph.remove("s2", reconnect=True)
            return datum

        graph.component("s1")._fn = remove_tail  # type: ignore[attr-defined]
        graph.invalidate_plan()  # fn swapped in place: decompile
        src = graph.component("src")
        src.inject_batch([Datum("x", 1, 0.0), Datum("x", 2, 0.0)])
        src.inject(Datum("x", 3, 0.0))
        # Every datum reached the sink exactly once: the in-flight batch
        # bailed at the s1 -> s2 boundary onto the spliced s1 -> app
        # edge, and later traffic used the recompiled plan.
        assert [d.payload for d in graph.component("app").received] == [
            1,
            2,
            3,
        ]
        assert [c["members"] for c in graph.plan_snapshot()["chains"]] == [
            ["s0", "s1"]
        ]

    def test_insert_between_mid_delivery_takes_effect_at_boundary(self):
        graph = linear_graph(3)
        seen: List[int] = []
        spliced: List[str] = []

        def splice(datum: Datum) -> Datum:
            if not spliced:
                spliced.append("tap")
                graph.insert_between(
                    "s1",
                    "s2",
                    FunctionComponent(
                        "tap",
                        KINDS,
                        KINDS,
                        lambda d: (seen.append(d.payload), d)[1],
                    ),
                )
            return datum

        graph.component("s1")._fn = splice  # type: ignore[attr-defined]
        graph.invalidate_plan()
        graph.component("src").inject_batch(
            [Datum("x", 1, 0.0), Datum("x", 2, 0.0)]
        )
        # The whole in-flight batch crossed the freshly spliced tap:
        # interpreted batched dispatch applies mutations at the next
        # member boundary, and the fused chain matches it.
        assert seen == [1, 2]
        assert [d.payload for d in graph.component("app").received] == [1, 2]

    def test_remove_error_path_still_invalidates(self):
        graph = linear_graph(3)
        graph.component("src").inject(Datum("x", 1, 0.0))  # warm plan
        original_connect = graph.connect

        def exploding_connect(*args: Any, **kwargs: Any) -> Any:
            raise RuntimeError("reconnect blew up")

        before = graph._plan_invalidations
        graph.connect = exploding_connect  # type: ignore[method-assign]
        with pytest.raises(RuntimeError):
            graph.remove("s1", reconnect=True)
        graph.connect = original_connect  # type: ignore[method-assign]
        # The half-applied removal decompiled: no stale fused chain
        # (which still embeds the removed s1) can execute.
        assert graph._plan is None
        assert graph._plan_invalidations > before
        graph.component("src").inject(Datum("x", 2, 0.0))
        # s1 is gone and the reconnect never happened, so the datum
        # stops at s0 -- but it must not crash or resurrect s1.
        assert [d.payload for d in graph.component("app").received] == [1]
        assert "s1" not in graph

    def test_insert_between_error_path_still_invalidates(self):
        graph = linear_graph(3)
        graph.component("src").inject(Datum("x", 1, 0.0))  # warm plan
        before = graph._plan_invalidations
        with pytest.raises(GraphError):
            # Splicing the already-present s0 into s1 -> s2 disconnects
            # the edge, then fails on the cycle check (s1 -> s0) --
            # a GraphError escaping *between* constituent mutations.
            graph.insert_between(
                "s1", "s2", FunctionComponent("s0", KINDS, KINDS, identity)
            )
        assert graph._plan is None
        assert graph._plan_invalidations > before
        # The half-applied splice (edge removed, replacement failed) is
        # what routing now sees: traffic stops at s1 instead of riding a
        # stale fused chain through the disconnected s2.
        assert graph.downstream("s1") == []
        graph.component("src").inject(Datum("x", 2, 0.0))
        assert [d.payload for d in graph.component("app").received] == [1]
        snapshot = graph.plan_snapshot()
        assert snapshot["version"] == graph.topology_version
        assert snapshot["excluded"]["s0"] == "chain-too-short"


class TestHubInstruments:
    def test_plan_gauges_and_counters(self):
        graph = linear_graph(3)
        hub = ObservabilityHub(MetricsRegistry(), tracing=False)
        graph.set_instrumentation(hub)
        registry = hub.registry
        src = graph.component("src")
        src.inject(Datum("x", 1, 0.0))
        assert registry.gauge("graph_compiled_chains").value == 1
        assert registry.gauge("graph_fused_components").value == 3
        assert registry.counter("graph_fused_dispatches").value == 1
        invalidations = registry.counter("graph_plan_invalidations").value
        assert invalidations >= 1
        graph.add(FunctionComponent("extra", KINDS, KINDS, identity))
        assert (
            registry.counter("graph_plan_invalidations").value
            > invalidations
        )
        # Plan instruments carry no component label, so they never leak
        # into the per-component roll-up.
        assert "graph_fused_dispatches" not in str(
            sorted(hub.component_stats())
        )

    def test_fused_member_counters_match_interpreted_names(self):
        graph = linear_graph(2)
        hub = ObservabilityHub(MetricsRegistry(), tracing=False)
        graph.set_instrumentation(hub)
        graph.component("src").inject_batch(
            [Datum("x", 1, 0.0), Datum("x", 2, 0.0)]
        )
        stats = hub.component_stats()
        for member in ("s0", "s1"):
            assert stats[member]["items_in"] == 2
            assert stats[member]["items_out"] == 2
            assert stats[member]["errors"] == 0
            assert stats[member]["latency"]["count"] == 1


class TestReflectiveSurface:
    def test_psl_describe_carries_compiled_role(self):
        graph = linear_graph(3)
        psl = ProcessStructureLayer(graph)
        role = psl.describe("s1")["compiled_plans"]
        assert role["enabled"] is True
        assert role["chain"]["members"] == ["s0", "s1", "s2"]
        graph.component("s1").attach_feature(PassFeature())
        role = psl.describe("s1")["compiled_plans"]
        assert role["excluded"] == "features-attached"
        assert "chain" not in role
        graph.set_compilation(False)
        role = psl.describe("s1")["compiled_plans"]
        assert role["fallback_reason"] == "compilation-disabled"

    def test_psl_compiled_plans_and_toggle(self):
        graph = linear_graph(2)
        psl = ProcessStructureLayer(graph)
        assert psl.compiled_plans()["fused_components"] == 2
        assert psl.set_compilation(False) is True
        assert psl.compiled_plans()["chains"] == []
        assert psl.set_compilation(True) is False

    def test_engine_snapshot_carries_plan(self):
        graph = linear_graph(2)
        engine = PositioningEngine(graph)
        plan = engine.snapshot()["plan"]
        assert plan["fused_components"] == 2
        assert plan["enabled"] is True

    def test_report_renders_compiled_line(self):
        middleware = PerPos()
        graph = middleware.graph
        graph.add(SourceComponent("src", KINDS))
        graph.add(FunctionComponent("f0", KINDS, KINDS, identity))
        graph.add(FunctionComponent("f1", KINDS, KINDS, identity))
        provider = middleware.create_provider("app", accepts=KINDS)
        graph.connect("src", "f0")
        graph.connect("f0", "f1")
        graph.connect("f1", provider.sink.name)
        text = render_report(middleware)
        assert "compiled:" in text
        # The PCL subscribes as a graph observer, so a full PerPos stack
        # reports interpreted dispatch with the observer reason.
        assert "interpreted (graph-observers-subscribed)" in text

    def test_report_renders_fused_chain_line(self):
        middleware = PerPos()
        graph = middleware.graph
        # Close the PCL (it unsubscribes its graph observer) so the
        # rendering shows a fused chain, as a bare shard/engine graph
        # would.
        middleware.pcl.close()
        graph.add(SourceComponent("src", KINDS))
        graph.add(FunctionComponent("f0", KINDS, KINDS, identity))
        graph.add(FunctionComponent("f1", KINDS, KINDS, identity))
        graph.add(ApplicationSink("app", KINDS))
        graph.connect("src", "f0")
        graph.connect("f0", "f1")
        graph.connect("f1", "app")
        text = render_report(middleware)
        assert "1 chains / 2 components fused (f0 -> f1)" in text

    def test_core_exports(self):
        import repro.core as core

        assert core.CompiledPlan is not None
        assert core.FusedChain is not None
        assert core.compile_plan is compile_plan


class TestFusedFnOptIn:
    def test_base_component_stays_opaque(self):
        class Opaque(ProcessingComponent):
            def process(self, port_name: str, datum: Datum) -> None:
                self.produce(datum)

        from repro.core.component import InputPort, OutputPort

        comp = Opaque(
            "o", (InputPort("in", KINDS),), OutputPort(KINDS)
        )
        assert comp.fused_fn() is None

    def test_stock_function_component_opts_in(self):
        comp = FunctionComponent("f", KINDS, KINDS, identity)
        assert comp.fused_fn() is identity

    def test_overriding_any_data_path_method_opts_out(self):
        class CustomReceive(FunctionComponent):
            def receive(self, port_name: str, datum: Datum) -> None:
                super().receive(port_name, datum)

        class CustomProduce(FunctionComponent):
            def produce(self, datum: Datum) -> None:
                super().produce(datum)

        for cls in (CustomReceive, CustomProduce):
            assert cls("f", KINDS, KINDS, identity).fused_fn() is None
