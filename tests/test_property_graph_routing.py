"""Property tests: the indexed dispatch fast path is observationally
equivalent to a naive edge-list scan (hypothesis).

The graph's routing tables, per-(producer, kind) memo, and adjacency
caches are derived state invalidated by the topology version.  These
tests drive random mutation sequences (add / remove / connect /
disconnect) through the real graph and check that, for every reachable
(producer, kind) pair, delivery is *exactly* what a from-scratch
recursive scan of ``graph.connections()`` predicts -- same consumers,
same ports, same order -- and that the cached ``descendants()`` /
``ancestors()`` / ``sources()`` / ``sinks()`` answers match a reference
BFS over the raw edge list.
"""

from hypothesis import given, settings, strategies as st

from repro.core.component import FunctionComponent
from repro.core.data import Datum
from repro.core.graph import GraphError, GraphObserver, ProcessingGraph

NAMES = ("c0", "c1", "c2", "c3", "c4", "c5")
KINDS = ("x", "y")

kind_sets = st.lists(
    st.sampled_from(KINDS), min_size=1, max_size=2, unique=True
).map(tuple)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.sampled_from(NAMES), kind_sets),
        st.tuples(
            st.just("remove"), st.sampled_from(NAMES), st.booleans()
        ),
        st.tuples(
            st.just("connect"),
            st.sampled_from(NAMES),
            st.sampled_from(NAMES),
        ),
        st.tuples(
            st.just("disconnect"),
            st.sampled_from(NAMES),
            st.sampled_from(NAMES),
        ),
    ),
    min_size=1,
    max_size=30,
)


def apply_operations(ops):
    """Build a graph by applying ``ops``, skipping invalid ones.

    Invalid operations (duplicate names, missing components, cycles,
    kind mismatches) raise GraphError in the real API; a random
    sequence hits plenty of them, and skipping keeps the generated
    topologies honest -- every surviving graph state was reached purely
    through public mutations.
    """
    graph = ProcessingGraph()
    for op in ops:
        try:
            if op[0] == "add":
                _, name, kinds = op
                graph.add(
                    FunctionComponent(name, kinds, kinds, fn=lambda d: d)
                )
            elif op[0] == "remove":
                _, name, reconnect = op
                graph.remove(name, reconnect=reconnect)
            elif op[0] == "connect":
                graph.connect(op[1], op[2])
            else:
                graph.disconnect(op[1], op[2])
        except GraphError:
            continue
    return graph


class Recorder(GraphObserver):
    def __init__(self):
        self.events = []

    def data_consumed(self, component, port_name, datum):
        self.events.append(
            (component.name, port_name, datum.kind, datum.payload)
        )


def reference_route(graph, producer, datum, events):
    """Route ``datum`` by scanning the raw edge list, depth-first.

    Mirrors the synchronous delivery semantics: edges are visited in
    ``connections()`` list order, a consumer receives iff its port
    accepts the kind, and a passthrough immediately re-produces --
    recursing before the next sibling edge is considered.
    """
    for connection in graph.connections():
        if connection.producer != producer:
            continue
        consumer = graph.component(connection.consumer)
        port = consumer.input_port(connection.port)
        if datum.kind not in port.accepts:
            continue
        events.append(
            (connection.consumer, connection.port, datum.kind, datum.payload)
        )
        if datum.kind in consumer.output_port.capabilities:
            reference_route(graph, connection.consumer, datum, events)


def reference_reachable(graph, start, forward):
    """BFS over the raw edge list; ``forward`` walks producer->consumer."""
    adjacency = {}
    for connection in graph.connections():
        if forward:
            adjacency.setdefault(connection.producer, set()).add(
                connection.consumer
            )
        else:
            adjacency.setdefault(connection.consumer, set()).add(
                connection.producer
            )
    seen = set()
    frontier = [start]
    while frontier:
        name = frontier.pop()
        for neighbour in adjacency.get(name, ()):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_indexed_routing_matches_edge_list_scan(ops):
    graph = apply_operations(ops)
    payload = 0
    for component in list(graph.components()):
        for kind in component.output_port.capabilities:
            payload += 1
            datum = Datum(kind, payload, 0.0)
            expected = []
            reference_route(graph, component.name, datum, expected)

            recorder = Recorder()
            unsubscribe = graph.add_observer(recorder)
            try:
                component.produce(datum)
            finally:
                unsubscribe()
            assert recorder.events == expected


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_traversal_caches_match_reference_bfs(ops):
    graph = apply_operations(ops)
    for component in graph.components():
        name = component.name
        assert graph.descendants(name) == reference_reachable(
            graph, name, forward=True
        )
        assert graph.ancestors(name) == reference_reachable(
            graph, name, forward=False
        )
    with_inbound = {c.consumer for c in graph.connections()}
    with_outbound = {c.producer for c in graph.connections()}
    names = {c.name for c in graph.components()}
    assert {c.name for c in graph.sources()} == names - with_inbound
    assert {c.name for c in graph.sinks()} == names - with_outbound


@settings(max_examples=40, deadline=None)
@given(ops=operations, extra=operations)
def test_routing_stays_correct_across_warm_memo(ops, extra):
    """Inject, mutate further, inject again: the memo built by the
    first round must not leak stale entries into the second."""
    graph = apply_operations(ops)
    for component in list(graph.components()):
        for kind in component.output_port.capabilities:
            component.produce(Datum(kind, 0, 0.0))  # warm the memo

    for op in extra:  # second mutation round on the same graph
        try:
            if op[0] == "add":
                _, name, kinds = op
                graph.add(
                    FunctionComponent(name, kinds, kinds, fn=lambda d: d)
                )
            elif op[0] == "remove":
                graph.remove(op[1], reconnect=op[2])
            elif op[0] == "connect":
                graph.connect(op[1], op[2])
            else:
                graph.disconnect(op[1], op[2])
        except GraphError:
            continue

    payload = 0
    for component in list(graph.components()):
        for kind in component.output_port.capabilities:
            payload += 1
            datum = Datum(kind, payload, 0.0)
            expected = []
            reference_route(graph, component.name, datum, expected)
            recorder = Recorder()
            unsubscribe = graph.add_observer(recorder)
            try:
                component.produce(datum)
            finally:
                unsubscribe()
            assert recorder.events == expected
