"""Tests for the Location-Stack- and PoSIM-style baseline middleware."""

import pytest

from repro.baselines.location_stack import (
    FormatError,
    LocationStackMiddleware,
    STANDARD_FIELDS,
)
from repro.baselines.posim import (
    Policy,
    PosimError,
    PosimMiddleware,
    SensorWrapper,
)
from repro.geo.wgs84 import Wgs84Position


def gps_raw(t, sats=None, include_extra=False):
    raw = {
        "latitude_deg": 56.17,
        "longitude_deg": 10.19,
        "accuracy_m": 5.0,
        "timestamp": t,
    }
    if include_extra:
        raw["num_satellites"] = sats
    return raw


class TestLocationStack:
    def test_standard_fields_fixed(self):
        stack = LocationStackMiddleware()
        assert stack.position_format_fields() == STANDARD_FIELDS
        assert not stack.source_modified

    def test_unknown_field_rejected_closed_format(self):
        stack = LocationStackMiddleware()
        stack.add_sensor("gps", lambda now: [gps_raw(now, 7, True)])
        with pytest.raises(FormatError):
            stack.pump(0.0)

    def test_extension_requires_source_modification_flag(self):
        stack = LocationStackMiddleware(extra_fields=("num_satellites",))
        assert stack.source_modified
        stack.add_sensor("gps", lambda now: [gps_raw(now, 7, True)])
        stack.pump(0.0)
        assert stack.last_measurement().get("num_satellites") == 7

    def test_format_pollution_on_other_technologies(self):
        stack = LocationStackMiddleware(extra_fields=("num_satellites",))
        stack.add_sensor("gps", lambda now: [gps_raw(now, 7, True)])
        stack.add_sensor("wifi", lambda now: [gps_raw(now)])
        stack.pump(0.0)
        report = stack.pollution_report()
        # Half of all measurements (the WiFi ones) carry a dead field.
        assert report["num_satellites"] == pytest.approx(0.5)

    def test_fusion_selects_best_accuracy(self):
        stack = LocationStackMiddleware()
        stack.add_sensor(
            "gps",
            lambda now: [dict(gps_raw(now), accuracy_m=9.0)],
        )
        stack.add_sensor(
            "wifi",
            lambda now: [dict(gps_raw(now), accuracy_m=2.0)],
        )
        stack.pump(0.0)
        assert stack.last_measurement().get("technology") == "wifi"

    def test_application_sees_only_positions(self):
        stack = LocationStackMiddleware()
        stack.add_sensor("gps", lambda now: [gps_raw(now)])
        stack.pump(1.0)
        position = stack.last_position()
        assert isinstance(position, Wgs84Position)
        assert position.timestamp == 1.0

    def test_no_position_before_data(self):
        assert LocationStackMiddleware().last_position() is None

    def test_pollution_report_empty_without_measurements(self):
        stack = LocationStackMiddleware(extra_fields=("x",))
        assert stack.pollution_report() == {"x": 0.0}


class TestSensorWrapper:
    def test_declared_infos_and_controls(self):
        wrapper = SensorWrapper(
            "gps",
            infos={"hdop": lambda: 1.5},
            controls={"power": lambda v: None},
        )
        assert wrapper.declared_infos() == ["hdop"]
        assert wrapper.declared_controls() == ["power"]

    def test_info_returns_latest(self):
        state = {"hdop": 1.0}
        wrapper = SensorWrapper("gps", infos={"hdop": lambda: state["hdop"]})
        assert wrapper.get_info("hdop") == 1.0
        state["hdop"] = 3.0
        assert wrapper.get_info("hdop") == 3.0

    def test_unknown_info_and_control(self):
        wrapper = SensorWrapper("gps")
        with pytest.raises(PosimError):
            wrapper.get_info("hdop")
        with pytest.raises(PosimError):
            wrapper.set_control("power", "low")


class TestPosim:
    def make(self, lag=0):
        state = {"hdop": 1.0, "power": "high"}
        middleware = PosimMiddleware(delivery_lag_updates=lag)
        wrapper = SensorWrapper(
            "gps",
            infos={"hdop": lambda: state["hdop"]},
            controls={
                "power": lambda v: state.__setitem__("power", v)
            },
        )
        middleware.register_wrapper(wrapper)
        return middleware, state

    def test_duplicate_wrapper_rejected(self):
        middleware, _ = self.make()
        with pytest.raises(PosimError):
            middleware.register_wrapper(SensorWrapper("gps"))

    def test_get_info_cross_level(self):
        middleware, state = self.make()
        state["hdop"] = 2.5
        assert middleware.get_info("gps", "hdop") == 2.5

    def test_policy_fires_on_condition(self):
        middleware, state = self.make()
        middleware.add_policy(
            Policy("save-power", "gps", "hdop", ">", 5.0, "power", "low")
        )
        state["hdop"] = 9.0
        middleware.publish_position("gps", Wgs84Position(56.0, 10.0))
        assert state["power"] == "low"
        assert middleware.policy_firings[0][0] == "save-power"

    def test_policy_quiet_when_condition_false(self):
        middleware, state = self.make()
        middleware.add_policy(
            Policy("save-power", "gps", "hdop", ">", 5.0, "power", "low")
        )
        state["hdop"] = 1.0
        middleware.publish_position("gps", Wgs84Position(56.0, 10.0))
        assert state["power"] == "high"

    def test_policy_none_info_never_fires(self):
        assert not Policy(
            "p", "gps", "hdop", ">", 1.0, "power", "low"
        ).condition_holds(None)

    def test_policy_operator_validation(self):
        policy = Policy("p", "gps", "hdop", "~=", 1.0, "power", "low")
        with pytest.raises(PosimError):
            policy.condition_holds(2.0)

    def test_delivery_lag_queues_positions(self):
        middleware, _state = self.make(lag=2)
        seen = []
        middleware.add_position_listener(lambda p: seen.append(p))
        for i in range(3):
            middleware.publish_position(
                "gps", Wgs84Position(56.0 + i * 0.001, 10.0)
            )
        # With lag 2, only the first of three published is delivered.
        assert len(seen) == 1
        middleware.flush()
        assert len(seen) == 3

    def test_stale_info_attribution_with_lag(self):
        """The paper's PoSIM critique: get_info at delivery time returns
        the LATEST hdop, not the one behind the delivered position."""
        state = {"hdop": 0.0}
        middleware = PosimMiddleware(delivery_lag_updates=1)
        middleware.register_wrapper(
            SensorWrapper("gps", infos={"hdop": lambda: state["hdop"]})
        )
        attributions = []
        middleware.add_position_listener(
            lambda p: attributions.append(middleware.get_info("gps", "hdop"))
        )
        for i, hdop in enumerate([1.0, 2.0, 3.0]):
            state["hdop"] = hdop
            middleware.publish_position(
                "gps",
                Wgs84Position(56.0, 10.0, timestamp=float(i)),
            )
        # Position 0 was delivered while position 1's hdop was current.
        assert attributions == [2.0, 3.0]

    def test_listener_removal(self):
        middleware, _ = self.make()
        seen = []
        remove = middleware.add_position_listener(seen.append)
        remove()
        middleware.publish_position("gps", Wgs84Position(56.0, 10.0))
        assert seen == []

    def test_lag_validation(self):
        with pytest.raises(ValueError):
            PosimMiddleware(delivery_lag_updates=-1)
