"""Property tests: the city scenario is deterministic and
execution-mode independent (hypothesis).

Three pinned contracts:

* **Seed determinism** -- the same :class:`CityConfig` yields the
  identical stream of joins/leaves/emissions on every run, whatever the
  churn, zones, or bursts drawn.
* **Execution-mode equivalence** -- the same seeded scenario driven
  closed-loop through a single :class:`PositioningEngine` and through an
  in-process :class:`ShardedEngine` delivers the same sink-output
  multiset, the same headline result figures, and the *same decision
  ledger*: sharding redistributes work, it must change neither results
  nor adaptation.
* **Storm determinism** (chaos-marked) -- a hostile mix of heavy churn,
  total-coverage bursts and degraded zones over tiny lanes still
  replays byte-identically, closed loop included.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import PositioningEngine, ShardedEngine
from repro.runtime.scheduler import RoundRobinScheduler
from repro.scenario import (
    BurstEvent,
    CityConfig,
    CityGenerator,
    ControlLoop,
    DegradedZone,
    ScenarioRunner,
    build_city_graph,
    default_controllers,
)


def recipe():
    return build_city_graph()


def config_for(seed, devices=10, churn_rate=0.05):
    return CityConfig(
        seed=seed,
        devices=devices,
        churn_rate=churn_rate,
        bursts=(
            BurstEvent("rush", 3, 12, 1000.0, 1000.0, 5000.0, factor=5),
        ),
    )


def batch_key(batch):
    return (
        batch.tick,
        tuple(batch.joined),
        tuple(batch.left),
        tuple(
            (
                device_id,
                d.kind,
                d.payload,
                d.timestamp,
                tuple(sorted(d.attributes.items())),
            )
            for device_id, d in batch.events
        ),
        batch.suppressed,
        batch.zone_lost,
        batch.burst_extra,
    )


def run_single(config, ticks, *, closed, quantum):
    engine = PositioningEngine(
        recipe(), scheduler=RoundRobinScheduler(quantum=quantum)
    )
    control = ControlLoop(default_controllers()) if closed else None
    runner = ScenarioRunner(
        CityGenerator(config), engine, control=control, capacity=4
    )
    result = runner.run(ticks)
    graph = engine.graph
    outputs = Counter(
        (sink, d.kind, d.payload, d.attributes.get("target"))
        for sink in ("city-app", "city-alerts")
        for d in graph.component(sink).received
    )
    return result, outputs, runner.decision_ledger()


def run_sharded(config, ticks, *, closed, quantum, shards):
    control = ControlLoop(default_controllers()) if closed else None
    with ShardedEngine(
        recipe, shards, scheduler=("round_robin", quantum)
    ) as engine:
        runner = ScenarioRunner(
            CityGenerator(config), engine, control=control, capacity=4
        )
        result = runner.run(ticks)
        outputs = Counter(
            (sink, kind, payload, target)
            for sink, kind, payload, target in engine.sink_outputs()
        )
        ledger = runner.decision_ledger()
    return result, outputs, ledger


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    devices=st.integers(min_value=1, max_value=20),
    churn=st.floats(min_value=0.0, max_value=0.3),
)
def test_same_seed_yields_identical_streams(seed, devices, churn):
    config = config_for(seed, devices=devices, churn_rate=churn)
    a = CityGenerator(config)
    b = CityGenerator(config)
    for _ in range(15):
        assert batch_key(a.advance()) == batch_key(b.advance())


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    shards=st.integers(min_value=2, max_value=3),
    quantum=st.integers(min_value=1, max_value=4),
)
def test_sharded_closed_loop_matches_single_engine(seed, shards, quantum):
    config = config_for(seed)
    single_result, single_out, single_ledger = run_single(
        config, 20, closed=True, quantum=quantum
    )
    sharded_result, sharded_out, sharded_ledger = run_sharded(
        config, 20, closed=True, quantum=quantum, shards=shards
    )
    assert sharded_out == single_out
    assert sharded_ledger == single_ledger
    for key in ("submitted", "dropped", "alerts", "decisions", "drained"):
        assert sharded_result.get(key) == single_result.get(key)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    shards=st.integers(min_value=2, max_value=3),
)
def test_sharded_open_loop_matches_single_engine(seed, shards):
    config = config_for(seed)
    single_result, single_out, _ = run_single(
        config, 20, closed=False, quantum=2
    )
    sharded_result, sharded_out, ledger = run_sharded(
        config, 20, closed=False, quantum=2, shards=shards
    )
    assert ledger == []
    assert sharded_out == single_out
    for key in ("submitted", "dropped", "alerts", "drained"):
        assert sharded_result.get(key) == single_result.get(key)


@pytest.mark.chaos
def test_storm_replays_byte_identically():
    """Heavy churn + a city-wide burst + hostile zones, tiny lanes: the
    run must still replay identically -- closed loop, ledger and all --
    and the sharded replay must agree with the single engine."""
    config = CityConfig(
        seed=1234,
        devices=30,
        churn_rate=0.25,
        zones=(
            DegradedZone("blanket", 1000.0, 1000.0, 3000.0, drop_rate=0.6),
        ),
        bursts=(
            BurstEvent("storm", 2, 30, 1000.0, 1000.0, 5000.0, factor=10),
        ),
    )
    first = run_single(config, 40, closed=True, quantum=1)
    second = run_single(config, 40, closed=True, quantum=1)
    assert first == second
    result, outputs, ledger = first
    assert result["dropped"] > 0
    assert result["decisions"] > 0
    sharded = run_sharded(config, 40, closed=True, quantum=1, shards=3)
    assert sharded[1] == outputs
    assert sharded[2] == ledger
    for key in ("submitted", "dropped", "alerts", "decisions"):
        assert sharded[0][key] == result[key]
