"""Property tests: replay-after-fix restores the clean-run stream.

The gateway's headline contract (hypothesis-pinned): for any payload
stream in which a subset of payloads arrives with systematically wrong
vendor field names, dead-lettering the broken ones and replaying them
after installing the correcting crosswalk delivers the *same sink
multiset* as submitting the whole stream in canonical form -- the fix
lives in middleware configuration, so no information is lost at the
edge.  A second property pins the accounting invariant
(``submitted == accepted + rejected + shed + pending``) and submit's
no-raise contract over arbitrary junk payloads.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Kind
from repro.core.graph import ProcessingGraph
from repro.gateway import (
    AutoTrackPolicy,
    Crosswalk,
    FieldMap,
    IngestionGateway,
)
from repro.runtime import PositioningEngine
from repro.services.remote import RetryPolicy

POS = Kind.POSITION_WGS84

DEVICES = ("alpha", "beta", "gamma")

#: One observation: (device index, timestamp, lat, lon, broken?).
observations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(DEVICES) - 1),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.floats(min_value=-90.0, max_value=90.0, allow_nan=False),
        st.floats(min_value=-180.0, max_value=180.0, allow_nan=False),
        st.booleans(),
    ),
    min_size=1,
    max_size=60,
)

#: Arbitrary junk the gateway must absorb without raising.
junk_payloads = st.lists(
    st.one_of(
        st.none(),
        st.integers(),
        st.text(max_size=10),
        st.lists(st.integers(), max_size=3),
        st.dictionaries(
            st.sampled_from(
                ("source_format", "device_id", "timestamp", "lat", "lon")
            ),
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(10**6), max_value=10**6),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=12),
                st.just("phone_tracker_v1"),
            ),
            max_size=5,
        ),
    ),
    min_size=1,
    max_size=40,
)


class _Clock:
    now = 0.0


def fresh_gateway():
    """A gateway over its own src -> sink graph, sized so nothing is
    ever shed: any stream difference is the pipeline's doing."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("src", (POS,)))
    graph.add(ApplicationSink("sink", (POS,), keep_last=100_000))
    graph.connect("src", "sink", "in")
    engine = PositioningEngine(graph)
    gateway = IngestionGateway(
        engine,
        "src",
        device_policy=AutoTrackPolicy(capacity=4096),
        admission_capacity=4096,
        dlq_capacity=4096,
        retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        clock=_Clock(),
    )
    return gateway, engine, graph.component("sink")


def canonical(device_index, t, lat, lon):
    return {
        "source_format": "phone_tracker_v1",
        "device_id": DEVICES[device_index],
        "timestamp": t,
        "lat": lat,
        "lon": lon,
    }


def vendor_broken(device_index, t, lat, lon):
    """The same observation with the vendor's field names."""
    return {
        "source_format": "phone_tracker_v1",
        "device_id": DEVICES[device_index],
        "timestamp": t,
        "latitude": lat,
        "longitude": lon,
    }


FIX = [FieldMap("latitude", "lat"), FieldMap("longitude", "lon")]


def sink_multiset(sink):
    """Project delivered datums to the observation they carry."""
    return Counter(
        (
            d.attributes["device"],
            d.payload["timestamp"],
            d.payload["lat"],
            d.payload["lon"],
        )
        for d in sink.received
    )


@given(observations)
@settings(max_examples=60, deadline=None)
def test_replay_after_fix_matches_the_clean_run(obs):
    # Twin A: every observation submitted in canonical form.
    clean_gw, clean_engine, clean_sink = fresh_gateway()
    for device_index, t, lat, lon in ((o[0], o[1], o[2], o[3]) for o in obs):
        assert clean_gw.submit(canonical(device_index, t, lat, lon)) == "admitted"
    clean_gw.forward()
    clean_engine.drain_all()
    assert clean_gw.accepted == len(obs)

    # Twin B: broken observations dead-letter, then replay after the fix.
    gw, engine, sink = fresh_gateway()
    broken = 0
    for device_index, t, lat, lon, is_broken in obs:
        if is_broken:
            assert gw.submit(vendor_broken(device_index, t, lat, lon)) == "rejected"
            broken += 1
        else:
            assert gw.submit(canonical(device_index, t, lat, lon)) == "admitted"
    gw.forward()
    engine.drain_all()
    assert gw.rejected == broken
    gw.adapter("phone_tracker_v1").set_crosswalk(Crosswalk(FIX))
    outcome = gw.replay()
    engine.drain_all()

    # ISSUE acceptance: >= 95% of fixable dead letters recover; with a
    # complete fix that is all of them, and the sink multisets agree.
    assert outcome["replayed"] >= 0.95 * broken
    assert outcome["replayed"] == broken
    assert sink_multiset(sink) == sink_multiset(clean_sink)


@given(junk_payloads)
@settings(max_examples=80, deadline=None)
def test_junk_streams_never_raise_and_always_balance(stream):
    gw, engine, _ = fresh_gateway()
    for raw in stream:
        verdict = gw.submit(raw)  # must not raise, whatever the shape
        assert verdict in ("admitted", "rejected", "shed")
    gw.forward()
    engine.drain_all()
    assert gw.submitted == len(stream)
    assert gw.pending == 0
    assert gw.submitted == gw.accepted + gw.rejected + gw.shed
    # Every rejection is inspectable.
    for record in gw.dlq.records():
        assert record.stage and record.reason
