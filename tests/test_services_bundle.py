"""Tests for bundle lifecycle and the framework."""

import pytest

from repro.services.bundle import BundleState, Framework


class RecordingActivator:
    def __init__(self, fail_on_start=False):
        self.events = []
        self.fail_on_start = fail_on_start

    def start(self, context):
        self.events.append("start")
        if self.fail_on_start:
            raise RuntimeError("boom")
        context.register_service("svc", f"service-of-{context.bundle.name}")

    def stop(self, context):
        self.events.append("stop")


class TestLifecycle:
    def test_install_starts_installed(self):
        fw = Framework()
        bundle = fw.install("b1")
        assert bundle.state is BundleState.INSTALLED

    def test_duplicate_install_rejected(self):
        fw = Framework()
        fw.install("b1")
        with pytest.raises(ValueError):
            fw.install("b1")

    def test_start_activates_and_registers(self):
        fw = Framework()
        activator = RecordingActivator()
        fw.install("b1", activator)
        fw.start("b1")
        assert fw.bundle("b1").state is BundleState.ACTIVE
        assert fw.registry.find_service("svc") == "service-of-b1"

    def test_start_twice_is_noop(self):
        fw = Framework()
        activator = RecordingActivator()
        fw.install("b1", activator)
        fw.start("b1")
        fw.start("b1")
        assert activator.events == ["start"]

    def test_stop_unregisters_services(self):
        fw = Framework()
        fw.install("b1", RecordingActivator())
        fw.start("b1")
        fw.stop("b1")
        assert fw.registry.find_service("svc") is None
        assert fw.bundle("b1").state is BundleState.STOPPED

    def test_failed_start_cleans_up(self):
        fw = Framework()
        fw.install("b1", RecordingActivator(fail_on_start=True))
        with pytest.raises(RuntimeError):
            fw.start("b1")
        assert fw.bundle("b1").state is BundleState.INSTALLED
        assert len(fw.registry) == 0

    def test_uninstall_active_bundle_stops_it_first(self):
        fw = Framework()
        activator = RecordingActivator()
        fw.install("b1", activator)
        fw.start("b1")
        fw.uninstall("b1")
        assert activator.events == ["start", "stop"]
        with pytest.raises(KeyError):
            fw.bundle("b1")

    def test_shutdown_stops_in_reverse_order(self):
        fw = Framework()
        order = []

        class Ordered:
            def __init__(self, name):
                self.name = name

            def start(self, ctx):
                pass

            def stop(self, ctx):
                order.append(self.name)

        for name in ("a", "b", "c"):
            fw.install(name, Ordered(name))
            fw.start(name)
        fw.shutdown()
        assert order == ["c", "b", "a"]


class TestBundleContext:
    def test_registrations_tagged_with_bundle(self):
        fw = Framework()
        fw.install("b1", RecordingActivator())
        fw.start("b1")
        ref = fw.registry.get_reference("svc")
        assert ref.property("bundle") == "b1"

    def test_listener_removed_on_stop(self):
        fw = Framework()
        events = []

        class Listening:
            def start(self, ctx):
                ctx.add_service_listener(lambda e: events.append(e))

            def stop(self, ctx):
                pass

        fw.install("b1", Listening())
        fw.start("b1")
        fw.registry.register("x", object())
        count_while_active = len(events)
        fw.stop("b1")
        fw.registry.register("y", object())
        assert len(events) == count_while_active

    def test_context_service_lookup(self):
        fw = Framework()
        fw.registry.register("needed", "dependency")
        captured = {}

        class Consumer:
            def start(self, ctx):
                captured["service"] = ctx.get_service("needed")
                captured["refs"] = ctx.get_references("needed")

            def stop(self, ctx):
                pass

        fw.install("b1", Consumer())
        fw.start("b1")
        assert captured["service"] == "dependency"
        assert len(captured["refs"]) == 1

    def test_bundle_without_activator(self):
        fw = Framework()
        fw.install("plain")
        fw.start("plain")
        assert fw.bundle("plain").state is BundleState.ACTIVE
        fw.stop("plain")
        assert fw.bundle("plain").state is BundleState.STOPPED
