"""Integration tests: observability through the full room-number app.

Drives the Fig. 1 pipeline (GPS strand + WiFi strand -> fusion ->
resolver -> application) through :class:`PerPos` with observability
enabled, and asserts that (a) ``PerPos.trace`` names the actual
source-to-merge path behind a delivered position, and (b) the
infrastructure report embeds the live metrics section.
"""

import pytest

from repro.core import Kind, PerPos, infrastructure_snapshot, render_report
from repro.model.demo import demo_building, demo_radio_environment
from repro.processing.pipelines import build_room_app
from repro.sensors.gps import GpsReceiver, INDOOR, OPEN_SKY
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.sensors.wifi import WifiScanner
from repro.geo.grid import GridPosition


@pytest.fixture(scope="module")
def room_app_run():
    """The room-app walk of ``examples/room_number_app.py``, observed."""
    building = demo_building()
    grid = building.grid
    waypoints = [
        (0.0, -40.0, 7.5),
        (40.0, -2.0, 7.5),
        (55.0, 5.0, 7.5),
        (75.0, 15.0, 7.5),
        (95.0, 15.0, 12.0),
        (150.0, 15.0, 12.0),
    ]
    trajectory = WaypointTrajectory(
        [
            Waypoint(t, grid.to_wgs84(GridPosition(x, y)))
            for t, x, y in waypoints
        ]
    )

    def sky(t, position):
        inside = building.contains(grid.to_grid(position))
        return INDOOR if inside else OPEN_SKY

    gps = GpsReceiver("gps-device", trajectory, sky, seed=21)
    wifi = WifiScanner(
        "wifi-device",
        trajectory,
        demo_radio_environment(building),
        grid,
        seed=22,
    )
    middleware = PerPos()
    hub = middleware.enable_observability()
    app = build_room_app(middleware, gps, wifi, building)
    middleware.run_until(150.0)
    return middleware, hub, app


class TestEndToEndTrace:
    def test_room_id_trace_names_source_to_merge_path(self, room_app_run):
        middleware, _hub, app = room_app_run
        datum = app.provider.last_known(Kind.ROOM_ID)
        trace = middleware.trace(datum)
        assert trace is not None
        # Indoors at t=150 the WiFi strand wins the fusion: the trace
        # names the actual path, hop by hop, ending at the resolver that
        # minted the room id.
        assert trace.path == [
            "wifi",
            "wifi-positioning",
            "fusion",
            "resolver",
        ]
        assert trace.path[0] == datum.attribute("perpos.trace").source

    def test_hops_carry_monotonic_timestamps(self, room_app_run):
        middleware, _hub, app = room_app_run
        trace = middleware.trace(app.provider.last_known(Kind.ROOM_ID))
        stamps = [hop.timestamp for hop in trace]
        assert stamps == sorted(stamps)
        assert stamps[-1] <= 150.0

    def test_provider_last_trace_matches_middleware_trace(
        self, room_app_run
    ):
        middleware, _hub, app = room_app_run
        via_provider = app.provider.last_trace(Kind.ROOM_ID)
        via_middleware = middleware.trace(
            app.provider.last_known(Kind.ROOM_ID)
        )
        assert via_provider == via_middleware

    def test_every_trace_is_a_path_in_the_graph(self, room_app_run):
        middleware, _hub, app = room_app_run
        edges = {
            (c.producer, c.consumer)
            for c in middleware.graph.connections()
        }
        for datum in app.provider.sink.received:
            trace = middleware.trace(datum)
            assert trace is not None
            for a, b in zip(trace.path, trace.path[1:]):
                assert (a, b) in edges

    def test_fused_position_traced_to_one_strand(self, room_app_run):
        middleware, _hub, app = room_app_run
        trace = middleware.trace(
            app.provider.last_known(Kind.POSITION_WGS84)
        )
        assert trace.path[-1] == "fusion"
        assert trace.path[0] in ("gps", "wifi")


class TestLiveMetrics:
    def test_report_embeds_live_metrics_section(self, room_app_run):
        middleware, _hub, _app = room_app_run
        report = render_report(middleware)
        assert "live metrics:" in report
        assert "(observability disabled)" not in report
        # Per-component in/out counts appear for pipeline members.
        assert "fusion: in=" in report
        assert "gps-parser: in=" in report

    def test_snapshot_embeds_observability(self, room_app_run):
        middleware, hub, _app = room_app_run
        snapshot = infrastructure_snapshot(middleware)
        observability = snapshot["observability"]
        assert observability is not None
        assert observability["tracing"] is True
        components = observability["components"]
        assert components["fusion"]["items_in"] > 0
        assert components["fusion"]["latency"]["count"] > 0
        assert observability == hub.snapshot()

    def test_report_disabled_marker_without_hub(self):
        middleware = PerPos()
        assert "(observability disabled)" in render_report(middleware)
        assert infrastructure_snapshot(middleware)["observability"] is None

    def test_flow_conservation_across_the_app(self, room_app_run):
        middleware, hub, _app = room_app_run
        stats = hub.component_stats()
        # The application sink consumed no more than the graph produced.
        produced = sum(
            s.get("items_out", 0) for s in stats.values()
        )
        consumed_by_sink = stats["room-app"]["items_in"]
        assert 0 < consumed_by_sink <= produced

    def test_pcl_flow_summary_names_live_paths(self, room_app_run):
        middleware, _hub, _app = room_app_run
        by_path = {
            tuple(row["latest_path"] or ()): row
            for row in middleware.pcl.flow_summary()
        }
        assert ("gps", "gps-parser", "gps-interpreter") in by_path
        assert ("wifi", "wifi-positioning") in by_path

    def test_psl_metrics_reachable_for_all_members(self, room_app_run):
        middleware, _hub, _app = room_app_run
        metrics = middleware.psl.component_metrics()
        for name in (
            "gps",
            "gps-parser",
            "gps-interpreter",
            "wifi",
            "wifi-positioning",
            "fusion",
            "resolver",
            "room-app",
        ):
            assert name in metrics
