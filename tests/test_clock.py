"""Tests for the simulation clock."""

import pytest

from repro.clock import SimulationClock


def test_starts_at_given_time():
    clock = SimulationClock(start=42.0)
    assert clock.now == 42.0


def test_advance_moves_time_forward():
    clock = SimulationClock()
    clock.advance(5.0)
    assert clock.now == 5.0
    clock.advance(0.5)
    assert clock.now == 5.5


def test_advance_rejects_negative():
    clock = SimulationClock()
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_run_until_rejects_past_deadline():
    clock = SimulationClock(start=10.0)
    with pytest.raises(ValueError):
        clock.run_until(5.0)


def test_call_at_fires_in_order():
    clock = SimulationClock()
    fired = []
    clock.call_at(3.0, lambda t: fired.append(("b", t)))
    clock.call_at(1.0, lambda t: fired.append(("a", t)))
    clock.run_until(5.0)
    assert fired == [("a", 1.0), ("b", 3.0)]


def test_call_at_tie_breaks_by_scheduling_order():
    clock = SimulationClock()
    fired = []
    clock.call_at(1.0, lambda t: fired.append("first"))
    clock.call_at(1.0, lambda t: fired.append("second"))
    clock.run_until(2.0)
    assert fired == ["first", "second"]


def test_callback_not_fired_before_due():
    clock = SimulationClock()
    fired = []
    clock.call_at(10.0, lambda t: fired.append(t))
    clock.run_until(9.99)
    assert fired == []
    clock.run_until(10.0)
    assert fired == [10.0]


def test_call_every_periodic_and_cancel():
    clock = SimulationClock()
    fired = []
    cancel = clock.call_every(1.0, lambda t: fired.append(t))
    clock.run_until(3.5)
    assert fired == [1.0, 2.0, 3.0]
    cancel()
    clock.run_until(10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_call_every_with_explicit_start():
    clock = SimulationClock()
    fired = []
    clock.call_every(2.0, lambda t: fired.append(t), start=0.5)
    clock.run_until(5.0)
    assert fired == [0.5, 2.5, 4.5]


def test_call_every_rejects_nonpositive_period():
    clock = SimulationClock()
    with pytest.raises(ValueError):
        clock.call_every(0.0, lambda t: None)


def test_callback_scheduling_more_callbacks():
    clock = SimulationClock()
    fired = []

    def outer(t):
        fired.append(("outer", t))
        clock.call_at(t + 1.0, lambda t2: fired.append(("inner", t2)))

    clock.call_at(1.0, outer)
    clock.run_until(3.0)
    assert fired == [("outer", 1.0), ("inner", 2.0)]


def test_time_visible_inside_callback_is_fire_time():
    clock = SimulationClock()
    seen = []
    clock.call_at(2.5, lambda t: seen.append(clock.now))
    clock.run_until(7.0)
    assert seen == [2.5]
    assert clock.now == 7.0
