"""Tests for the transportation-mode reasoning pipeline (§1 use case)."""

import pytest

from repro.core import Kind, PerPos
from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.geo.wgs84 import Wgs84Position
from repro.processing.pipelines import build_gps_pipeline
from repro.reasoning.classifier import (
    MODES,
    DecisionTreeClassifierComponent,
    ModeEstimate,
    TransportMode,
    classify,
)
from repro.reasoning.features import (
    FeatureExtractorComponent,
    SegmentFeatures,
    extract_features,
)
from repro.reasoning.hmm import HmmSmootherComponent, sticky_transition_matrix
from repro.reasoning.pipeline import build_mode_pipeline
from repro.reasoning.segmentation import Segment, SegmenterComponent
from repro.reasoning.workload import (
    ModalPhase,
    build_modal_trajectory,
    default_journey,
)
from repro.sensors.gps import GpsReceiver

START = Wgs84Position(56.17, 10.19)


def positions_at_speed(speed_mps, count=31, dt=1.0):
    """A straight track at constant speed with timestamps."""
    out = []
    here = START
    for i in range(count):
        out.append(
            Wgs84Position(
                here.latitude_deg, here.longitude_deg, timestamp=i * dt
            )
        )
        here = here.moved(90.0, speed_mps * dt)
    return tuple(out)


class TestSegmenter:
    def wire(self, window_s=30.0, min_positions=3):
        graph = ProcessingGraph()
        source = SourceComponent("pos", (Kind.POSITION_WGS84,))
        segmenter = SegmenterComponent(
            window_s=window_s, min_positions=min_positions
        )
        sink = ApplicationSink("app", (Kind.SEGMENT,))
        for c in (source, segmenter, sink):
            graph.add(c)
        graph.connect("pos", segmenter.name)
        graph.connect(segmenter.name, "app")
        return source, segmenter, sink

    def feed(self, source, times):
        for t in times:
            source.inject(
                Datum(
                    Kind.POSITION_WGS84,
                    Wgs84Position(56.17, 10.19, timestamp=t),
                    t,
                )
            )

    def test_window_emitted_when_passed(self):
        source, _seg, sink = self.wire(window_s=10.0)
        self.feed(source, [0.0, 3.0, 6.0, 9.0, 12.0])
        assert len(sink.received) == 1
        segment = sink.received[0].payload
        assert segment.start_time == 0.0
        assert segment.end_time == 10.0
        assert len(segment) == 4

    def test_sparse_window_dropped(self):
        source, seg, sink = self.wire(window_s=10.0, min_positions=3)
        self.feed(source, [0.0, 12.0, 14.0, 16.0, 22.0])
        # First window had one position: dropped, counted.
        assert seg.windows_dropped == 1
        assert len(sink.received) == 1

    def test_long_gap_advances_multiple_windows(self):
        source, _seg, sink = self.wire(window_s=10.0, min_positions=2)
        self.feed(source, [0.0, 2.0, 4.0, 35.0])
        assert len(sink.received) == 1  # only the first window had data

    def test_validation(self):
        with pytest.raises(ValueError):
            SegmenterComponent(window_s=0.0)


class TestFeatureExtraction:
    def test_constant_speed_features(self):
        segment = Segment(0.0, 30.0, positions_at_speed(2.0))
        features = extract_features(segment)
        assert features.mean_speed_mps == pytest.approx(2.0, rel=0.01)
        assert features.speed_stddev == pytest.approx(0.0, abs=0.01)
        assert features.stop_fraction == 0.0
        assert features.heading_change_rate_deg_s == pytest.approx(
            0.0, abs=0.05
        )

    def test_stationary_features(self):
        segment = Segment(0.0, 30.0, positions_at_speed(0.0))
        features = extract_features(segment)
        assert features.mean_speed_mps == pytest.approx(0.0, abs=1e-6)
        assert features.stop_fraction == 1.0

    def test_requires_two_positions(self):
        segment = Segment(0.0, 30.0, positions_at_speed(1.0, count=1))
        with pytest.raises(ValueError):
            extract_features(segment)

    def test_component_skips_tiny_segments(self):
        graph = ProcessingGraph()
        source = SourceComponent("seg", (Kind.SEGMENT,))
        extractor = FeatureExtractorComponent()
        sink = ApplicationSink("app", (Kind.SEGMENT_FEATURES,))
        for c in (source, extractor, sink):
            graph.add(c)
        graph.connect("seg", extractor.name)
        graph.connect(extractor.name, "app")
        source.inject(
            Datum(
                Kind.SEGMENT,
                Segment(0.0, 30.0, positions_at_speed(1.0, count=1)),
                30.0,
            )
        )
        assert sink.received == []


class TestClassifier:
    def features(self, mean, peak=None, stops=0.0):
        return SegmentFeatures(
            start_time=0.0,
            end_time=30.0,
            mean_speed_mps=mean,
            max_speed_mps=peak if peak is not None else mean * 1.3,
            speed_stddev=0.2,
            heading_change_rate_deg_s=1.0,
            stop_fraction=stops,
        )

    @pytest.mark.parametrize(
        "speed,expected",
        [
            (0.1, TransportMode.STILL),
            (1.4, TransportMode.WALK),
            (4.5, TransportMode.BIKE),
            (13.0, TransportMode.VEHICLE),
        ],
    )
    def test_characteristic_speeds(self, speed, expected):
        assert classify(self.features(speed)).mode == expected

    def test_high_stop_fraction_is_still(self):
        estimate = classify(self.features(1.0, stops=0.9))
        assert estimate.mode == TransportMode.STILL

    def test_scores_normalised(self):
        estimate = classify(self.features(4.5))
        assert sum(estimate.scores) == pytest.approx(1.0)
        assert all(s > 0 for s in estimate.scores)

    def test_ambiguity_between_bike_and_vehicle(self):
        estimate = classify(self.features(6.0, peak=10.0))
        assert estimate.score_of(TransportMode.VEHICLE) > 0.1
        assert estimate.mode == TransportMode.BIKE


class TestHmm:
    def estimate(self, mode, confidence=0.9):
        rest = (1.0 - confidence) / (len(MODES) - 1)
        scores = tuple(
            confidence if m is mode else rest for m in MODES
        )
        return ModeEstimate(0.0, 30.0, mode, scores)

    def wire(self, stay=0.85):
        graph = ProcessingGraph()
        source = SourceComponent("est", (Kind.TRANSPORT_MODE,))
        hmm = HmmSmootherComponent(stay_probability=stay)
        sink = ApplicationSink("app", (Kind.TRANSPORT_MODE,))
        for c in (source, hmm, sink):
            graph.add(c)
        graph.connect("est", hmm.name)
        graph.connect(hmm.name, "app")
        return source, hmm, sink

    def test_transition_matrix_rows_sum_to_one(self):
        matrix = sticky_transition_matrix(0.8)
        for row in matrix:
            assert sum(row) == pytest.approx(1.0)

    def test_transition_validation(self):
        with pytest.raises(ValueError):
            sticky_transition_matrix(1.5)

    def test_single_flicker_suppressed(self):
        source, _hmm, sink = self.wire(stay=0.9)
        sequence = [TransportMode.WALK] * 4 + [TransportMode.BIKE] + [
            TransportMode.WALK
        ] * 4
        for i, mode in enumerate(sequence):
            source.inject(
                Datum(
                    Kind.TRANSPORT_MODE,
                    self.estimate(mode, confidence=0.6),
                    float(i),
                )
            )
        smoothed = [d.payload.mode for d in sink.received]
        assert TransportMode.BIKE not in smoothed

    def test_sustained_change_accepted(self):
        source, _hmm, sink = self.wire(stay=0.9)
        sequence = [TransportMode.WALK] * 4 + [TransportMode.VEHICLE] * 6
        for i, mode in enumerate(sequence):
            source.inject(
                Datum(
                    Kind.TRANSPORT_MODE,
                    self.estimate(mode, confidence=0.85),
                    float(i),
                )
            )
        assert sink.received[-1].payload.mode == TransportMode.VEHICLE

    def test_smoothed_flag_set(self):
        source, _hmm, sink = self.wire()
        source.inject(
            Datum(
                Kind.TRANSPORT_MODE,
                self.estimate(TransportMode.WALK),
                0.0,
            )
        )
        assert sink.received[0].attributes["smoothed"] is True

    def test_reset_forgets_history(self):
        source, hmm, _sink = self.wire()
        source.inject(
            Datum(
                Kind.TRANSPORT_MODE,
                self.estimate(TransportMode.VEHICLE),
                0.0,
            )
        )
        assert hmm.current_belief() is not None
        hmm.reset()
        assert hmm.current_belief() is None


class TestWorkload:
    def test_phase_boundaries_respected(self):
        phases = [
            ModalPhase(TransportMode.STILL, 60.0),
            ModalPhase(TransportMode.VEHICLE, 60.0),
        ]
        trajectory, true_mode = build_modal_trajectory(phases, START, seed=1)
        assert true_mode(30.0) == TransportMode.STILL
        assert true_mode(90.0) == TransportMode.VEHICLE
        assert true_mode(10_000.0) == TransportMode.VEHICLE

    def test_modal_speeds_roughly_match(self):
        phases = [ModalPhase(TransportMode.VEHICLE, 120.0)]
        trajectory, _ = build_modal_trajectory(phases, START, seed=2)
        speed = trajectory.speed_at(60.0)
        assert 8.0 < speed < 18.0

    def test_empty_journey_rejected(self):
        with pytest.raises(ValueError):
            build_modal_trajectory([], START)


class TestEndToEnd:
    def test_full_pipeline_on_clean_gps(self):
        trajectory, true_mode = build_modal_trajectory(
            default_journey(), START, seed=3
        )
        middleware = PerPos()
        gps = GpsReceiver("gps", trajectory, seed=5)
        pipe = build_gps_pipeline(middleware, gps, prefix="gps")
        mode_pipe = build_mode_pipeline(
            middleware, pipe.interpreter, provider_name="modes"
        )
        estimates = []
        mode_pipe.provider.add_listener(
            lambda d: estimates.append(d.payload),
            kind=Kind.TRANSPORT_MODE,
        )
        middleware.run_until(trajectory.duration())
        assert len(estimates) >= 30
        correct = sum(
            1
            for e in estimates
            if e.mode == true_mode((e.start_time + e.end_time) / 2)
        )
        assert correct / len(estimates) > 0.9
        # The whole reasoning chain is reified in the PSL view.
        structure = middleware.psl.structure()
        for stage in ("modes-segmenter", "modes-features",
                      "modes-classifier", "modes-hmm"):
            assert stage in structure
