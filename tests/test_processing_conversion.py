"""Tests for the coordinate-conversion processing step."""

import pytest

from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum, Kind
from repro.core.graph import ProcessingGraph
from repro.geo.grid import GridPosition
from repro.geo.transforms import TransformError
from repro.model.demo import demo_building
from repro.processing.conversion import (
    CoordinateConverterComponent,
    grid_system,
    standard_registry,
)


@pytest.fixture(scope="module")
def building():
    return demo_building()


@pytest.fixture(scope="module")
def registry(building):
    return standard_registry(building)


class TestStandardRegistry:
    def test_grid_conversions_registered(self, building, registry):
        assert registry.path("wgs84", "grid:hopper") == [
            "wgs84",
            "grid:hopper",
        ]
        assert registry.path("grid:hopper", "wgs84") == [
            "grid:hopper",
            "wgs84",
        ]

    def test_roundtrip_through_registry(self, building, registry):
        original = GridPosition(12.0, 7.0)
        wgs = registry.convert(original, "grid:hopper", "wgs84")
        back = registry.convert(wgs, "wgs84", "grid:hopper")
        assert back.x_m == pytest.approx(12.0, abs=1e-6)
        assert back.y_m == pytest.approx(7.0, abs=1e-6)

    def test_grid_system_naming(self, building):
        assert grid_system(building).name == "grid:hopper"


class TestConverterComponent:
    def wire(self, building, registry):
        graph = ProcessingGraph()
        source = SourceComponent("grid-src", (Kind.POSITION_GRID,))
        converter = CoordinateConverterComponent(
            registry,
            source="grid:hopper",
            target="wgs84",
            in_kind=Kind.POSITION_GRID,
            out_kind=Kind.POSITION_WGS84,
        )
        sink = ApplicationSink("app", (Kind.POSITION_WGS84,))
        for c in (source, converter, sink):
            graph.add(c)
        graph.connect("grid-src", converter.name)
        graph.connect(converter.name, "app")
        return source, converter, sink

    def test_converts_and_rekinds(self, building, registry):
        source, converter, sink = self.wire(building, registry)
        source.inject(
            Datum(Kind.POSITION_GRID, GridPosition(20.0, 7.5), 1.0)
        )
        out = sink.last()
        assert out.kind == Kind.POSITION_WGS84
        assert out.attributes["converted_from"] == "grid:hopper"
        back = building.grid.to_grid(out.payload)
        assert back.x_m == pytest.approx(20.0, abs=1e-6)
        assert converter.converted == 1

    def test_default_name_and_description(self, building, registry):
        converter = CoordinateConverterComponent(
            registry,
            "grid:hopper",
            "wgs84",
            Kind.POSITION_GRID,
            Kind.POSITION_WGS84,
        )
        assert converter.name == "convert-grid:hopper-to-wgs84"
        assert converter.describe_conversion() == "grid:hopper -> wgs84"

    def test_missing_conversion_fails_at_construction(self, registry):
        with pytest.raises(TransformError):
            CoordinateConverterComponent(
                registry,
                "wgs84",
                "mars",
                Kind.POSITION_WGS84,
                Kind.POSITION_GRID,
            )
