"""Property tests: isolation is exact non-interference (hypothesis).

The supervision contract under the ``isolate`` policy is that a failing
component is contained at its own delivery boundary: every *other*
consumer must receive exactly the deliveries -- same payloads, same
order -- it would have received in a fault-free run of the same traffic.
These tests drive randomly generated fan-out topologies and failure
patterns through the real graph twice (faulty + supervised vs clean +
unsupervised) and compare the two runs consumer by consumer.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.robustness import SupervisionPolicy, Supervisor

scenarios = st.fixed_dictionaries(
    {
        # Sibling strands next to the faulty component; each is either
        # a bare sink or a stage -> sink chain (exercising downstream
        # hops that must also stay untouched).
        "siblings": st.lists(st.booleans(), min_size=1, max_size=4),
        # Which of the injected datums the faulty component raises on.
        "fail_pattern": st.lists(st.booleans(), min_size=1, max_size=20),
    }
)


def run_traffic(siblings, fail_pattern, faulty, policy):
    """Build src -> [fault, strand...] and push one datum per pattern.

    ``faulty`` switches the failure injection on; ``policy`` (or None)
    installs a supervisor.  Returns the payload lists every non-failing
    sink received, keyed by sink name.
    """
    graph = ProcessingGraph()
    source = SourceComponent("src", ("x",))
    graph.add(source)

    index = {"i": -1}

    def fault_fn(datum):
        index["i"] += 1
        if faulty and fail_pattern[index["i"]]:
            raise RuntimeError(f"injected #{index['i']}")
        return datum

    fault = FunctionComponent("fault", ("x",), ("x",), fn=fault_fn)
    graph.add(fault)
    graph.connect("src", "fault")
    fault_sink = ApplicationSink("fault-sink", ("x",))
    graph.add(fault_sink)
    graph.connect("fault", "fault-sink")

    sinks = []
    for i, chained in enumerate(siblings):
        sink = ApplicationSink(f"sink{i}", ("x",))
        graph.add(sink)
        if chained:
            stage = FunctionComponent(
                f"stage{i}", ("x",), ("x",), fn=lambda d: d
            )
            graph.add(stage)
            graph.connect("src", f"stage{i}")
            graph.connect(f"stage{i}", f"sink{i}")
        else:
            graph.connect("src", f"sink{i}")
        sinks.append(sink)

    supervisor = None
    if policy is not None:
        supervisor = Supervisor(policy)
        graph.set_supervisor(supervisor)

    for i in range(len(fail_pattern)):
        source.inject(Datum("x", i, float(i)))

    received = {
        sink.name: [d.payload for d in sink.received] for sink in sinks
    }
    received["fault-sink"] = [d.payload for d in fault_sink.received]
    return received, supervisor


@pytest.mark.chaos
class TestIsolationNonInterference:
    @settings(max_examples=60, deadline=None)
    @given(scenario=scenarios)
    def test_isolate_preserves_sibling_deliveries_exactly(self, scenario):
        siblings = scenario["siblings"]
        pattern = scenario["fail_pattern"]
        clean, _ = run_traffic(siblings, pattern, faulty=False, policy=None)
        faulty, supervisor = run_traffic(
            siblings,
            pattern,
            faulty=True,
            policy=SupervisionPolicy(mode="isolate"),
        )
        n_failures = sum(pattern)
        # Every sibling sink (and its intermediate stage) received
        # exactly the fault-free delivery sequence.
        for name, payloads in clean.items():
            if name == "fault-sink":
                continue
            assert faulty[name] == payloads
        # The faulty component's own downstream misses exactly the
        # failed datums, in order.
        expected_through = [
            i for i, fails in enumerate(pattern) if not fails
        ]
        assert faulty["fault-sink"] == expected_through
        assert supervisor.failure_count("fault") == n_failures
        assert len(supervisor.failure_records("fault")) == min(
            n_failures, supervisor.policy.max_records
        )

    @settings(max_examples=30, deadline=None)
    @given(scenario=scenarios)
    def test_isolate_equals_clean_run_when_nothing_fails(self, scenario):
        siblings = scenario["siblings"]
        pattern = [False] * len(scenario["fail_pattern"])
        clean, _ = run_traffic(siblings, pattern, faulty=False, policy=None)
        supervised, supervisor = run_traffic(
            siblings,
            pattern,
            faulty=True,
            policy=SupervisionPolicy(mode="isolate"),
        )
        assert supervised == clean
        assert supervisor.failure_records() == []
