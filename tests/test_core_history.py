"""Tests for the track-history service."""

import pytest

from repro.core.component import ApplicationSink, SourceComponent
from repro.core.data import Datum, Kind
from repro.core.graph import ProcessingGraph
from repro.core.history import TrackHistoryService, TrackPoint
from repro.core.pcl import ProcessChannelLayer
from repro.core.positioning import LocationProvider
from repro.geo.wgs84 import Wgs84Position

HOME = Wgs84Position(56.17, 10.19)


def filled_service(n=10, spacing_m=10.0, dt=1.0):
    service = TrackHistoryService()
    here = HOME
    for i in range(n):
        service.append("walker", i * dt, here)
        here = here.moved(90.0, spacing_m)
    return service


class TestIngestion:
    def test_append_and_latest(self):
        service = filled_service(3)
        latest = service.latest("walker")
        assert latest.timestamp == 2.0
        assert service.size("walker") == 3

    def test_unknown_track(self):
        with pytest.raises(KeyError):
            filled_service().size("ghost")

    def test_out_of_order_points_inserted_in_place(self):
        service = filled_service(3)
        service.append("walker", 0.5, HOME)
        times = [p.timestamp for p in service.trace("walker")]
        assert times == [0.0, 0.5, 1.0, 2.0]
        assert service.out_of_order == 1

    def test_retention_bound(self):
        service = TrackHistoryService(retention=5)
        for i in range(12):
            service.append("t", float(i), HOME)
        assert service.size("t") == 5
        assert service.trace("t")[0].timestamp == 7.0

    def test_retention_validation(self):
        with pytest.raises(ValueError):
            TrackHistoryService(retention=0)

    def test_follow_provider(self):
        graph = ProcessingGraph()
        source = SourceComponent("src", (Kind.POSITION_WGS84,))
        sink = ApplicationSink("app", (Kind.POSITION_WGS84,))
        graph.add(source)
        graph.add(sink)
        graph.connect("src", "app")
        provider = LocationProvider(
            "app", sink, ProcessChannelLayer(graph)
        )
        service = TrackHistoryService()
        track = service.follow_provider(provider)
        assert track == "app"
        source.inject(Datum(Kind.POSITION_WGS84, HOME, 1.0, "src"))
        assert service.size("app") == 1
        service.close()
        source.inject(Datum(Kind.POSITION_WGS84, HOME, 2.0, "src"))
        assert service.size("app") == 1


class TestQueries:
    def test_trace_window(self):
        service = filled_service(10)
        window = service.trace("walker", 2.0, 5.0)
        assert [p.timestamp for p in window] == [2.0, 3.0, 4.0, 5.0]

    def test_trace_open_ended(self):
        service = filled_service(4)
        assert len(service.trace("walker")) == 4
        assert len(service.trace("walker", start=2.5)) == 1

    def test_distance_travelled(self):
        service = filled_service(5, spacing_m=10.0)
        assert service.distance_travelled("walker") == pytest.approx(
            40.0, rel=1e-3
        )

    def test_distance_over_window(self):
        service = filled_service(5, spacing_m=10.0)
        assert service.distance_travelled(
            "walker", 1.0, 3.0
        ) == pytest.approx(20.0, rel=1e-3)

    def test_average_speed(self):
        service = filled_service(5, spacing_m=10.0, dt=2.0)
        assert service.average_speed("walker") == pytest.approx(
            5.0, rel=1e-3
        )

    def test_average_speed_undefined_cases(self):
        service = TrackHistoryService()
        service.append("t", 0.0, HOME)
        assert service.average_speed("t") is None
        service.append("t", 0.0, HOME)  # same timestamp: zero elapsed
        assert service.average_speed("t") is None

    def test_bounding_box(self):
        service = filled_service(5, spacing_m=100.0)
        box = service.bounding_box("walker")
        assert box is not None
        min_lat, min_lon, max_lat, max_lon = box
        assert max_lon > min_lon
        assert max_lat >= min_lat

    def test_bounding_box_empty_track(self):
        service = TrackHistoryService()
        service._tracks["empty"] = []
        assert service.bounding_box("empty") is None

    def test_position_at(self):
        service = filled_service(5)
        at = service.position_at("walker", 2.7)
        expected = service.trace("walker", 2.0, 2.0)[0].position
        assert at == expected
        assert service.position_at("walker", -1.0) is None

    def test_tracks_listing(self):
        service = filled_service()
        service.append("another", 0.0, HOME)
        assert service.tracks() == ["another", "walker"]
