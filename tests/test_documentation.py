"""Documentation invariants: every public item carries a docstring.

The reproduction promises doc comments on every public item; this test
walks the installed package and enforces it, so documentation rot fails
the suite like any other regression.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition
        yield name, member


def test_every_module_has_a_docstring():
    undocumented = [
        module.__name__
        for module in iter_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert undocumented == []


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in iter_modules():
        for name, member in public_members(module):
            if not (inspect.getdoc(member) or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def test_public_methods_of_core_classes_documented():
    """Spot-stricter rule for the middleware's main entry points."""
    from repro.core.channel import Channel, ChannelFeature
    from repro.core.component import ProcessingComponent
    from repro.core.graph import ProcessingGraph
    from repro.core.middleware import PerPos
    from repro.core.pcl import ProcessChannelLayer
    from repro.core.positioning import LocationProvider, PositioningLayer
    from repro.core.psl import ProcessStructureLayer

    undocumented = []
    for cls in (
        ProcessingComponent,
        ProcessingGraph,
        Channel,
        ChannelFeature,
        ProcessStructureLayer,
        ProcessChannelLayer,
        PositioningLayer,
        LocationProvider,
        PerPos,
    ):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            if not (inspect.getdoc(member) or "").strip():
                undocumented.append(f"{cls.__name__}.{name}")
    assert undocumented == []
