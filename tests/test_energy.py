"""Tests for the energy model and the EnTracked re-implementation (§3.3)."""

import pytest

from repro.energy.entracked import (
    EnTrackedChannelFeature,
    EnTrackedSystem,
    PowerStrategyFeature,
    SensorWrapperComponent,
)
from repro.energy.power import DeviceEnergyModel, PowerConstants
from repro.geo.wgs84 import Wgs84Position
from repro.sensors.trajectory import (
    RandomWalkTrajectory,
    StationaryTrajectory,
)

START = Wgs84Position(56.17, 10.19)


class TestDeviceEnergyModel:
    def test_gps_off_consumes_nothing_gpswise(self):
        model = DeviceEnergyModel(accelerometer_on=False)
        model.advance(100.0)
        assert model.total_joules() == 0.0

    def test_tracking_power_integrated(self):
        constants = PowerConstants(gps_acquisition_time_s=0.0)
        model = DeviceEnergyModel(constants, accelerometer_on=False)
        model.gps_on(0.0)
        model.advance(100.0)
        assert model.breakdown()["gps"] == pytest.approx(
            100.0 * constants.gps_tracking_w
        )

    def test_acquisition_phase_more_expensive(self):
        constants = PowerConstants(gps_acquisition_time_s=10.0)
        model = DeviceEnergyModel(constants, accelerometer_on=False)
        model.gps_on(0.0)
        model.advance(10.0)
        acquiring = model.breakdown()["gps"]
        assert acquiring == pytest.approx(10.0 * constants.gps_acquiring_w)
        model.advance(20.0)
        tracking_extra = model.breakdown()["gps"] - acquiring
        assert tracking_extra == pytest.approx(
            10.0 * constants.gps_tracking_w
        )

    def test_acquisition_boundary_split_in_one_advance(self):
        constants = PowerConstants(gps_acquisition_time_s=5.0)
        model = DeviceEnergyModel(constants, accelerometer_on=False)
        model.gps_on(0.0)
        model.advance(10.0)  # 5 s acquiring + 5 s tracking
        expected = 5.0 * constants.gps_acquiring_w + 5.0 * constants.gps_tracking_w
        assert model.breakdown()["gps"] == pytest.approx(expected)
        assert model.gps_state == DeviceEnergyModel.GPS_TRACKING

    def test_gps_ready_after_acquisition(self):
        model = DeviceEnergyModel()
        model.gps_on(0.0)
        assert not model.gps_ready(1.0)
        assert model.gps_ready(6.0)
        model.gps_off(7.0)
        assert not model.gps_ready(8.0)

    def test_transmission_costs(self):
        constants = PowerConstants(radio_burst_j=2.0, radio_j_per_kb=1.0)
        model = DeviceEnergyModel(constants, accelerometer_on=False)
        model.record_transmission(1024)
        assert model.breakdown()["radio"] == pytest.approx(3.0)
        assert model.transmissions == 1

    def test_accelerometer_always_on(self):
        model = DeviceEnergyModel()
        model.advance(100.0)
        assert model.breakdown()["accelerometer"] == pytest.approx(
            100.0 * PowerConstants().accelerometer_w
        )

    def test_backwards_time_rejected(self):
        model = DeviceEnergyModel()
        model.advance(10.0)
        with pytest.raises(ValueError):
            model.advance(5.0)

    def test_acquisition_counter(self):
        model = DeviceEnergyModel()
        model.gps_on(0.0)
        model.gps_off(10.0)
        model.gps_on(20.0)
        assert model.acquisitions == 2


class TestPowerStrategy:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerStrategyFeature(threshold_m=0.0)
        with pytest.raises(ValueError):
            PowerStrategyFeature().set_mode("warp")

    def test_continuous_mode_always_on(self):
        strategy = PowerStrategyFeature(mode="continuous")
        strategy.notify_fix_sent(0.0)
        assert strategy.gps_should_be_on(1.0)

    def test_initial_fix_always_wanted(self):
        strategy = PowerStrategyFeature(mode="entracked")
        assert strategy.gps_should_be_on(0.0)

    def test_sleep_after_fix_scales_with_threshold(self):
        fast = PowerStrategyFeature(threshold_m=10.0)
        slow = PowerStrategyFeature(threshold_m=100.0)
        for s in (fast, slow):
            s.update_speed(1.0)
            s.notify_fix_sent(0.0)
        # fast threshold wakes earlier
        assert fast._next_fix_time < slow._next_fix_time

    def test_stationary_gates_gps_off(self):
        strategy = PowerStrategyFeature()
        strategy.notify_fix_sent(0.0)
        strategy.set_moving(False, 1.0)
        assert not strategy.gps_should_be_on(1000.0)

    def test_wake_on_motion(self):
        strategy = PowerStrategyFeature()
        strategy.notify_fix_sent(0.0)
        strategy.set_moving(False, 1.0)
        strategy.set_moving(True, 50.0)
        assert strategy.gps_should_be_on(50.0)

    def test_threshold_setter(self):
        strategy = PowerStrategyFeature(threshold_m=10.0)
        strategy.set_threshold(75.0)
        assert strategy.get_threshold() == 75.0
        with pytest.raises(ValueError):
            strategy.set_threshold(-5.0)


def run_system(mode, threshold=50.0, duration=900.0, seed=2):
    trajectory = RandomWalkTrajectory(
        START, duration, seed=7, pause_probability=0.25, pause_s=40.0
    )
    system = EnTrackedSystem(
        trajectory, threshold_m=threshold, mode=mode, seed=seed
    )
    return system.run(duration)


class TestEnTrackedSystem:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            EnTrackedSystem(
                StationaryTrajectory(START, 10.0), mode="quantum"
            )

    def test_periodic_baseline_tracks_continuously(self):
        result = run_system("periodic", duration=300.0)
        assert result.gps_on_fraction > 0.9
        assert result.positions_reported > 250
        assert result.mean_error_m < 20.0

    def test_entracked_saves_energy(self):
        periodic = run_system("periodic", duration=600.0)
        entracked = run_system("entracked", duration=600.0)
        assert entracked.energy_j < periodic.energy_j * 0.5
        assert entracked.transmissions < periodic.transmissions * 0.5

    def test_entracked_error_bounded_reasonably(self):
        result = run_system("entracked", threshold=50.0, duration=900.0)
        # The paper's scheme bounds error near the threshold (acquisition
        # lag and detection delay allow modest overshoot).
        assert result.mean_error_m < 50.0
        assert result.positions_reported > 0

    def test_tighter_threshold_costs_more_energy(self):
        tight = run_system("entracked", threshold=10.0, duration=900.0)
        loose = run_system("entracked", threshold=150.0, duration=900.0)
        assert tight.energy_j > loose.energy_j
        assert tight.transmissions >= loose.transmissions

    def test_stationary_target_nearly_free(self):
        trajectory = StationaryTrajectory(START, 900.0)
        system = EnTrackedSystem(
            trajectory, threshold_m=50.0, mode="entracked", seed=1
        )
        result = system.run(900.0)
        # After the initial fix the accelerometer keeps the GPS off.
        assert result.gps_on_fraction < 0.1
        assert result.mean_error_m < 30.0

    def test_control_traffic_flows_server_to_mobile(self):
        trajectory = RandomWalkTrajectory(START, 300.0, seed=7)
        system = EnTrackedSystem(
            trajectory, threshold_m=25.0, mode="entracked", seed=2
        )
        system.run(300.0)
        # The EnTracked channel feature drives the strategy through the
        # remote proxy: control messages appear on the server->mobile link.
        assert system.network.message_count(source="server") > 0

    def test_wrapper_forward_rate_reflects_duty_cycle(self):
        trajectory = RandomWalkTrajectory(START, 300.0, seed=7)
        system = EnTrackedSystem(
            trajectory, threshold_m=100.0, mode="entracked", seed=2
        )
        system.run(300.0)
        assert system.wrapper.forward_rate() < 0.5

    def test_entracked_feature_tracks_violations(self):
        feature_states = run_system("entracked", threshold=10.0, duration=600.0)
        assert feature_states is not None  # run completed


class TestSensorWrapperUnit:
    def test_without_strategy_forwards_everything(self):
        from repro.core.component import ApplicationSink, SourceComponent
        from repro.core.data import Datum, Kind
        from repro.core.graph import ProcessingGraph

        graph = ProcessingGraph()
        source = SourceComponent("gps", (Kind.NMEA_RAW,))
        wrapper = SensorWrapperComponent()
        sink = ApplicationSink("app", (Kind.NMEA_RAW,))
        for c in (source, wrapper, sink):
            graph.add(c)
        graph.connect("gps", wrapper.name, "gps")
        graph.connect(wrapper.name, "app")
        source.inject(Datum(Kind.NMEA_RAW, "$frag", 0.0))
        assert len(sink.received) == 1
        assert wrapper.forward_rate() == 1.0
