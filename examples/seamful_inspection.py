#!/usr/bin/env python3
"""Seamful design for developers: a tour of PerPos translucency (§2, §4).

Demonstrates the adaptation and inspection surface the paper's three
requirements ask for, using only public middleware API -- no middleware
source is touched:

1. structural reflection: walk the reified process, list component
   methods, render the three layer views;
2. runtime adaptation: attach the NumberOfSatellites Component Feature
   and splice the satellite filter into the live pipeline (§3.1);
3. state manipulation: tune the filter threshold through the PSL's
   reflective method invocation;
4. logical time: render the data tree behind one delivered position
   (Fig. 4) through a Channel Feature.

Run:  python examples/seamful_inspection.py
"""

from repro.core import ChannelFeature, Kind, PerPos
from repro.geo.wgs84 import Wgs84Position
from repro.processing.filters import SatelliteFilterComponent
from repro.processing.gps_features import NumberOfSatellitesFeature
from repro.processing.pipelines import build_gps_pipeline
from repro.sensors.gps import GpsReceiver, SUBURBAN, constant_environment
from repro.sensors.trajectory import Waypoint, WaypointTrajectory


class DataTreePrinter(ChannelFeature):
    """A tiny Channel Feature that renders the first few data trees."""

    name = "DataTreePrinter"

    def __init__(self, limit=2):
        super().__init__()
        self.limit = limit
        self.printed = 0

    def apply(self, data_tree):
        if self.printed >= self.limit:
            return
        self.printed += 1
        print(f"\ndata tree behind delivered position #{self.printed} "
              f"(Fig. 4 format):")
        print(data_tree.render())


def main() -> None:
    start = Wgs84Position(56.1718, 10.1903)
    trajectory = WaypointTrajectory(
        [Waypoint(0.0, start), Waypoint(120.0, start.moved(90.0, 150.0))]
    )
    middleware = PerPos()
    gps = GpsReceiver(
        "gps-device", trajectory, constant_environment(SUBURBAN), seed=5
    )
    pipeline = build_gps_pipeline(middleware, gps)
    provider = middleware.create_provider(
        "inspector-app", accepts=(Kind.POSITION_WGS84,)
    )
    middleware.graph.connect(pipeline.interpreter, provider.sink.name)

    psl, pcl = middleware.psl, middleware.pcl

    print("1. STRUCTURAL REFLECTION")
    print("components:", psl.components())
    print("\nstructure:")
    print(psl.structure())
    print("\nparser description:")
    for key, value in psl.describe(pipeline.parser).items():
        print(f"  {key}: {value}")

    print("\n2. RUNTIME ADAPTATION (the §3.1 satellite filter)")
    psl.attach_feature(pipeline.parser, NumberOfSatellitesFeature())
    print("attached NumberOfSatellites; parser now provides:",
          psl.describe(pipeline.parser)["features"])
    satellite_filter = SatelliteFilterComponent(min_satellites=5)
    psl.insert_between(
        pipeline.parser, pipeline.interpreter, satellite_filter
    )
    print("spliced satellite-filter into the live pipeline:")
    print(psl.structure())

    print("\n3. STATE MANIPULATION THROUGH REFLECTION")
    print("filter methods:", psl.methods_of(satellite_filter.name))
    print("threshold before:",
          psl.invoke(satellite_filter.name, "get_threshold"))
    psl.invoke(satellite_filter.name, "set_threshold", 6)
    print("threshold after :",
          psl.invoke(satellite_filter.name, "get_threshold"))

    print("\n4. LOGICAL TIME: channel view and data trees")
    print("channels:")
    print(pcl.render())
    channel = pcl.channels_into(provider.sink.name)[0]
    channel.attach_feature(DataTreePrinter())

    middleware.run_until(30.0)

    print(f"\nfilter verdict so far: passed={satellite_filter.passed}, "
          f"rejected={satellite_filter.rejected}")
    sats = psl.invoke(
        pipeline.parser, "NumberOfSatellites.get_number_of_satellites"
    )
    print(f"latest satellite count via feature state: {sats}")
    print(f"provider features visible at the top layer: "
          f"{provider.available_features()}")


if __name__ == "__main__":
    main()
