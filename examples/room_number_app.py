#!/usr/bin/env python3
"""The Room Number Application of paper Fig. 1.

"Imagine a simple location aware application that shows the current
position as a point on a map when outdoor and highlights the currently
occupied room when within a building."

A walker approaches the demo office building, enters through the west
entrance, follows the corridor and settles in office N2.  GPS degrades
indoors, the WiFi fingerprint engine takes over via the fusion component,
and the Resolver turns fused positions into room ids.  The script prints
the three PerPos abstraction layers (Fig. 2) and the room transitions the
application observes.

Run:  python examples/room_number_app.py
"""

from repro.core import Kind, PerPos
from repro.geo.grid import GridPosition
from repro.model.demo import demo_building, demo_radio_environment
from repro.processing.pipelines import build_room_app
from repro.sensors.gps import GpsReceiver, INDOOR, OPEN_SKY
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.sensors.wifi import WifiScanner


def build_walk(building):
    """Outside -> entrance -> corridor -> office N2 -> stay."""
    grid = building.grid
    waypoints = [
        (0.0, -40.0, 7.5),
        (40.0, -2.0, 7.5),   # approach the west entrance
        (55.0, 5.0, 7.5),    # inside the corridor
        (75.0, 15.0, 7.5),   # walk east along the corridor
        (95.0, 15.0, 12.0),  # turn into office N2
        (150.0, 15.0, 12.0),  # stay in N2
    ]
    return WaypointTrajectory(
        [
            Waypoint(t, grid.to_wgs84(GridPosition(x, y)))
            for t, x, y in waypoints
        ]
    )


def main() -> None:
    building = demo_building()
    trajectory = build_walk(building)

    def sky(t, position):
        inside = building.contains(building.grid.to_grid(position))
        return INDOOR if inside else OPEN_SKY

    gps = GpsReceiver("gps-device", trajectory, sky, seed=21)
    wifi = WifiScanner(
        "wifi-device",
        trajectory,
        demo_radio_environment(building),
        building.grid,
        seed=22,
    )

    middleware = PerPos()
    app = build_room_app(middleware, gps, wifi, building)

    print("=" * 64)
    print("Positioning process at the three abstraction levels (Fig. 2)")
    print("=" * 64)
    print("\n[Process Structure Layer]  full component tree:")
    print(middleware.psl.structure())
    print("\n[Process Channel Layer]  source-to-merge channels:")
    print(middleware.pcl.render())
    print("\n[Positioning Layer]  providers:")
    for provider in middleware.positioning.providers():
        print(f"  {provider.describe()}")

    # Track room transitions as the application would.
    print("\n" + "=" * 64)
    print("Walking: outside -> entrance -> corridor -> office N2")
    print("=" * 64)
    state = {"room": "<none>"}

    def on_room(datum):
        location = datum.payload
        label = location.room_id if location.is_inside else "outdoors"
        if label != state["room"]:
            state["room"] = label
            print(f"t={datum.timestamp:6.1f}s  now in: {label}")

    app.provider.add_listener(on_room, kind=Kind.ROOM_ID)
    middleware.run_until(150.0)

    final_room = app.provider.last_known(Kind.ROOM_ID).payload
    final_position = app.provider.last_position()
    truth = trajectory.position_at(150.0)
    print(f"\nfinal room: {final_room.room_id}")
    print(
        f"final position error: "
        f"{truth.distance_to(final_position):.1f} m"
    )


if __name__ == "__main__":
    main()
