#!/usr/bin/env python3
"""Scaling out: many tracked targets through one shared pipeline.

Builds the scale-out runtime of ``repro.runtime``: 24 tracked badges
share a single positioning pipeline, each behind its own bounded
ingestion lane.  A weighted fair scheduler drains the lanes on the
simulation clock through the batched dispatch path; one badge is a VIP
with triple weight, one is a chatty sensor tamed by a ``coalesce``
policy, and the rest shed bursts with ``drop_oldest``.  Everything --
queue depths, drop counters, policies -- is inspectable through the PSL
and adaptable while the system runs.

Run:  python examples/scale_demo.py
"""

from repro.core.component import FunctionComponent, SourceComponent
from repro.core.data import Datum
from repro.core.middleware import PerPos
from repro.core.report import render_report
from repro.runtime import BLOCK, COALESCE, WeightedScheduler

N_BADGES = 24
BURST = 12  # readings per badge per round; lanes hold at most 8


def main() -> None:
    middleware = PerPos()
    middleware.enable_observability(tracing=False)

    # One shared pipeline: src -> smooth -> app.
    graph = middleware.graph
    graph.add(SourceComponent("badge-src", ("pos",)))
    graph.add(
        FunctionComponent("smooth", ("pos",), ("pos",), fn=lambda d: d)
    )
    provider = middleware.create_provider("floor-app", accepts=("pos",))
    graph.connect("badge-src", "smooth")
    graph.connect("smooth", provider.sink.name)

    # The runtime: weighted fair drain every simulated second.
    engine = middleware.enable_runtime(WeightedScheduler(quantum=4))
    for i in range(N_BADGES):
        engine.track(f"badge-{i:02d}", "badge-src", capacity=8)
    engine.set_policy("badge-00", weight=3)  # the VIP badge
    engine.set_policy("badge-01", policy=COALESCE)  # the chatty one
    engine.start(1.0)

    # Ten simulated seconds of bursty traffic.
    for second in range(10):
        for i in range(N_BADGES):
            for reading in range(BURST):
                engine.submit(
                    f"badge-{i:02d}",
                    Datum("pos", (second, reading), float(second)),
                )
        middleware.clock.advance(1.0)
    engine.drain_all()

    total = engine.lane("badge-00").submitted * N_BADGES
    print(f"submitted: {total} readings from {N_BADGES} badges")
    print(f"delivered: {engine.drained_total} through the shared pipeline")
    print(f"scheduler rounds: {engine.rounds}")

    # The PSL sees ingestion as part of the reified process.
    lanes = middleware.psl.ingestion_lanes("badge-src")
    vip = lanes["badge-00"]
    chatty = lanes["badge-01"]
    typical = lanes["badge-02"]
    print(f"\nvip badge-00   : weight=3 drained={vip['drained']}"
          f" dropped={vip['dropped_oldest']}")
    print(f"chatty badge-01: coalesced={chatty['coalesced']}"
          f" drained={chatty['drained']}")
    print(f"typical badge-02: dropped_oldest={typical['dropped_oldest']}"
          f" drained={typical['drained']}")

    # Adaptation while running: badge-02 must not lose fixes any more.
    stats = middleware.psl.set_backpressure(
        "badge-02", policy=BLOCK, capacity=64
    )
    print(f"\nadapted badge-02 -> policy={stats['policy']}"
          f" capacity={stats['capacity']}")

    # The infrastructure report carries the same seam.
    report = render_report(middleware)
    ingestion = report[report.index("ingestion:"):]
    print("\nreport excerpt:")
    for line in ingestion.splitlines()[:5]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
