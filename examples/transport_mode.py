#!/usr/bin/env python3
"""Transportation-mode detection on PerPos (paper §1 use case).

Builds the reasoning pipeline the paper motivates translucency with --
segmentation, feature extraction, decision-tree classification and
hidden-Markov-model post-processing -- entirely from Processing
Components, chained onto a GPS pipeline.  A multi-modal journey
(still -> walk -> bike -> vehicle -> walk -> still) is simulated, and the
detected mode timeline is compared against ground truth.

Run:  python examples/transport_mode.py
"""

from repro.core import Kind, PerPos
from repro.core.report import render_report
from repro.geo.wgs84 import Wgs84Position
from repro.processing.pipelines import build_gps_pipeline
from repro.reasoning.pipeline import build_mode_pipeline
from repro.reasoning.workload import build_modal_trajectory, default_journey
from repro.sensors.gps import GpsReceiver


def main() -> None:
    start = Wgs84Position(56.1718, 10.1903)
    trajectory, true_mode = build_modal_trajectory(
        default_journey(), start, seed=3
    )

    middleware = PerPos()
    gps = GpsReceiver("gps-device", trajectory, seed=5)
    pipe = build_gps_pipeline(middleware, gps)
    mode_pipe = build_mode_pipeline(
        middleware, pipe.interpreter, window_s=30.0, provider_name="modes"
    )

    print("reasoning chain (PSL view):")
    print(middleware.psl.structure())
    print()

    estimates = []
    mode_pipe.provider.add_listener(
        lambda d: estimates.append(d.payload), kind=Kind.TRANSPORT_MODE
    )
    middleware.run_until(trajectory.duration())

    print("mode timeline (one letter per 30 s segment):")
    detected = "".join(e.mode.value[0] for e in estimates)
    truth = "".join(
        true_mode((e.start_time + e.end_time) / 2).value[0]
        for e in estimates
    )
    print(f"  detected: {detected}")
    print(f"  truth   : {truth}")
    correct = sum(1 for d, t in zip(detected, truth) if d == t)
    print(f"  accuracy: {correct}/{len(detected)}"
          f" ({100.0 * correct / len(detected):.0f} %)")

    hmm = middleware.graph.component(mode_pipe.smoother)
    belief = hmm.current_belief()
    print("\nfinal HMM belief over modes (still/walk/bike/vehicle):")
    print("  " + ", ".join(f"{b:.3f}" for b in belief))

    print("\ninfrastructure report (seam indicators of every stage):")
    print(render_report(middleware))


if __name__ == "__main__":
    main()
