#!/usr/bin/env python3
"""EnTracked on PerPos: energy-aware tracking (paper §3.3, Fig. 7).

Builds the Fig. 7 processing graph -- GPS and Sensor Wrapper on the
mobile device, Parser and Interpreter on the server, the graph spanning
both hosts -- and runs a pedestrian scenario twice: with the periodic
always-on baseline and with the EnTracked updating scheme (Power Strategy
Component Feature + EnTracked Channel Feature driving it through a
remote proxy).

Run:  python examples/entracked_power.py
"""

from repro.energy.entracked import EnTrackedSystem
from repro.geo.wgs84 import Wgs84Position
from repro.sensors.trajectory import RandomWalkTrajectory

DURATION_S = 1800.0
START = Wgs84Position(56.1718, 10.1903)


def describe(result) -> str:
    joules_per_hour = result.energy_j * 3600.0 / result.duration_s
    return (
        f"  energy          : {result.energy_j:8.0f} J "
        f"({joules_per_hour:.0f} J/h, avg {result.average_power_w:.3f} W)\n"
        f"  breakdown       : "
        + ", ".join(
            f"{k}={v:.0f}J" for k, v in result.energy_breakdown.items()
        )
        + "\n"
        f"  GPS duty cycle  : {result.gps_on_fraction * 100.0:5.1f} %\n"
        f"  transmissions   : {result.transmissions}\n"
        f"  positions       : {result.positions_reported}\n"
        f"  error mean/p95  : {result.mean_error_m:.1f} / "
        f"{result.p95_error_m:.1f} m"
    )


def main() -> None:
    trajectory = RandomWalkTrajectory(
        START,
        DURATION_S,
        seed=4,
        pause_probability=0.3,
        pause_s=60.0,
    )

    print("Fig. 7 scenario: 30 min pedestrian walk with pauses\n")

    periodic_system = EnTrackedSystem(
        trajectory, threshold_m=50.0, mode="periodic", seed=1
    )
    print("processing graph (spanning mobile and server):")
    print(periodic_system.middleware.psl.structure())
    print()

    periodic = periodic_system.run(DURATION_S)
    print("periodic baseline (GPS always on, report every fix):")
    print(describe(periodic))

    for threshold in (10.0, 50.0, 100.0):
        system = EnTrackedSystem(
            trajectory, threshold_m=threshold, mode="entracked", seed=1
        )
        result = system.run(DURATION_S)
        print(f"\nEnTracked, error threshold {threshold:.0f} m:")
        print(describe(result))
        saving = 100.0 * (1.0 - result.energy_j / periodic.energy_j)
        print(f"  energy saving   : {saving:5.1f} % vs periodic")
        print(
            "  control msgs    : "
            f"{system.network.message_count(source='server')}"
            " (server -> mobile, via remote Power Strategy proxy)"
        )


if __name__ == "__main__":
    main()
