#!/usr/bin/env python3
"""City-scale scenario: the middleware adapting itself under load.

One deterministic city workload (``repro.scenario``) -- a seeded device
population with churn, a degraded-coverage parking garage, a stadium
kickoff burst that overloads the ingestion lanes, and an in-stream
geofence around the stadium -- is driven twice against the same engine
configuration:

* **open loop**: no controllers; the burst overflows the bounded lanes
  and datums are dropped on the floor;
* **closed loop**: the stock controller set (backpressure capacity
  growth, EnTracked sampling-threshold shedding, quarantine tuning)
  reads the merged lane stats every drain round and actuates the
  middleware's adaptation seams, with every decision recorded in a
  bounded ledger.

Because the scenario runs on simulated time, both runs replay exactly:
the printed figures are deterministic.  The closed loop loses far fewer
datums on the identical seed -- adaptation, not luck.  The installed
scenario also surfaces through the PSL and the infrastructure report
(translucency reaches the workload driving the system, not just the
pipelines inside it).

Run:  python examples/city_demo.py
"""

from repro.core.middleware import PerPos
from repro.core.report import render_report
from repro.runtime import PositioningEngine
from repro.runtime.scheduler import RoundRobinScheduler
from repro.scenario import (
    BurstEvent,
    CityConfig,
    CityGenerator,
    ControlLoop,
    DegradedZone,
    GeofenceRule,
    ScenarioRunner,
    build_city_graph,
    default_controllers,
)

SEED = 23
TICKS = 120
CAPACITY = 8
QUANTUM = 3

RULES = (GeofenceRule("stadium", 1000.0, 1000.0, 500.0, trigger="both"),)

CONFIG = CityConfig(
    seed=SEED,
    devices=60,
    churn_rate=0.02,
    zones=(
        DegradedZone("parking-garage", 1500.0, 500.0, 400.0, drop_rate=0.5),
    ),
    bursts=(
        BurstEvent("kickoff", 30, 50, 1000.0, 1000.0, 800.0, factor=8),
    ),
)


def run_city(*, closed: bool):
    """One full scenario run on a fresh engine; returns (result, runner)."""
    engine = PositioningEngine(
        build_city_graph(RULES),
        scheduler=RoundRobinScheduler(quantum=QUANTUM),
    )
    control = None
    if closed:
        control = ControlLoop(default_controllers(max_capacity=256))
    runner = ScenarioRunner(
        CityGenerator(CONFIG), engine, control=control, capacity=CAPACITY
    )
    return runner.run(TICKS), runner


def main() -> None:
    print(
        f"city workload: {CONFIG.devices} devices, {TICKS} ticks,"
        f" seed {SEED} -- kickoff burst x8 at tick 30,"
        f" degraded parking garage, stadium geofence"
    )

    open_result, _ = run_city(closed=False)
    print(
        f"open loop:   submitted={open_result['submitted']},"
        f" dropped={open_result['dropped']},"
        f" high_water={open_result['high_water']},"
        f" alerts={open_result['alerts']}"
    )

    closed_result, runner = run_city(closed=True)
    print(
        f"closed loop: submitted={closed_result['submitted']},"
        f" dropped={closed_result['dropped']},"
        f" high_water={closed_result['high_water']},"
        f" alerts={closed_result['alerts']},"
        f" decisions={closed_result['decisions']}"
    )
    improvement = 1.0 - closed_result["dropped"] / open_result["dropped"]
    print(
        f"adaptation: {improvement:.0%} fewer drops on the identical seed"
    )

    print("first controller decisions:")
    for record in runner.decision_ledger()[:4]:
        target = f" {record['target']}" if record.get("target") else ""
        print(
            f"  t={record['tick']} {record['controller']}:"
            f" {record['action']}{target} ({record['reason']})"
        )

    # The installed scenario is part of the translucent surface: PSL
    # queries and the infrastructure report expose it like any other
    # internal process.
    middleware = PerPos()
    middleware.enable_scenario(runner)
    scenario = middleware.psl.scenario()
    print(
        f"psl.scenario(): closed_loop={scenario['closed_loop']},"
        f" seed={scenario['generator']['seed']}"
    )
    report = render_report(middleware)
    lines = report.splitlines()
    start = lines.index("scenario:")
    print("report excerpt:")
    for line in lines[start : start + 8]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
