#!/usr/bin/env python3
"""Particle-filter position refinement (paper §3.2, Figs. 5 and 6).

Recreates the paper's evaluation method: sensor data is *recorded*, then
"fed into our PerPos middleware ... using an emulator component that
reads sensor data from a file and presents itself as a sensor".  The
particle filter consumes GPS positions, scores particles with the
Likelihood Channel Feature (HDOP extracted by a Component Feature on the
Parser -- the three code artifacts of Fig. 5), and constrains particle
motion with the building's wall model.

The script prints an ASCII rendering of Fig. 6 -- the corridor walk with
raw fixes and the refined trace -- plus error statistics.

Run:  python examples/particle_filter_tracking.py
"""

import tempfile
from pathlib import Path

from repro.core import Kind, PerPos
from repro.geo.grid import GridPosition
from repro.model.demo import demo_building
from repro.processing.gps_features import HdopFeature
from repro.processing.pipelines import build_gps_pipeline
from repro.sensors.emulator import EmulatorSensor, record_trace
from repro.sensors.gps import GpsReceiver, SkyEnvironment, constant_environment
from repro.sensors.trajectory import Waypoint, WaypointTrajectory
from repro.tracking.likelihood import LikelihoodFeature
from repro.tracking.particle_filter import ParticleFilterComponent

#: Indoor-corridor GPS: degraded but still fixing, like near windows.
DEGRADED = SkyEnvironment(
    name="indoor-corridor",
    extra_mask_deg=12.0,
    blockage_probability=0.25,
    snr_loss_db=8.0,
    error_multiplier=2.5,
)


def corridor_walk(building):
    """West entrance -> east end of the corridor -> into office N4."""
    grid = building.grid
    waypoints = [
        (0.0, 1.0, 7.5),
        (60.0, 34.0, 7.5),
        (80.0, 35.0, 12.0),
        (100.0, 35.0, 12.0),
    ]
    return WaypointTrajectory(
        [Waypoint(t, grid.to_wgs84(GridPosition(x, y))) for t, x, y in waypoints]
    )


def record_gps_trace(trajectory, path):
    """The 'previously recorded sensor data' of §3.2."""
    gps = GpsReceiver(
        "gps-live",
        trajectory,
        constant_environment(DEGRADED),
        seed=33,
    )
    readings = gps.sample(trajectory.duration())
    count = record_trace(readings, path)
    print(f"recorded {count} raw GPS readings to {path}")
    return gps


def run_tracking(building, trace_path, use_filter):
    """Replay the trace; return [(t, reported_position)] at the app."""
    middleware = PerPos()
    emulator = EmulatorSensor.from_file(trace_path, sensor_id="gps-emulated")
    pipeline = build_gps_pipeline(middleware, emulator, prefix="gps-emulated")
    middleware.graph.component(pipeline.parser).attach_feature(HdopFeature())

    provider = middleware.create_provider(
        "tracking-app", accepts=(Kind.POSITION_WGS84,)
    )
    pf = None
    if use_filter:
        pf = ParticleFilterComponent(
            building, pcl=middleware.pcl, num_particles=800, seed=7
        )
        middleware.graph.add(pf)
        middleware.graph.connect(pipeline.interpreter, pf.name)
        middleware.graph.connect(pf.name, provider.sink.name)
        channel = middleware.pcl.channel_delivering(
            pf.name, pipeline.interpreter
        )
        channel.attach_feature(LikelihoodFeature())
    else:
        middleware.graph.connect(pipeline.interpreter, provider.sink.name)

    track = []
    provider.add_listener(
        lambda d: track.append((d.timestamp, d.payload)),
        kind=Kind.POSITION_WGS84,
    )
    middleware.run_until(100.0)
    return track, pf


def errors(building, trajectory, track):
    return [
        trajectory.position_at(t).distance_to(p) for t, p in track
    ]


def render_map(building, trajectory, track, particles):
    """ASCII Fig. 6: walls '#', truth '.', trace 'o', particles ','."""
    width, depth, scale = 40, 15, 1.0
    cells = [[" "] * (width + 1) for _ in range(depth + 1)]
    floor = building.floor(0)
    for wall in floor.walls:
        steps = int(max(abs(wall.x2 - wall.x1), abs(wall.y2 - wall.y1)) / 0.5) + 1
        for i in range(steps + 1):
            x = wall.x1 + (wall.x2 - wall.x1) * i / steps
            y = wall.y1 + (wall.y2 - wall.y1) * i / steps
            if 0 <= x <= width and 0 <= y <= depth:
                cells[int(y)][int(x)] = "#"
    for p in particles or []:
        x, y = int(p.position.x_m), int(p.position.y_m)
        if 0 <= x <= width and 0 <= y <= depth and cells[y][x] == " ":
            cells[y][x] = ","
    for t in range(0, 101, 2):
        g = building.grid.to_grid(trajectory.position_at(t))
        x, y = int(g.x_m), int(g.y_m)
        if 0 <= x <= width and 0 <= y <= depth and cells[y][x] in " ,":
            cells[y][x] = "."
    for _t, pos in track:
        g = building.grid.to_grid(pos)
        x, y = int(g.x_m), int(g.y_m)
        if 0 <= x <= width and 0 <= y <= depth and cells[y][x] != "#":
            cells[y][x] = "o"
    lines = ["".join(row) for row in reversed(cells)]
    legend = "legend: # wall   . true path   o estimated trace   , particles"
    return "\n".join(lines) + "\n" + legend


def main() -> None:
    building = demo_building()
    trajectory = corridor_walk(building)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "corridor-gps.jsonl"
        record_gps_trace(trajectory, trace_path)

        raw_track, _ = run_tracking(building, trace_path, use_filter=False)
        refined_track, pf = run_tracking(building, trace_path, use_filter=True)

    raw_errors = errors(building, trajectory, raw_track)
    refined_errors = errors(building, trajectory, refined_track)

    def stats(label, errs):
        errs = sorted(errs)
        mean = sum(errs) / len(errs)
        median = errs[len(errs) // 2]
        print(
            f"  {label:<16} fixes={len(errs):3d}  mean={mean:5.1f} m  "
            f"median={median:5.1f} m  max={errs[-1]:5.1f} m"
        )

    print("\nFig. 6 reproduction -- corridor walk, refined by the filter:")
    print(render_map(building, trajectory, refined_track, pf.particles))
    print("\nerror statistics:")
    stats("raw GPS", raw_errors)
    stats("particle filter", refined_errors)
    print(f"\nfilter statistics: {pf.statistics()}")


if __name__ == "__main__":
    main()
