#!/usr/bin/env python3
"""Quickstart: positions from a GPS pipeline in ~30 lines.

Builds the minimal PerPos configuration -- a simulated GPS receiver wired
through Parser and Interpreter components -- then pulls positions through
the high-level Positioning Layer API, exactly as a location-aware
application would.

Run:  python examples/quickstart.py
"""

from repro.core import Criteria, Kind, PerPos
from repro.geo.wgs84 import Wgs84Position
from repro.processing.pipelines import build_gps_pipeline
from repro.sensors.gps import GpsReceiver
from repro.sensors.trajectory import WaypointTrajectory, Waypoint


def main() -> None:
    # A target walking 300 m east over five minutes.
    start = Wgs84Position(56.1718, 10.1903)
    trajectory = WaypointTrajectory(
        [Waypoint(0.0, start), Waypoint(300.0, start.moved(90.0, 300.0))]
    )

    middleware = PerPos()
    gps = GpsReceiver("gps-device", trajectory, seed=1)
    pipeline = build_gps_pipeline(middleware, gps)

    # The application side: a provider sink fed by the interpreter.
    provider = middleware.create_provider(
        "quickstart-app",
        accepts=(Kind.POSITION_WGS84,),
        technologies=("gps",),
    )
    middleware.graph.connect(pipeline.interpreter, provider.sink.name)

    # Push interface: print a line for every fifth fix.
    count = [0]

    def on_position(datum):
        count[0] += 1
        if count[0] % 5 == 0:
            p = datum.payload
            print(
                f"t={datum.timestamp:5.1f}s  "
                f"lat={p.latitude_deg:.6f}  lon={p.longitude_deg:.6f}  "
                f"accuracy={p.accuracy_m:.1f} m"
            )

    provider.add_listener(on_position, kind=Kind.POSITION_WGS84)

    # Drive the simulation.
    middleware.run_until(300.0)

    # Pull interface: last known position and provider lookup by criteria.
    same_provider = middleware.get_provider(Criteria(technology="gps"))
    final = same_provider.last_position()
    print(f"\nfinal position: {final.latitude_deg:.6f}, "
          f"{final.longitude_deg:.6f}")
    print(f"fixes delivered: {count[0]}")
    print("\nprocessing structure (PSL view):")
    print(middleware.psl.structure())


if __name__ == "__main__":
    main()
