#!/usr/bin/env python3
"""Ingestion gateway: hostile edge traffic, dead letters, replay-after-fix.

A phone fleet posts raw ``phone_tracker_v1`` JSON into the middleware
through the ingestion gateway: schema validation, device auto-tracking
and admission control sit between the wire and the engine lanes.  Then a
vendor firmware update starts shipping ``latitude``/``longitude`` (and
``speed_kmh``) instead of the contract's ``lat``/``lon``/``speed_mps``
-- every reading dead-letters at the schema stage, inspectable through
the PSL.  The fix is middleware configuration, not device surgery: an
operator installs a crosswalk (two renames and a unit conversion) on the
adapter and replays the dead letters through the full validation path;
the stranded readings are recovered losslessly.  A genuinely poisoned
payload, by contrast, burns through its retry budget and parks in a
terminal ``exhausted`` state instead of looping forever.

Run:  python examples/gateway_demo.py
"""

from repro.core import Kind, PerPos
from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.report import render_report
from repro.gateway import Crosswalk, FieldMap, scale
from repro.services.remote import RetryPolicy

POS = Kind.POSITION_WGS84
FLEET = tuple(f"phone-{i:02d}" for i in range(4))


def reading(device: str, t: float, step: int) -> dict:
    """One clean phone_tracker_v1 fix."""
    return {
        "source_format": "phone_tracker_v1",
        "device_id": device,
        "timestamp": t,
        "lat": 56.1718 + 0.0001 * step,
        "lon": 10.1903 + 0.0001 * step,
        "speed_mps": 1.4,
        "accuracy_m": 8.0,
        "battery_pct": 0.9,
    }


def vendor_reading(device: str, t: float, step: int) -> dict:
    """The same fix after the broken firmware update."""
    fix = reading(device, t, step)
    fix["latitude"] = fix.pop("lat")
    fix["longitude"] = fix.pop("lon")
    fix["speed_kmh"] = round(fix.pop("speed_mps") * 3.6, 2)
    return fix


def main() -> None:
    middleware = PerPos()
    graph = middleware.graph
    graph.add(SourceComponent("wire-src", (POS,)))
    graph.add(FunctionComponent("smooth", (POS,), (POS,), fn=lambda d: d))
    sink = ApplicationSink("fleet-app", (POS,))
    graph.add(sink)
    graph.connect("wire-src", "smooth")
    graph.connect("smooth", "fleet-app")

    engine = middleware.enable_runtime()
    gateway = middleware.enable_gateway(
        "wire-src",
        retry=RetryPolicy(max_attempts=2, backoff_s=5.0),
    )

    # -- phase 1: a healthy fleet posts raw JSON ---------------------------
    for step in range(10):
        for device in FLEET:
            gateway.submit(reading(device, float(step), step))
    gateway.forward()
    engine.drain_all()
    print(
        f"clean fleet: {gateway.accepted} fixes accepted from"
        f" {len(FLEET)} auto-tracked phones,"
        f" rejected={gateway.rejected}"
    )

    # -- phase 2: the firmware update breaks the wire contract -------------
    for step in range(10, 15):
        for device in FLEET:
            gateway.submit(vendor_reading(device, float(step), step))
    gateway.forward()
    engine.drain_all()
    print(
        f"after firmware update: rejected={gateway.rejected},"
        f" dlq depth={len(gateway.dlq)}"
    )
    worst = middleware.psl.dead_letters("pending")[0]
    print(
        f"[dlq] seq={worst['seq']} stage={worst['stage']}"
        f" adapter={worst['adapter']}"
    )
    print(f"      reason: {worst['reason']}")

    # -- phase 3: fix in middleware configuration, then replay -------------
    gateway.adapter("phone_tracker_v1").set_crosswalk(
        Crosswalk(
            [
                FieldMap("latitude", "lat"),
                FieldMap("longitude", "lon"),
                FieldMap("speed_kmh", "speed_mps", convert=scale(1 / 3.6)),
            ]
        )
    )
    outcome = middleware.psl.replay_dead_letters()
    engine.drain_all()
    print(
        f"crosswalk installed, replay: {outcome['replayed']} recovered,"
        f" {outcome['failed']} failed"
    )
    print(f"fleet-app delivered: {len(sink.received)} positions")

    # -- phase 4: a poison payload exhausts its retry budget ---------------
    poison = reading("phone-99", 99.0, 0)
    poison["lat"] = 999.0  # no crosswalk can make this a latitude
    gateway.submit(poison)
    for _ in range(2):
        middleware.clock.advance(10.0)  # past the backoff window
        gateway.replay()
    exhausted = middleware.psl.dead_letters("exhausted")
    print(
        f"poison payload: {len(exhausted)} record parked as"
        f" 'exhausted' after {exhausted[0]['attempts']} attempts"
    )

    # The whole story is on the infrastructure report.
    report = render_report(middleware)
    print("\ngateway:" + report.split("gateway:")[1].split("\n\n")[0])
    middleware.disable_gateway()


if __name__ == "__main__":
    main()
