#!/usr/bin/env python3
"""Sharding out: partitioning tracked targets across engine shards.

Builds the sharded runtime of ``repro.runtime.sharding``: 30 tracked
badges are partitioned across 3 independent engine shards, each shard
owning a private copy of the same positioning pipeline (built from one
shared recipe).  Consistent hashing decides ownership -- except for the
VIP badge, pinned to shard 0 through a ``PinnedPlacement`` override --
and the coordinator drains all shards on the simulation clock, merging
lane stats, per-component metrics, and health into one surface.

Mid-run, a fault is injected into shard 2's smoothing stage: that shard
degrades and is quarantined from drain rounds while shards 0 and 1 keep
delivering; after the operator disarms the fault, the shard is restored
and the fleet is whole again.  The infrastructure report shows the whole
story.

Run:  python examples/shard_demo.py
"""

from repro.core.component import (
    ApplicationSink,
    FunctionComponent,
    SourceComponent,
)
from repro.core.data import Datum
from repro.core.graph import ProcessingGraph
from repro.core.middleware import PerPos
from repro.core.report import render_report
from repro.robustness import FaultInjectionFeature
from repro.runtime import PinnedPlacement

N_BADGES = 30
N_SHARDS = 3


def recipe() -> ProcessingGraph:
    """One shard's private pipeline: src -> smooth -> app."""
    graph = ProcessingGraph()
    graph.add(SourceComponent("badge-src", ("pos",)))
    graph.add(
        FunctionComponent("smooth", ("pos",), ("pos",), fn=lambda d: d)
    )
    graph.add(ApplicationSink("floor-app", ("pos",)))
    graph.connect("badge-src", "smooth")
    graph.connect("smooth", "floor-app")
    return graph


def submit_round(engine, second: int) -> None:
    engine.submit_batch(
        (f"badge-{i:02d}", Datum("pos", (second, i), float(second)))
        for i in range(N_BADGES)
    )


def main() -> None:
    middleware = PerPos()
    placement = PinnedPlacement()
    placement.pin("badge-00", 0)  # the VIP badge, always on shard 0
    engine = middleware.enable_sharding(
        recipe, N_SHARDS, placement=placement, observability=True
    )

    for i in range(N_BADGES):
        engine.track(f"badge-{i:02d}", "badge-src", capacity=64)
    spread = [0] * N_SHARDS
    for shard in engine.assignments().values():
        spread[shard] += 1
    print(
        f"placement: {N_BADGES} badges over {N_SHARDS} shards"
        f" -> {spread} (badge-00 pinned to shard"
        f" {engine.shard_of('badge-00')})"
    )

    # Five simulated seconds of healthy traffic, drained on the clock.
    engine.start(1.0)
    for second in range(5):
        submit_round(engine, second)
        middleware.clock.advance(1.0)
    engine.stop()
    print(
        f"healthy fleet: drained {engine.drained_total} readings"
        f" in {engine.rounds} rounds, degraded={engine.degraded()}"
    )

    # Chaos: shard 2's smoothing stage starts crashing mid-drain.
    stage = engine.shard(2).graph.component("smooth")
    stage.attach_feature(FaultInjectionFeature(fail_every=1))
    submit_round(engine, 5)
    engine.drain_all()
    print(
        f"after fault injection: degraded={engine.degraded()}"
        f" ({engine.failures()[-1]['error'].split(':')[0]})"
    )

    # Survivors keep delivering while shard 2 sits out.
    submit_round(engine, 6)
    survivors = engine.drain_all()
    print(f"survivors drained {survivors} readings without shard 2")

    # The merged report stays renderable throughout.
    report = render_report(middleware)
    sharding_section = report.split("sharding:")[1].split("\n\n")[0]
    print("sharding:" + sharding_section)

    # Heal: disarm the fault, restore the shard, drain the backlog.
    stage.get_feature("FaultInjection").disarm()
    engine.restore_shard(2)
    backlog = engine.drain_all()
    print(
        f"restored shard 2: drained {backlog} queued readings,"
        f" degraded={engine.degraded()}"
    )

    stats = engine.merged_component_stats()
    print(
        f"merged metrics: floor-app received"
        f" {stats['floor-app']['items_in']} positions across shards"
    )
    middleware.disable_sharding()


if __name__ == "__main__":
    main()
