#!/usr/bin/env python3
"""Chaos demo: quarantine, provider failover, and half-open recovery.

Builds two positioning strands -- a GPS pipeline and a WiFi-style
fallback -- enables the ``quarantine`` supervision policy, and then
breaks the GPS interpreter stage with a :class:`FaultInjectionFeature`
attached through the PSL (the paper's own Component Feature seam).

The demo walks the full failure lifecycle:

1. injected failures are reified as inspectable FailureRecords;
2. the circuit breaker trips and routing quarantines the stage while the
   sibling strand keeps delivering;
3. ``get_provider`` fails over to the criteria-matching fallback and the
   failover listener is notified;
4. after the half-open window a probe delivery succeeds (the fault is
   disarmed through the PSL's reflective surface) and the recovered
   provider takes preference again.

Run:  python examples/chaos_demo.py
"""

from repro.core import Criteria, Kind, PerPos
from repro.core.component import FunctionComponent, SourceComponent
from repro.core.data import Datum
from repro.robustness import FaultInjectionFeature, SupervisionPolicy


def main() -> None:
    middleware = PerPos()
    graph = middleware.graph

    # Two strands: gps-src -> gps-stage -> gps-app, wifi-src -> wifi-app.
    gps_src = SourceComponent("gps-src", (Kind.POSITION_WGS84,))
    gps_stage = FunctionComponent(
        "gps-stage",
        (Kind.POSITION_WGS84,),
        (Kind.POSITION_WGS84,),
        fn=lambda d: d,
    )
    wifi_src = SourceComponent("wifi-src", (Kind.POSITION_WGS84,))
    for component in (gps_src, gps_stage, wifi_src):
        graph.add(component)
    gps = middleware.create_provider(
        "gps-app", (Kind.POSITION_WGS84,), technologies=("gps",)
    )
    wifi = middleware.create_provider(
        "wifi-app", (Kind.POSITION_WGS84,), technologies=("wifi",)
    )
    graph.connect("gps-src", "gps-stage")
    graph.connect("gps-stage", gps.sink.name)
    graph.connect("wifi-src", wifi.sink.name)

    supervisor = middleware.enable_supervision(
        SupervisionPolicy(
            mode="quarantine",
            failure_threshold=3,
            window_s=60.0,
            half_open_after_s=30.0,
        )
    )
    supervisor.add_listener(
        lambda event, name, record: print(
            f"  [supervision] {name}: {event}"
            + (f" ({record.error_type}: {record.message})" if record else "")
        )
    )
    middleware.positioning.add_failover_listener(
        lambda demoted, selected: print(
            f"  [failover] demoted {demoted} -> selected {selected!r}"
        )
    )

    # Break the GPS stage through the paper's Component Feature seam.
    middleware.psl.attach_feature(
        "gps-stage", FaultInjectionFeature(fail_every=1)
    )

    def tick(payload):
        middleware.clock.advance(1.0)
        now = middleware.clock.now
        gps_src.inject(Datum(Kind.POSITION_WGS84, payload, now))
        wifi_src.inject(Datum(Kind.POSITION_WGS84, payload, now))

    criteria = Criteria(kind=Kind.POSITION_WGS84)

    print("phase 1: GPS stage failing every datum")
    for i in range(3):
        tick(("fix", i))
    print(f"  gps-stage health: {supervisor.health('gps-stage')}")
    print(f"  quarantined: {middleware.psl.quarantined()}")
    print(f"  wifi strand deliveries: {len(wifi.sink.received)}")

    print("\nphase 2: provider failover")
    selected = middleware.get_provider(criteria)
    print(f"  selected provider: {selected.name}")
    print(f"  gps-app degraded: {gps.is_degraded()}")

    print("\nphase 3: recovery through the half-open probe")
    middleware.psl.invoke("gps-stage", "FaultInjection.disarm")
    middleware.clock.advance(30.0)
    tick(("fix", 99))
    print(f"  gps-stage health: {supervisor.health('gps-stage')}")
    restored = middleware.get_provider(criteria)
    print(f"  selected provider after recovery: {restored.name}")

    print("\nfailure records (bounded ring):")
    for record in supervisor.failure_records("gps-stage"):
        print(f"  {record.summary()}")


if __name__ == "__main__":
    main()
